//! Conformance subject for the Protoacc serializer.

use accel_protoacc::descriptor::{FieldDesc, FieldKind, MessageDesc};
use accel_protoacc::interface;
use accel_protoacc::simx::{ProtoWorkload, ProtoaccSim};
use accel_protoacc::suite;
use perf_core::iface::{InterfaceBundle, InterfaceKind, Metric};
use perf_core::{CoreError, GroundTruth, Observation, Prediction};
use perf_sim::FaultPlan;

use crate::budget::{Budget, Contract};
use crate::harness::{CaseSpec, Subject};
use crate::report::NlResult;

/// Generator-level description of one message-stream workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoSpec {
    /// `n` random messages of one of the 32 suite formats.
    Format { idx: usize, n: usize, seed: u64 },
    /// `n` messages nested `depth` levels deep (each level costs the
    /// hardware a pointer chase).
    Nested { depth: usize, n: usize, seed: u64 },
}

/// Builds the `depth`-level nested format used by the NL sweeps and
/// the adversarial deep-nesting cases.
fn nested(depth: usize) -> MessageDesc {
    let mut d = MessageDesc::new(
        "leaf",
        (0..4)
            .map(|i| FieldDesc::single(i + 1, FieldKind::Uint64))
            .collect(),
    );
    for _ in 0..depth {
        d = MessageDesc::new(
            "wrap",
            vec![
                FieldDesc::single(1, FieldKind::Uint64),
                FieldDesc::single(2, FieldKind::Message(Box::new(d))),
            ],
        );
    }
    d
}

/// Protoacc subject: two-engine serializer sim vs the interfaces.
pub struct ProtoaccSubject {
    bundle: InterfaceBundle<ProtoWorkload>,
    formats: Vec<MessageDesc>,
    fault: Option<FaultPlan>,
}

impl ProtoaccSubject {
    /// Creates the subject with the shipped interface bundle.
    pub fn new() -> ProtoaccSubject {
        ProtoaccSubject {
            bundle: interface::bundle(),
            formats: suite::formats(),
            fault: None,
        }
    }
}

impl Default for ProtoaccSubject {
    fn default() -> Self {
        ProtoaccSubject::new()
    }
}

impl Subject for ProtoaccSubject {
    type Spec = ProtoSpec;
    type Workload = ProtoWorkload;

    fn name(&self) -> &'static str {
        "protoacc"
    }

    fn specs(&mut self, quick: bool) -> Vec<CaseSpec<ProtoSpec>> {
        let mut v = Vec::new();
        let stride = if quick { 4 } else { 1 };
        let n = if quick { 10 } else { 25 };
        for idx in (0..self.formats.len()).step_by(stride) {
            v.push(CaseSpec::random(
                format!("format-{idx}"),
                ProtoSpec::Format {
                    idx,
                    n,
                    seed: 40 + idx as u64,
                },
            ));
        }
        // Adversarial: singleton streams (no steady state to average
        // over) and deep nesting (saturates the pointer-chase path).
        v.push(CaseSpec::adversarial(
            "singleton-stream",
            ProtoSpec::Format {
                idx: 0,
                n: 1,
                seed: 90,
            },
        ));
        v.push(CaseSpec::adversarial(
            "singleton-last-format",
            ProtoSpec::Format {
                idx: self.formats.len() - 1,
                n: 1,
                seed: 91,
            },
        ));
        v.push(CaseSpec::adversarial(
            "deep-nesting",
            ProtoSpec::Nested {
                depth: 8,
                n: 6,
                seed: 92,
            },
        ));
        if !quick {
            v.push(CaseSpec::adversarial(
                "deeper-nesting-singleton",
                ProtoSpec::Nested {
                    depth: 12,
                    n: 1,
                    seed: 93,
                },
            ));
        }
        v
    }

    fn realize(&mut self, spec: &ProtoSpec) -> ProtoWorkload {
        match *spec {
            ProtoSpec::Format { idx, n, seed } => {
                ProtoWorkload::of_format(&self.formats[idx], n, seed)
            }
            ProtoSpec::Nested { depth, n, seed } => {
                ProtoWorkload::of_format(&nested(depth), n, seed)
            }
        }
    }

    fn describe(&self, spec: &ProtoSpec) -> String {
        match *spec {
            ProtoSpec::Format { idx, n, .. } => {
                format!("{n} message(s) of format `{}`", self.formats[idx].name)
            }
            ProtoSpec::Nested { depth, n, .. } => {
                format!("{n} message(s) nested {depth} level(s) deep")
            }
        }
    }

    fn shrink(&mut self, spec: &ProtoSpec) -> Vec<ProtoSpec> {
        let mut out = Vec::new();
        match *spec {
            ProtoSpec::Format { idx, n, seed } => {
                if n > 1 {
                    out.push(ProtoSpec::Format {
                        idx,
                        n: n / 2,
                        seed,
                    });
                    out.push(ProtoSpec::Format {
                        idx,
                        n: n - 1,
                        seed,
                    });
                }
            }
            ProtoSpec::Nested { depth, n, seed } => {
                if n > 1 {
                    out.push(ProtoSpec::Nested {
                        depth,
                        n: n / 2,
                        seed,
                    });
                }
                if depth > 0 {
                    out.push(ProtoSpec::Nested {
                        depth: depth - 1,
                        n,
                        seed,
                    });
                }
            }
        }
        out
    }

    fn measure(&mut self, w: &ProtoWorkload) -> Result<Observation, CoreError> {
        let mut sim = ProtoaccSim::default();
        sim.set_fault(self.fault);
        sim.measure(w)
    }

    fn predict(
        &mut self,
        kind: InterfaceKind,
        w: &ProtoWorkload,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        self.bundle
            .get(kind)
            .ok_or_else(|| CoreError::Artifact(format!("no {} interface", kind.name())))?
            .predict(w, metric)
    }

    fn budget(&self, kind: InterfaceKind, metric: Metric) -> Budget {
        match (kind, metric) {
            // Latency is predicted as bounds (Fig. 3): containment
            // with small numeric slack.
            (InterfaceKind::Program, Metric::Latency) => Budget::new(0.01, 0.02),
            (InterfaceKind::Program, Metric::Throughput) => Budget::new(0.15, 0.45),
            (_, Metric::Latency) => Budget::new(0.10, 0.30),
            (_, Metric::Throughput) => Budget::new(0.15, 0.45),
        }
    }

    fn contract(&self) -> Contract {
        Contract::new(0.5, 0.5)
    }

    fn fault_plans(&self, quick: bool) -> Vec<FaultPlan> {
        let mut v = vec![FaultPlan::mem_jitter(31, 50, 6)];
        if !quick {
            v.push(FaultPlan::mem_jitter(32, 100, 4));
        }
        v.push(FaultPlan::mem_jitter(33, 600, 60));
        v
    }

    fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    fn check_nl(&mut self) -> Vec<NlResult> {
        let nl = &self.bundle.natural_language;
        let mut tput_samples = Vec::new();
        let mut lat_samples = Vec::new();
        for depth in [0usize, 1, 2, 4, 6] {
            let mut sim = ProtoaccSim::default();
            let w = ProtoWorkload::of_format(&nested(depth), 30, 7);
            if let Ok(obs) = sim.measure(&w) {
                tput_samples.push((depth as f64, Metric::Throughput.of(&obs)));
                lat_samples.push((depth as f64, Metric::Latency.of(&obs)));
            }
        }
        let mut out = Vec::new();
        if let Ok(v) = nl.claims[0].check(&tput_samples) {
            out.push(NlResult {
                claim: "throughput decreasing in nesting".into(),
                holds: v.holds,
                worst: v.worst_violation,
            });
        }
        if let Ok(v) = nl.claims[1].check(&lat_samples) {
            out.push(NlResult {
                claim: "latency increasing in nesting".into(),
                holds: v.holds,
                worst: v.worst_violation,
            });
        }
        out
    }
}
