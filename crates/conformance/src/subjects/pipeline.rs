//! Conformance subject for a composite SoC pipeline.
//!
//! Unlike the single-accelerator subjects, the ground truth here is the
//! *composed* cycle-accurate system — independent stage simulators
//! chained through bounded FIFOs — and every interface channel is the
//! composite one: the Petri tier runs the glued net (stage component
//! nets fused through `perf_petri::compose`), the program tier runs
//! the bounded-buffer schedule recurrence, and the NL tier composes
//! per-stage closed-form bounds. A budget violation on this subject
//! means composition itself (not a stage model) broke the contract.

use perf_compose::PipelineBackend;
use perf_core::iface::{InterfaceKind, Metric};
use perf_core::query::{EngineChoice, QueryBackend, WorkloadSpec};
use perf_core::{CoreError, Observation, Prediction};
use perf_sim::FaultPlan;

use crate::budget::{Budget, Contract};
use crate::harness::{CaseSpec, Subject};
use crate::report::NlResult;

/// The fixed conformance topology: tight queues so backpressure
/// actually engages on short streams.
const CHAIN: &str = "jpeg-decoder:2>protoacc:2";

/// Generator-level description of one stream workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamSpec {
    /// Items pushed through the pipeline.
    pub items: usize,
    /// Base seed; every item/stage derives its workload from it.
    pub seed: u64,
}

/// Composite pipeline subject: composed cycle-accurate system vs the
/// composite NL, program and Petri-net interfaces.
pub struct PipelineSubject {
    backend: PipelineBackend,
}

impl PipelineSubject {
    /// Creates the subject over the canonical decode→serialize chain.
    pub fn new() -> PipelineSubject {
        PipelineSubject {
            backend: PipelineBackend::from_chain(CHAIN, EngineChoice::Compiled)
                .expect("shipped chain must construct"),
        }
    }
}

impl Default for PipelineSubject {
    fn default() -> Self {
        PipelineSubject::new()
    }
}

fn to_spec(s: &StreamSpec) -> WorkloadSpec {
    WorkloadSpec::new("stream")
        .with("items", s.items as f64)
        .with("seed", s.seed as f64)
}

impl Subject for PipelineSubject {
    type Spec = StreamSpec;
    type Workload = WorkloadSpec;

    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn specs(&mut self, quick: bool) -> Vec<CaseSpec<StreamSpec>> {
        let mut v = Vec::new();
        let sizes: &[usize] = if quick {
            &[2, 4, 6]
        } else {
            &[2, 4, 6, 8, 10, 12]
        };
        for (i, &items) in sizes.iter().enumerate() {
            v.push(CaseSpec::random(
                format!("stream-{items}"),
                StreamSpec {
                    items,
                    seed: 3 + i as u64,
                },
            ));
        }
        // Adversarial: a singleton stream (no pipelining at all — the
        // composite must degenerate to a serial path) and a stream
        // long enough to saturate the 2-deep boundary queue.
        v.push(CaseSpec::adversarial(
            "single-item",
            StreamSpec { items: 1, seed: 9 },
        ));
        v.push(CaseSpec::adversarial(
            "queue-saturating",
            StreamSpec {
                items: if quick { 10 } else { 20 },
                seed: 17,
            },
        ));
        v
    }

    fn realize(&mut self, spec: &StreamSpec) -> WorkloadSpec {
        to_spec(spec)
    }

    fn describe(&self, spec: &StreamSpec) -> String {
        format!("{} items through {CHAIN} (seed {})", spec.items, spec.seed)
    }

    fn shrink(&mut self, spec: &StreamSpec) -> Vec<StreamSpec> {
        let mut out = Vec::new();
        if spec.items > 1 {
            out.push(StreamSpec {
                items: spec.items / 2,
                ..*spec
            });
        }
        if spec.seed != 1 {
            out.push(StreamSpec { seed: 1, ..*spec });
        }
        out.retain(|c| c != spec);
        out
    }

    fn measure(&mut self, w: &WorkloadSpec) -> Result<Observation, CoreError> {
        self.backend.measure(w)
    }

    fn predict(
        &mut self,
        kind: InterfaceKind,
        w: &WorkloadSpec,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        self.backend.predict(w, kind, metric)
    }

    fn budget(&self, kind: InterfaceKind, metric: Metric) -> Budget {
        self.backend.budget(kind, metric)
    }

    fn contract(&self) -> Contract {
        // Composite fault opportunities are per item-issue (a handful
        // per stream), so injected cycles barely move a makespan of
        // thousands of cycles: small slack per unit intensity, and a
        // generous in-contract ceiling.
        Contract::new(3.0, 0.05)
    }

    fn fault_plans(&self, quick: bool) -> Vec<FaultPlan> {
        let mut v = vec![FaultPlan::stage_stalls(11, 300, 4)];
        if !quick {
            // Intensity 2.0: still in contract.
            v.push(FaultPlan::backpressure(5, 200, 10));
        }
        // Intensity 3600: far out of contract — retirement holds of
        // thousands of cycles wedge the stream far beyond anything the
        // composed interfaces promise to track.
        v.push(FaultPlan::backpressure(7, 900, 4000));
        v
    }

    fn set_fault(&mut self, plan: Option<FaultPlan>) {
        // The plan's seed picks the degraded stage, so successive
        // plans exercise fault injection on *individual* stages of the
        // composite rather than always the same one.
        let stages = self.backend.composite().topology().stages.len();
        match plan {
            Some(p) => {
                let stage = (p.seed as usize) % stages;
                self.backend.composite_mut().set_fault(stage, Some(p));
            }
            None => self.backend.composite_mut().set_fault(0, None),
        }
    }

    fn check_nl(&mut self) -> Vec<NlResult> {
        let sweep: Vec<usize> = vec![2, 4, 6, 8, 10];
        let mut makespans = Vec::new();
        let mut worst_bound = 0.0_f64;
        let mut bounds_hold = true;
        for &items in &sweep {
            // One shared seed: a longer stream is then a strict prefix
            // extension of a shorter one, so makespan must be
            // monotone; mixing seeds would compare unrelated streams.
            let s = StreamSpec { items, seed: 23 };
            let w = to_spec(&s);
            let Ok(obs) = self.backend.measure(&w) else {
                continue;
            };
            let actual = Metric::Latency.of(&obs);
            makespans.push(actual);
            if let Ok(p) = self
                .backend
                .predict(&w, InterfaceKind::NaturalLanguage, Metric::Latency)
            {
                if !p.contains(actual) {
                    bounds_hold = false;
                    worst_bound = worst_bound.max(crate::harness::relative_error(&p, actual));
                }
            }
        }
        let mut out = vec![NlResult {
            claim: "stream makespan within composite NL bounds".into(),
            holds: bounds_hold,
            worst: worst_bound,
        }];
        // Monotonicity: more items can only take longer. (Different
        // seeds perturb per-item costs, so allow a small tolerance.)
        let mut worst_drop = 0.0_f64;
        for pair in makespans.windows(2) {
            if pair[1] < pair[0] * 0.95 {
                worst_drop = worst_drop.max((pair[0] - pair[1]) / pair[0]);
            }
        }
        out.push(NlResult {
            claim: "stream makespan nondecreasing in items".into(),
            holds: worst_drop == 0.0,
            worst: worst_drop,
        });
        out
    }
}
