//! Conformance subject for a fan-out/fan-in composite DAG.
//!
//! The sixth subject widens the composition story past linear chains:
//! ground truth is the cycle-accurate *DAG* pipeline (a decoder
//! round-robining its stream across two parallel branches that merge
//! back into one serializer), and every interface channel is the
//! composite one realized over the same branched shape — the Petri
//! tier runs the glued net with its router and merge transitions, the
//! program tier runs the DAG schedule recurrence, and the NL tier
//! composes busiest-stage / critical-path bounds over the job plan. A
//! budget violation here means branched composition (routing, merging
//! or replication — not a stage model, and not chain composition,
//! which the `pipeline` subject already gates) broke the contract.

use perf_compose::PipelineBackend;
use perf_core::iface::{InterfaceKind, Metric};
use perf_core::query::{EngineChoice, QueryBackend, WorkloadSpec};
use perf_core::{CoreError, Observation, Prediction};
use perf_sim::FaultPlan;

use crate::budget::{Budget, Contract};
use crate::harness::{CaseSpec, Subject};
use crate::report::NlResult;
use crate::subjects::pipeline::StreamSpec;

/// The fixed branched conformance topology: a decode stage fanning out
/// round-robin over two unlike branches (serializer vs miner) that
/// merge into a final serializer. Tight queues so backpressure engages
/// on short streams; unlike branches so routing mistakes show up as
/// cost, not symmetry.
const DAG_CHAIN: &str = "jpeg-decoder:2>(protoacc:2|bitcoin-miner:2)>protoacc:3";

/// Branched composite subject: composed cycle-accurate DAG vs the
/// composite NL, program and Petri-net interfaces.
pub struct DagSubject {
    backend: PipelineBackend,
}

impl DagSubject {
    /// Creates the subject over the canonical fan-out/fan-in topology.
    pub fn new() -> DagSubject {
        DagSubject {
            backend: PipelineBackend::from_chain(DAG_CHAIN, EngineChoice::Compiled)
                .expect("shipped DAG topology must construct"),
        }
    }
}

impl Default for DagSubject {
    fn default() -> Self {
        DagSubject::new()
    }
}

fn to_spec(s: &StreamSpec) -> WorkloadSpec {
    WorkloadSpec::new("stream")
        .with("items", s.items as f64)
        .with("seed", s.seed as f64)
}

impl Subject for DagSubject {
    type Spec = StreamSpec;
    type Workload = WorkloadSpec;

    fn name(&self) -> &'static str {
        "pipeline-dag"
    }

    fn specs(&mut self, quick: bool) -> Vec<CaseSpec<StreamSpec>> {
        let mut v = Vec::new();
        let sizes: &[usize] = if quick {
            &[2, 4, 6]
        } else {
            &[2, 4, 6, 8, 10, 12]
        };
        for (i, &items) in sizes.iter().enumerate() {
            v.push(CaseSpec::random(
                format!("stream-{items}"),
                StreamSpec {
                    items,
                    seed: 5 + i as u64,
                },
            ));
        }
        // Adversarial: a singleton stream (one branch never sees a
        // token — the merge must still drain cleanly), an odd-length
        // stream (branch loads unbalanced by one), and a stream long
        // enough to saturate the 2-deep branch queues.
        v.push(CaseSpec::adversarial(
            "single-item",
            StreamSpec { items: 1, seed: 9 },
        ));
        v.push(CaseSpec::adversarial(
            "odd-split",
            StreamSpec { items: 7, seed: 13 },
        ));
        v.push(CaseSpec::adversarial(
            "queue-saturating",
            StreamSpec {
                items: if quick { 10 } else { 20 },
                seed: 17,
            },
        ));
        v
    }

    fn realize(&mut self, spec: &StreamSpec) -> WorkloadSpec {
        to_spec(spec)
    }

    fn describe(&self, spec: &StreamSpec) -> String {
        format!(
            "{} items through {DAG_CHAIN} (seed {})",
            spec.items, spec.seed
        )
    }

    fn shrink(&mut self, spec: &StreamSpec) -> Vec<StreamSpec> {
        let mut out = Vec::new();
        if spec.items > 1 {
            out.push(StreamSpec {
                items: spec.items / 2,
                ..*spec
            });
        }
        if spec.seed != 1 {
            out.push(StreamSpec { seed: 1, ..*spec });
        }
        out.retain(|c| c != spec);
        out
    }

    fn measure(&mut self, w: &WorkloadSpec) -> Result<Observation, CoreError> {
        self.backend.measure(w)
    }

    fn predict(
        &mut self,
        kind: InterfaceKind,
        w: &WorkloadSpec,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        self.backend.predict(w, kind, metric)
    }

    fn budget(&self, kind: InterfaceKind, metric: Metric) -> Budget {
        self.backend.budget(kind, metric)
    }

    fn contract(&self) -> Contract {
        // Same shape as the chain subject: composite fault
        // opportunities are per item-issue, so injected cycles barely
        // move a makespan of thousands of cycles.
        Contract::new(3.0, 0.05)
    }

    fn fault_plans(&self, quick: bool) -> Vec<FaultPlan> {
        let mut v = vec![FaultPlan::stage_stalls(11, 300, 4)];
        if !quick {
            // Intensity 2.0: still in contract.
            v.push(FaultPlan::backpressure(5, 200, 10));
        }
        // Far out of contract: retirement holds of thousands of cycles
        // wedge one branch far beyond the composed promise.
        v.push(FaultPlan::backpressure(7, 900, 4000));
        v
    }

    fn set_fault(&mut self, plan: Option<FaultPlan>) {
        // The plan's seed picks the degraded stage, so successive plans
        // hit the fan-out source, a single branch, and the merge point
        // rather than always the same stage.
        let stages = self.backend.composite().topology().stages.len();
        match plan {
            Some(p) => {
                let stage = (p.seed as usize) % stages;
                self.backend.composite_mut().set_fault(stage, Some(p));
            }
            None => self.backend.composite_mut().set_fault(0, None),
        }
    }

    fn check_nl(&mut self) -> Vec<NlResult> {
        let sweep: Vec<usize> = vec![2, 4, 6, 8, 10];
        let mut makespans = Vec::new();
        let mut worst_bound = 0.0_f64;
        let mut bounds_hold = true;
        for &items in &sweep {
            // One shared seed: a longer stream is a strict prefix
            // extension of a shorter one, so makespan must be monotone.
            let s = StreamSpec { items, seed: 23 };
            let w = to_spec(&s);
            let Ok(obs) = self.backend.measure(&w) else {
                continue;
            };
            let actual = Metric::Latency.of(&obs);
            makespans.push(actual);
            if let Ok(p) = self
                .backend
                .predict(&w, InterfaceKind::NaturalLanguage, Metric::Latency)
            {
                if !p.contains(actual) {
                    bounds_hold = false;
                    worst_bound = worst_bound.max(crate::harness::relative_error(&p, actual));
                }
            }
        }
        let mut out = vec![NlResult {
            claim: "DAG stream makespan within composite NL bounds".into(),
            holds: bounds_hold,
            worst: worst_bound,
        }];
        // Monotonicity: more items can only take longer, branched or
        // not — the DAG only adds parallel capacity.
        let mut worst_drop = 0.0_f64;
        for pair in makespans.windows(2) {
            if pair[1] < pair[0] * 0.95 {
                worst_drop = worst_drop.max((pair[0] - pair[1]) / pair[0]);
            }
        }
        out.push(NlResult {
            claim: "DAG stream makespan nondecreasing in items".into(),
            holds: worst_drop == 0.0,
            worst: worst_drop,
        });
        out
    }
}
