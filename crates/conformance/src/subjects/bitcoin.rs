//! Conformance subject for the Bitcoin miner.

use std::collections::HashMap;

use accel_bitcoin::interface;
use accel_bitcoin::miner::{MineJob, MinerConfig, MinerCycleSim};
use perf_core::iface::{InterfaceBundle, InterfaceKind, Metric};
use perf_core::{CoreError, GroundTruth, Observation, Prediction};
use perf_sim::FaultPlan;

use crate::budget::{Budget, Contract};
use crate::harness::{CaseSpec, Subject};
use crate::report::NlResult;

/// Generator-level description of one mining job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitcoinSpec {
    /// Hardware configuration parameter `Loop`.
    pub loop_: u64,
    /// Job seed (header + start nonce).
    pub seed: u64,
    /// Nonces to scan.
    pub nonce_count: u32,
    /// Required leading zero bits.
    pub difficulty: u32,
}

/// Bitcoin miner subject; interfaces are per-`Loop`, so the bundle is
/// built lazily per configuration.
pub struct BitcoinSubject {
    bundles: HashMap<u64, InterfaceBundle<MineJob>>,
    fault: Option<FaultPlan>,
}

impl BitcoinSubject {
    /// Creates the subject.
    pub fn new() -> BitcoinSubject {
        BitcoinSubject {
            bundles: HashMap::new(),
            fault: None,
        }
    }

    fn bundle(&mut self, loop_: u64) -> &InterfaceBundle<MineJob> {
        self.bundles.entry(loop_).or_insert_with(|| {
            interface::bundle(MinerConfig::with_loop(loop_).expect("valid loop"))
        })
    }
}

impl Default for BitcoinSubject {
    fn default() -> Self {
        BitcoinSubject::new()
    }
}

impl Subject for BitcoinSubject {
    type Spec = BitcoinSpec;
    type Workload = (u64, MineJob);

    fn name(&self) -> &'static str {
        "bitcoin-miner"
    }

    fn specs(&mut self, quick: bool) -> Vec<CaseSpec<BitcoinSpec>> {
        let mut v = Vec::new();
        let loops: &[u64] = if quick { &[1, 8] } else { &[1, 8, 64] };
        for &l in loops {
            v.push(CaseSpec::random(
                format!("exhaustive-loop{l}"),
                BitcoinSpec {
                    loop_: l,
                    seed: 2,
                    nonce_count: 200,
                    difficulty: 256,
                },
            ));
            v.push(CaseSpec::random(
                format!("stochastic-loop{l}"),
                BitcoinSpec {
                    loop_: l,
                    seed: 3,
                    nonce_count: if quick { 5_000 } else { 20_000 },
                    difficulty: 8,
                },
            ));
        }
        // Adversarial: single-nonce scans, an immediate find, a
        // near-empty stochastic scan and the widest hardware variant.
        v.push(CaseSpec::adversarial(
            "single-nonce-exhaustive",
            BitcoinSpec {
                loop_: 8,
                seed: 4,
                nonce_count: 1,
                difficulty: 256,
            },
        ));
        v.push(CaseSpec::adversarial(
            "single-nonce-instant-find",
            BitcoinSpec {
                loop_: 8,
                seed: 5,
                nonce_count: 1,
                difficulty: 0,
            },
        ));
        v.push(CaseSpec::adversarial(
            "two-nonce-easy",
            BitcoinSpec {
                loop_: 8,
                seed: 6,
                nonce_count: 2,
                difficulty: 2,
            },
        ));
        v.push(CaseSpec::adversarial(
            "single-nonce-loop1",
            BitcoinSpec {
                loop_: 1,
                seed: 7,
                nonce_count: 1,
                difficulty: 0,
            },
        ));
        // Stochastic difficulty (interfaces must treat the scan as
        // first-find) but a target this seed never hits in one nonce:
        // the scan exhausts unfound and pays no report, undercutting
        // the instant-find latency floor.
        v.push(CaseSpec::adversarial(
            "single-nonce-no-find",
            BitcoinSpec {
                loop_: 8,
                seed: 9,
                nonce_count: 1,
                difficulty: 64,
            },
        ));
        if !quick {
            v.push(CaseSpec::adversarial(
                "max-unroll",
                BitcoinSpec {
                    loop_: 128,
                    seed: 8,
                    nonce_count: 100,
                    difficulty: 256,
                },
            ));
        }
        v
    }

    fn realize(&mut self, spec: &BitcoinSpec) -> (u64, MineJob) {
        (
            spec.loop_,
            MineJob::random(spec.seed, spec.nonce_count, spec.difficulty),
        )
    }

    fn describe(&self, spec: &BitcoinSpec) -> String {
        format!(
            "Loop={} scan of {} nonce(s) at difficulty {}",
            spec.loop_, spec.nonce_count, spec.difficulty
        )
    }

    fn shrink(&mut self, spec: &BitcoinSpec) -> Vec<BitcoinSpec> {
        let mut out = Vec::new();
        if spec.nonce_count > 1 {
            out.push(BitcoinSpec {
                nonce_count: spec.nonce_count / 2,
                ..*spec
            });
            out.push(BitcoinSpec {
                nonce_count: spec.nonce_count - 1,
                ..*spec
            });
        }
        out
    }

    fn measure(&mut self, w: &(u64, MineJob)) -> Result<Observation, CoreError> {
        let cfg = MinerConfig::with_loop(w.0).expect("valid loop");
        let mut sim = MinerCycleSim::new(cfg);
        sim.set_fault(self.fault);
        sim.measure(&w.1)
    }

    fn predict(
        &mut self,
        kind: InterfaceKind,
        w: &(u64, MineJob),
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        self.bundle(w.0)
            .get(kind)
            .ok_or_else(|| CoreError::Artifact(format!("no {} interface", kind.name())))?
            .predict(&w.1, metric)
    }

    fn budget(&self, _kind: InterfaceKind, _metric: Metric) -> Budget {
        // The miner is deterministic hardware: exhaustive scans are
        // predicted exactly and stochastic ones via bounds, so the
        // budget is essentially numerical slack. The 2-cycle deadband
        // absorbs fault-injected stalls on single-nonce scans without
        // masking the (4-cycle) report-amortization divergence this
        // harness once caught here.
        Budget::new(0.002, 0.01).with_atol(2.0)
    }

    fn contract(&self) -> Contract {
        // One stall opportunity per hash against `Loop` useful cycles:
        // at Loop = 1 the relative error equals the intensity itself.
        Contract::new(0.05, 1.5)
    }

    fn fault_plans(&self, quick: bool) -> Vec<FaultPlan> {
        let mut v = vec![FaultPlan::stage_stalls(21, 10, 2)];
        if !quick {
            v.push(FaultPlan::stage_stalls(22, 20, 1));
        }
        v.push(FaultPlan::stage_stalls(23, 500, 8));
        v
    }

    fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    fn check_nl(&mut self) -> Vec<NlResult> {
        let nl = accel_bitcoin::interface::nl::interface();
        let loops = [1u64, 2, 4, 8, 16, 32, 64];
        let cfgs: Vec<MinerConfig> = loops
            .iter()
            .map(|&l| MinerConfig::with_loop(l).expect("valid loop"))
            .collect();
        let mut out = Vec::new();

        // Latency == Loop: checked against the simulator, not just the
        // analytic model — a single-nonce exhaustive scan takes
        // exactly one hash latency.
        let lat: Vec<(f64, f64)> = cfgs
            .iter()
            .filter_map(|c| {
                let mut sim = MinerCycleSim::new(*c);
                sim.set_fault(self.fault);
                let job = MineJob::random(9, 1, 256);
                sim.measure(&job)
                    .ok()
                    .map(|obs| (c.loop_ as f64, obs.latency.as_f64()))
            })
            .collect();
        if let Ok(v) = nl.claims[0].check(&lat) {
            out.push(NlResult {
                claim: "latency equals Loop".into(),
                holds: v.holds,
                worst: v.worst_violation,
            });
        }

        let tput: Vec<(f64, f64)> = cfgs
            .iter()
            .map(|c| (c.loop_ as f64, c.hash_throughput()))
            .collect();
        if let Ok(v) = nl.claims[1].check(&tput) {
            out.push(NlResult {
                claim: "throughput decreasing in Loop".into(),
                holds: v.holds,
                worst: v.worst_violation,
            });
        }

        // Variable area inversely proportional to Loop (fixed control
        // overhead subtracted, as the interface prose implies).
        let area: Vec<(f64, f64)> = cfgs
            .iter()
            .map(|c| (c.loop_ as f64, c.area_kge() - 48.0))
            .collect();
        if let Ok(v) = nl.claims[2].check(&area) {
            out.push(NlResult {
                claim: "area inversely proportional to Loop".into(),
                holds: v.holds,
                worst: v.worst_violation,
            });
        }
        out
    }
}
