//! Conformance subject for the JPEG decoder.

use accel_jpeg::cycle::JpegCycleSim;
use accel_jpeg::huffman::BlockCost;
use accel_jpeg::hw::JpegHwConfig;
use accel_jpeg::interface;
use accel_jpeg::workload::{ColorMode, Image, ImageGen};
use perf_core::iface::{InterfaceBundle, InterfaceKind, Metric};
use perf_core::validate::collect_axis_samples;
use perf_core::{CoreError, GroundTruth, Observation, Prediction};
use perf_sim::FaultPlan;

use crate::budget::{Budget, Contract};
use crate::harness::{CaseSpec, Subject};
use crate::report::NlResult;

/// Generator-level description of one JPEG workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JpegSpec {
    /// Fully randomized image from the default generator.
    Random { seed: u64 },
    /// Sized grayscale image (dims in pixels, multiples of 8).
    Sized {
        seed: u64,
        width: u32,
        height: u32,
        quality: u8,
    },
    /// Sized 4:2:0 color image (dims multiples of 16).
    Color {
        seed: u64,
        width: u32,
        height: u32,
        quality: u8,
    },
    /// Hand-built image of identical blocks — lets the harness hit
    /// pathological Huffman tables (huge `bits`) and degenerate
    /// all-zero blocks the random generator never produces.
    Flat { blocks: u32, bits: u32, nonzero: u8 },
}

/// JPEG decoder subject: cycle-accurate pipeline sim vs the NL,
/// program and Petri-net interfaces.
pub struct JpegSubject {
    bundle: InterfaceBundle<Image>,
    fault: Option<FaultPlan>,
}

impl JpegSubject {
    /// Creates the subject with the shipped interface bundle.
    pub fn new() -> JpegSubject {
        JpegSubject {
            bundle: interface::bundle(),
            fault: None,
        }
    }
}

impl Default for JpegSubject {
    fn default() -> Self {
        JpegSubject::new()
    }
}

impl Subject for JpegSubject {
    type Spec = JpegSpec;
    type Workload = Image;

    fn name(&self) -> &'static str {
        "jpeg-decoder"
    }

    fn specs(&mut self, quick: bool) -> Vec<CaseSpec<JpegSpec>> {
        let mut v = Vec::new();
        let n_random = if quick { 5 } else { 18 };
        for seed in 0..n_random {
            v.push(CaseSpec::random(
                format!("random-{seed}"),
                JpegSpec::Random { seed },
            ));
        }
        let sized: &[(u32, u32, u8)] = if quick {
            &[(64, 64, 30), (128, 128, 60)]
        } else {
            &[(64, 64, 30), (128, 128, 60), (256, 256, 85), (384, 128, 50)]
        };
        for &(w, h, q) in sized {
            v.push(CaseSpec::random(
                format!("sized-{w}x{h}-q{q}"),
                JpegSpec::Sized {
                    seed: 101,
                    width: w,
                    height: h,
                    quality: q,
                },
            ));
        }
        v.push(CaseSpec::random(
            "color-128x64",
            JpegSpec::Color {
                seed: 44,
                width: 128,
                height: 64,
                quality: 70,
            },
        ));
        // Adversarial edge cases: singleton, extreme-quality,
        // pathological Huffman, IDCT-floor and page-crossing images.
        v.push(CaseSpec::adversarial(
            "single-block",
            JpegSpec::Sized {
                seed: 7,
                width: 8,
                height: 8,
                quality: 50,
            },
        ));
        v.push(CaseSpec::adversarial(
            "single-block-q95",
            JpegSpec::Sized {
                seed: 7,
                width: 8,
                height: 8,
                quality: 95,
            },
        ));
        v.push(CaseSpec::adversarial(
            "tiny-color",
            JpegSpec::Color {
                seed: 9,
                width: 16,
                height: 16,
                quality: 40,
            },
        ));
        v.push(CaseSpec::adversarial(
            "flat-minimal",
            JpegSpec::Flat {
                blocks: 1,
                bits: 0,
                nonzero: 0,
            },
        ));
        v.push(CaseSpec::adversarial(
            "huffman-bomb",
            JpegSpec::Flat {
                blocks: 1,
                bits: 4000,
                nonzero: 63,
            },
        ));
        v.push(CaseSpec::adversarial(
            "huffman-bomb-pages",
            JpegSpec::Flat {
                blocks: 129,
                bits: 3000,
                nonzero: 63,
            },
        ));
        v.push(CaseSpec::adversarial(
            "idct-floor-pages",
            JpegSpec::Flat {
                blocks: 128,
                bits: 0,
                nonzero: 0,
            },
        ));
        v.push(CaseSpec::adversarial(
            "dequant-heavy",
            JpegSpec::Flat {
                blocks: 16,
                bits: 40,
                nonzero: 63,
            },
        ));
        if !quick {
            v.push(CaseSpec::adversarial(
                "max-size",
                JpegSpec::Sized {
                    seed: 70,
                    width: 512,
                    height: 512,
                    quality: 60,
                },
            ));
        }
        v
    }

    fn realize(&mut self, spec: &JpegSpec) -> Image {
        match *spec {
            JpegSpec::Random { seed } => ImageGen::new(seed).gen_image(),
            JpegSpec::Sized {
                seed,
                width,
                height,
                quality,
            } => ImageGen::new(seed).gen_sized(width, height, quality),
            JpegSpec::Color {
                seed,
                width,
                height,
                quality,
            } => ImageGen::new(seed).gen_color(width, height, quality),
            JpegSpec::Flat {
                blocks,
                bits,
                nonzero,
            } => Image {
                width: 8 * blocks,
                height: 8,
                quality: 50,
                color: ColorMode::Grayscale,
                blocks: vec![BlockCost { bits, nonzero }; blocks as usize],
            },
        }
    }

    fn describe(&self, spec: &JpegSpec) -> String {
        match *spec {
            JpegSpec::Random { seed } => format!("random image (seed {seed})"),
            JpegSpec::Sized {
                width,
                height,
                quality,
                ..
            } => format!("{width}x{height} grayscale, quality {quality}"),
            JpegSpec::Color {
                width,
                height,
                quality,
                ..
            } => format!("{width}x{height} 4:2:0 color, quality {quality}"),
            JpegSpec::Flat {
                blocks,
                bits,
                nonzero,
            } => format!("{blocks} identical blocks ({bits} bits, {nonzero} nonzero each)"),
        }
    }

    fn shrink(&mut self, spec: &JpegSpec) -> Vec<JpegSpec> {
        let half_dim = |d: u32| ((d / 2 + 7) & !7).max(8);
        let mut out = Vec::new();
        match *spec {
            JpegSpec::Random { seed } => {
                for (w, h) in [(64, 64), (16, 16), (8, 8)] {
                    out.push(JpegSpec::Sized {
                        seed,
                        width: w,
                        height: h,
                        quality: 60,
                    });
                }
            }
            JpegSpec::Sized {
                seed,
                width,
                height,
                quality,
            } => {
                if width > 8 {
                    out.push(JpegSpec::Sized {
                        seed,
                        width: half_dim(width),
                        height,
                        quality,
                    });
                }
                if height > 8 {
                    out.push(JpegSpec::Sized {
                        seed,
                        width,
                        height: half_dim(height),
                        quality,
                    });
                }
            }
            JpegSpec::Color {
                seed,
                width,
                height,
                quality,
            } => {
                // Drop color first, then let the Sized rules shrink.
                out.push(JpegSpec::Sized {
                    seed,
                    width,
                    height,
                    quality,
                });
            }
            JpegSpec::Flat {
                blocks,
                bits,
                nonzero,
            } => {
                if blocks > 1 {
                    out.push(JpegSpec::Flat {
                        blocks: blocks / 2,
                        bits,
                        nonzero,
                    });
                }
                if bits > 0 {
                    out.push(JpegSpec::Flat {
                        blocks,
                        bits: bits / 2,
                        nonzero,
                    });
                }
                if nonzero > 0 {
                    out.push(JpegSpec::Flat {
                        blocks,
                        bits,
                        nonzero: nonzero / 2,
                    });
                }
            }
        }
        out.retain(|c| c != spec);
        out
    }

    fn measure(&mut self, w: &Image) -> Result<Observation, CoreError> {
        let mut sim = JpegCycleSim::new(JpegHwConfig::default());
        sim.set_fault(self.fault);
        sim.measure(w)
    }

    fn predict(
        &mut self,
        kind: InterfaceKind,
        w: &Image,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        self.bundle
            .get(kind)
            .ok_or_else(|| CoreError::Artifact(format!("no {} interface", kind.name())))?
            .predict(w, metric)
    }

    fn budget(&self, kind: InterfaceKind, _metric: Metric) -> Budget {
        match kind {
            // Aggregate-statistics program: a few percent typical,
            // up to ~1/3 on degenerate single-block images.
            InterfaceKind::Program => Budget::new(0.10, 0.35),
            // Per-block Petri net: sub-1% mean (Table 1). The
            // deadband covers the pipeline's per-stage handoff cycles
            // the event-driven net does not tick through.
            _ => Budget::new(0.01, 0.05).with_atol(8.0),
        }
    }

    fn contract(&self) -> Contract {
        Contract::new(0.5, 0.3)
    }

    fn fault_plans(&self, quick: bool) -> Vec<FaultPlan> {
        let mut v = vec![FaultPlan::stage_stalls(11, 20, 2)];
        if !quick {
            v.push(FaultPlan {
                seed: 12,
                stage_stall_pm: 10,
                stage_stall_max: 2,
                backpressure_pm: 5,
                backpressure_len: 4,
                ..FaultPlan::default()
            });
        }
        v.push(FaultPlan {
            seed: 13,
            stage_stall_pm: 400,
            stage_stall_max: 12,
            backpressure_pm: 100,
            backpressure_len: 16,
            ..FaultPlan::default()
        });
        v
    }

    fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    fn check_nl(&mut self) -> Vec<NlResult> {
        let mut sim = JpegCycleSim::new(JpegHwConfig::default());
        let nl = &self.bundle.natural_language;
        let mut out = Vec::new();

        let mut g = ImageGen::new(77);
        let rate_sweep = g.gen_quality_sweep(128, 128, &[20, 35, 50, 65, 80, 92]);
        if let Ok(samples) = collect_axis_samples(&mut sim, Metric::Latency, &rate_sweep, |i| {
            i.compress_rate()
        }) {
            if let Ok(v) = nl.claims[0].check(&samples) {
                out.push(NlResult {
                    claim: "latency decreasing in compress_rate".into(),
                    holds: v.holds,
                    worst: v.worst_violation,
                });
            }
        }

        let mut g = ImageGen::new(78);
        let size_sweep: Vec<_> = [64u32, 128, 192, 256, 384]
            .iter()
            .map(|&d| g.gen_sized(d, d, 60))
            .collect();
        if let Ok(samples) = collect_axis_samples(&mut sim, Metric::Latency, &size_sweep, |i| {
            i.orig_size() as f64
        }) {
            if let Ok(v) = nl.claims[1].check(&samples) {
                out.push(NlResult {
                    claim: "latency proportional to orig_size".into(),
                    holds: v.holds,
                    worst: v.worst_violation,
                });
            }
        }

        let tput_rate: Vec<(f64, f64)> = rate_sweep
            .iter()
            .filter_map(|i| {
                sim.measure(i)
                    .ok()
                    .map(|obs| (i.compress_rate(), Metric::Throughput.of(&obs)))
            })
            .collect();
        if let Ok(v) = nl.claims[2].check(&tput_rate) {
            out.push(NlResult {
                claim: "throughput increasing in compress_rate".into(),
                holds: v.holds,
                worst: v.worst_violation,
            });
        }
        out
    }
}
