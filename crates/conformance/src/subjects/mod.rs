//! Harness adapters for the four accelerators and the composite
//! pipeline.

pub mod bitcoin;
pub mod dag;
pub mod jpeg;
pub mod pipeline;
pub mod protoacc;
pub mod vta;
