//! Harness adapters for the four accelerators.

pub mod bitcoin;
pub mod jpeg;
pub mod protoacc;
pub mod vta;
