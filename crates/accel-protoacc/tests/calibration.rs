//! Calibration harness for the Protoacc interfaces.
use accel_protoacc::interface::program::ProtoaccProgramInterface;
use accel_protoacc::simx::{ProtoWorkload, ProtoaccSim};
use accel_protoacc::suite;
use perf_core::iface::{Metric, PerfInterface};
use perf_core::GroundTruth;

#[test]
fn per_format_report() {
    let iface = ProtoaccProgramInterface::new().unwrap();
    for d in suite::formats() {
        let mut sim = ProtoaccSim::default();
        let w = ProtoWorkload::of_format(&d, 40, 42);
        let obs = sim.measure(&w).unwrap();
        let t_meas = obs.throughput.items_per_cycle();
        let t_pred = iface.predict(&w, Metric::Throughput).unwrap().midpoint();
        let l = iface.predict(&w, Metric::Latency).unwrap();
        let (lo, hi) = match l {
            perf_core::Prediction::Bounds { min, max } => (min, max),
            _ => (0.0, 0.0),
        };
        println!(
            "{:22} cyc/msg meas {:9.1} pred {:9.1} err {:6.2}% | lat {:8} in [{:8.0},{:9.0}] {} | mem {:5.1}",
            d.name,
            1.0 / t_meas,
            1.0 / t_pred,
            (t_pred - t_meas).abs() / t_meas * 100.0,
            obs.latency.get(),
            lo,
            hi,
            if (obs.latency.as_f64()) >= lo && (obs.latency.as_f64()) <= hi { "ok" } else { "OUT" },
            sim.observed_mem_latency(),
        );
    }
}
