//! Property tests for the protobuf wire format and message model.

use accel_protoacc::descriptor::{FieldValue, Message};
use accel_protoacc::wire;
use proptest::prelude::*;

/// Strategy for a random message tree.
fn message_strategy() -> impl Strategy<Value = Message> {
    let scalar = prop_oneof![
        any::<u64>().prop_map(FieldValue::Uint64),
        any::<bool>().prop_map(FieldValue::Bool),
        any::<u64>().prop_map(FieldValue::Fixed64),
        any::<u32>().prop_map(FieldValue::Fixed32),
        "[a-z]{0,40}".prop_map(FieldValue::Str),
        prop::collection::vec(any::<u8>(), 0..60).prop_map(FieldValue::Bytes),
    ];
    let leaf =
        prop::collection::vec((1u32..200, scalar), 0..8).prop_map(|fields| Message { fields });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            prop::collection::vec((1u32..200, any::<u64>().prop_map(FieldValue::Uint64)), 0..5),
            prop::collection::vec((1u32..200, inner), 0..3),
        )
            .prop_map(|(scalars, subs)| {
                let mut fields: Vec<(u32, FieldValue)> = scalars;
                fields.extend(subs.into_iter().map(|(n, m)| (n, FieldValue::Message(m))));
                Message { fields }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `encoded_len` always agrees with the actual encoding.
    #[test]
    fn encoded_len_matches(msg in message_strategy()) {
        prop_assert_eq!(wire::encode(&msg).len(), wire::encoded_len(&msg));
    }

    /// Every encoding decodes, with one raw field per encoded field.
    #[test]
    fn encodings_decode(msg in message_strategy()) {
        let enc = wire::encode(&msg);
        let raw = wire::decode_raw(&enc);
        prop_assert!(raw.is_some(), "well-formed encoding must decode");
        prop_assert_eq!(raw.expect("checked").len(), msg.fields.len());
    }

    /// Field numbers and payload bytes survive the round trip.
    #[test]
    fn field_payloads_roundtrip(msg in message_strategy()) {
        let raw = wire::decode_raw(&wire::encode(&msg)).expect("decodes");
        for ((num, val), (rnum, rval)) in msg.fields.iter().zip(&raw) {
            prop_assert_eq!(num, rnum);
            match (val, rval) {
                (FieldValue::Uint64(v), wire::RawValue::Varint(r)) => prop_assert_eq!(v, r),
                (FieldValue::Bool(b), wire::RawValue::Varint(r)) =>
                    prop_assert_eq!(u64::from(*b), *r),
                (FieldValue::Fixed64(v), wire::RawValue::I64(r)) => prop_assert_eq!(v, r),
                (FieldValue::Fixed32(v), wire::RawValue::I32(r)) => prop_assert_eq!(v, r),
                (FieldValue::Str(s), wire::RawValue::Len(r)) =>
                    prop_assert_eq!(s.as_bytes(), &r[..]),
                (FieldValue::Bytes(b), wire::RawValue::Len(r)) => prop_assert_eq!(b, r),
                (FieldValue::Message(m), wire::RawValue::Len(r)) =>
                    prop_assert_eq!(&wire::encode(m), r),
                other => prop_assert!(false, "wire-type mismatch: {other:?}"),
            }
        }
    }

    /// Varints round-trip for all of u64.
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = bytes::BytesMut::new();
        wire::put_varint(&mut buf, v);
        prop_assert_eq!(buf.len(), wire::varint_len(v));
        let mut b = bytes::Bytes::from(buf.to_vec());
        prop_assert_eq!(wire::get_varint(&mut b), Some(v));
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = wire::decode_raw(&data);
    }

    /// Tree metrics are consistent: total fields bounds, depth >= 1.
    #[test]
    fn tree_metrics(msg in message_strategy()) {
        prop_assert!(msg.depth() >= 1);
        prop_assert!(msg.total_fields() >= msg.num_fields());
        let subs: usize = msg.submessages().count();
        prop_assert!(subs <= msg.num_fields());
    }
}
