//! Protobuf message schemas (descriptors) and instances.

use perf_iface_lang::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of a field.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldKind {
    /// Varint-encoded unsigned integer.
    Uint64,
    /// Varint-encoded boolean.
    Bool,
    /// 8-byte fixed integer.
    Fixed64,
    /// 4-byte fixed integer.
    Fixed32,
    /// Length-delimited UTF-8 string; the parameter is the generated
    /// length range in bytes.
    Str(std::ops::Range<usize>),
    /// Length-delimited opaque bytes.
    Bytes(std::ops::Range<usize>),
    /// A nested message.
    Message(Box<MessageDesc>),
}

/// One field of a message schema.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDesc {
    /// Protobuf field number (tag).
    pub number: u32,
    /// Field kind.
    pub kind: FieldKind,
    /// Repetition count range: `1..2` for singular fields, larger for
    /// repeated fields.
    pub repeat: std::ops::Range<usize>,
}

impl FieldDesc {
    /// A singular field.
    pub fn single(number: u32, kind: FieldKind) -> FieldDesc {
        FieldDesc {
            number,
            kind,
            repeat: 1..2,
        }
    }

    /// A repeated field generating `count` entries.
    pub fn repeated(number: u32, kind: FieldKind, count: std::ops::Range<usize>) -> FieldDesc {
        FieldDesc {
            number,
            kind,
            repeat: count,
        }
    }
}

/// A message schema.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MessageDesc {
    /// Schema name (for reports).
    pub name: String,
    /// Field schemas.
    pub fields: Vec<FieldDesc>,
}

impl MessageDesc {
    /// Creates a named schema.
    pub fn new(name: impl Into<String>, fields: Vec<FieldDesc>) -> MessageDesc {
        MessageDesc {
            name: name.into(),
            fields,
        }
    }

    /// Maximum nesting depth below (and including) this message: 1 for
    /// a flat message.
    pub fn depth(&self) -> usize {
        1 + self
            .fields
            .iter()
            .map(|f| match &f.kind {
                FieldKind::Message(m) => m.depth(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Generates a concrete instance with the given seed.
    pub fn instantiate(&self, seed: u64) -> Message {
        let mut rng = StdRng::seed_from_u64(seed);
        self.gen_with(&mut rng)
    }

    fn gen_with(&self, rng: &mut StdRng) -> Message {
        let mut fields = Vec::new();
        for f in &self.fields {
            let count = if f.repeat.is_empty() {
                1
            } else {
                rng.gen_range(f.repeat.clone())
            };
            for _ in 0..count {
                let v = match &f.kind {
                    FieldKind::Uint64 => {
                        FieldValue::Uint64(rng.gen::<u64>() >> rng.gen_range(0..60))
                    }
                    FieldKind::Bool => FieldValue::Bool(rng.gen()),
                    FieldKind::Fixed64 => FieldValue::Fixed64(rng.gen()),
                    FieldKind::Fixed32 => FieldValue::Fixed32(rng.gen()),
                    FieldKind::Str(r) => {
                        let len = if r.is_empty() {
                            0
                        } else {
                            rng.gen_range(r.clone())
                        };
                        FieldValue::Str(
                            (0..len)
                                .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
                                .collect(),
                        )
                    }
                    FieldKind::Bytes(r) => {
                        let len = if r.is_empty() {
                            0
                        } else {
                            rng.gen_range(r.clone())
                        };
                        let mut b = vec![0u8; len];
                        rng.fill(&mut b[..]);
                        FieldValue::Bytes(b)
                    }
                    FieldKind::Message(m) => FieldValue::Message(m.gen_with(rng)),
                };
                fields.push((f.number, v));
            }
        }
        Message { fields }
    }
}

/// A concrete field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Varint integer.
    Uint64(u64),
    /// Boolean (wire: varint 0/1).
    Bool(bool),
    /// 8-byte fixed.
    Fixed64(u64),
    /// 4-byte fixed.
    Fixed32(u32),
    /// Length-delimited string.
    Str(String),
    /// Length-delimited bytes.
    Bytes(Vec<u8>),
    /// Nested message.
    Message(Message),
}

/// A concrete message instance.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Message {
    /// Field-number / value pairs, in serialization order.
    pub fields: Vec<(u32, FieldValue)>,
}

impl Message {
    /// Number of fields at this nesting level.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Direct submessages at this level.
    pub fn submessages(&self) -> impl Iterator<Item = &Message> {
        self.fields.iter().filter_map(|(_, v)| match v {
            FieldValue::Message(m) => Some(m),
            _ => None,
        })
    }

    /// Total fields across the whole tree.
    pub fn total_fields(&self) -> usize {
        self.num_fields() + self.submessages().map(Message::total_fields).sum::<usize>()
    }

    /// Maximum nesting depth (1 for flat).
    pub fn depth(&self) -> usize {
        1 + self.submessages().map(Message::depth).max().unwrap_or(0)
    }

    /// Converts to the PIL record shape consumed by the Fig. 3 program
    /// interface: `{ num_fields, num_writes, wire_bytes, subs: [...] }`.
    ///
    /// `chunk_bytes` is the accelerator's output-chunk size, needed to
    /// compute `num_writes` (total output chunks for the whole tree;
    /// only the top level's value is used by the interface).
    pub fn to_value(&self, chunk_bytes: usize) -> Value {
        let wire = crate::wire::encode(self);
        let num_writes = wire.len().div_ceil(chunk_bytes).max(1);
        self.to_value_inner(num_writes, wire.len())
    }

    fn to_value_inner(&self, num_writes: usize, wire_bytes: usize) -> Value {
        let subs: Vec<Value> = self
            .submessages()
            .map(|m| {
                // Submessage records carry their own field counts; the
                // writer-side numbers matter only at the top.
                m.to_value_inner(0, 0)
            })
            .collect();
        Value::record([
            ("num_fields", Value::from(self.num_fields())),
            ("num_writes", Value::from(num_writes)),
            ("wire_bytes", Value::from(wire_bytes)),
            ("subs", Value::list(subs)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested_desc() -> MessageDesc {
        MessageDesc::new(
            "outer",
            vec![
                FieldDesc::single(1, FieldKind::Uint64),
                FieldDesc::single(2, FieldKind::Str(4..10)),
                FieldDesc::single(
                    3,
                    FieldKind::Message(Box::new(MessageDesc::new(
                        "inner",
                        vec![
                            FieldDesc::single(1, FieldKind::Fixed64),
                            FieldDesc::single(2, FieldKind::Bool),
                        ],
                    ))),
                ),
            ],
        )
    }

    #[test]
    fn depth_computed_on_schema_and_instance() {
        let d = nested_desc();
        assert_eq!(d.depth(), 2);
        let m = d.instantiate(1);
        assert_eq!(m.depth(), 2);
        assert_eq!(m.num_fields(), 3);
        assert_eq!(m.total_fields(), 5);
    }

    #[test]
    fn instantiation_is_deterministic() {
        let d = nested_desc();
        assert_eq!(d.instantiate(42), d.instantiate(42));
        assert_ne!(d.instantiate(42), d.instantiate(43));
    }

    #[test]
    fn repeated_fields_expand() {
        let d = MessageDesc::new("rep", vec![FieldDesc::repeated(1, FieldKind::Uint64, 5..6)]);
        let m = d.instantiate(7);
        assert_eq!(m.num_fields(), 5);
    }

    #[test]
    fn string_lengths_respect_range() {
        let d = MessageDesc::new("s", vec![FieldDesc::single(1, FieldKind::Str(8..9))]);
        let m = d.instantiate(3);
        let (_, FieldValue::Str(s)) = &m.fields[0] else {
            panic!("expected string")
        };
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn to_value_shape() {
        let d = nested_desc();
        let m = d.instantiate(9);
        let v = m.to_value(16);
        assert_eq!(v.field("num_fields").unwrap().as_num(), Some(3.0));
        assert!(v.field("num_writes").unwrap().as_num().unwrap() >= 1.0);
        let subs = v.field("subs").unwrap().as_list().unwrap();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].field("num_fields").unwrap().as_num(), Some(2.0));
    }
}
