//! The cycle-accurate Protoacc serializer model.
//!
//! Two overlapping engines connected by a bounded chunk queue:
//!
//! * the **reader** walks the message tree — per (sub)message it pays a
//!   setup cost and two pointer-chasing memory accesses, per 32 fields
//!   a descriptor fetch, and per long string/bytes field a streaming
//!   data fetch — and emits 16-byte output chunks;
//! * the **writer** drains chunks to memory (setup per message, one
//!   cycle per chunk plus the DRAM write).
//!
//! Both engines share one DRAM channel and one TLB, so memory-level
//! contention, row-buffer locality and page walks — the effects §5 of
//! the paper warns about — all show up in measured performance. The
//! Fig. 3 interface summarizes all memory behavior with a single
//! `avg_mem_latency` constant; the difference is exactly its prediction
//! error.

use crate::descriptor::{FieldValue, Message};
use crate::wire;
use perf_core::units::{Cycles, Throughput};
use perf_core::{CoreError, GroundTruth, Observation};
use perf_sim::{DramModel, StageCycles, Tlb, TraceSink};

/// Hardware configuration of the serializer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProtoaccConfig {
    /// Per-(sub)message setup cycles.
    pub msg_setup: u64,
    /// Pointer-chase memory accesses per (sub)message.
    pub ptr_chases: u64,
    /// Fixed cycles per descriptor fetch.
    pub desc_fixed: u64,
    /// Fields covered by one descriptor fetch.
    pub fields_per_desc: usize,
    /// Output chunk size in bytes.
    pub chunk_bytes: usize,
    /// Writer setup cycles per message.
    pub write_setup: u64,
    /// Writer cycles per chunk (plus the DRAM write itself).
    pub write_per_chunk: u64,
    /// Chunk-queue capacity between reader and writer.
    pub chunk_queue_cap: usize,
    /// Strings/bytes longer than this need a streaming data fetch.
    pub inline_threshold: usize,
    /// Reader data-fetch bandwidth, bytes per cycle.
    pub read_bytes_per_cycle: u64,
}

impl Default for ProtoaccConfig {
    fn default() -> ProtoaccConfig {
        ProtoaccConfig {
            msg_setup: 6,
            ptr_chases: 2,
            desc_fixed: 4,
            fields_per_desc: 32,
            chunk_bytes: 16,
            write_setup: 5,
            write_per_chunk: 1,
            chunk_queue_cap: 128,
            inline_threshold: 16,
            read_bytes_per_cycle: 64,
        }
    }
}

/// A serialization workload: a stream of messages (typically many
/// instances of one format).
#[derive(Clone, Debug)]
pub struct ProtoWorkload {
    /// Messages serialized back to back.
    pub messages: Vec<Message>,
    /// Format name, for reports.
    pub name: String,
}

impl ProtoWorkload {
    /// Builds a stream of `n` instances of `desc` with varied seeds.
    pub fn of_format(desc: &crate::descriptor::MessageDesc, n: usize, seed: u64) -> ProtoWorkload {
        ProtoWorkload {
            messages: (0..n)
                .map(|i| desc.instantiate(seed ^ (i as u64) << 17))
                .collect(),
            name: desc.name.clone(),
        }
    }
}

/// Detailed result of serializing one stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamResult {
    /// Total cycles from first read to last write.
    pub total_cycles: u64,
    /// Latency of the first message alone.
    pub first_latency: u64,
    /// Total wire bytes produced.
    pub wire_bytes: u64,
    /// Total output chunks written.
    pub chunks: u64,
}

/// Cycle-accurate Protoacc simulator.
#[derive(Clone, Debug)]
pub struct ProtoaccSim {
    /// Hardware configuration.
    pub cfg: ProtoaccConfig,
    dram: DramModel,
    dram_wr: DramModel,
    tlb: Tlb,
    /// Scrambler state for scattered (pointer-chase) addresses.
    scatter_state: u64,
    /// Sequential allocator for data/descriptor/write regions.
    seq_slot: u64,
    ticks: u64,
    /// Reader/writer busy/stall/idle totals accumulated across streams.
    stage_totals: [StageCycles; 2],
}

impl Default for ProtoaccSim {
    fn default() -> ProtoaccSim {
        ProtoaccSim::new(ProtoaccConfig::default())
    }
}

impl ProtoaccSim {
    /// Creates a simulator over a typical DRAM + TLB memory system.
    pub fn new(cfg: ProtoaccConfig) -> ProtoaccSim {
        ProtoaccSim {
            cfg,
            dram: DramModel::new(90, 40, 16, 4096, 16).with_banks(8),
            dram_wr: DramModel::new(90, 40, 16, 4096, 16).with_banks(8),
            tlb: Tlb::new(32, 4096, 50),
            scatter_state: 1,
            seq_slot: 1,
            ticks: 0,
            stage_totals: [StageCycles::default(); 2],
        }
    }

    /// Cycles simulated so far.
    pub fn ticks_simulated(&self) -> u64 {
        self.ticks
    }

    /// Arms (or with `None` disarms) deterministic fault injection:
    /// memory-latency jitter on both the read and write DRAM channels
    /// (decorrelated by deriving the write channel's seed from the
    /// plan's). [`reset`](ProtoaccSim::reset) rewinds both streams.
    pub fn set_fault(&mut self, plan: Option<perf_sim::FaultPlan>) {
        self.dram.set_fault(plan);
        self.dram_wr.set_fault(plan.map(|p| perf_sim::FaultPlan {
            seed: p.seed.wrapping_add(1),
            ..p
        }));
    }

    /// Extra cycles injected by the armed fault plan so far.
    pub fn fault_cycles(&self) -> u64 {
        self.dram.fault_cycles() + self.dram_wr.fault_cycles()
    }

    /// Empirical mean memory access latency observed so far (what a
    /// vendor would calibrate `avg_mem_latency` to).
    pub fn observed_mem_latency(&self) -> f64 {
        self.dram.avg_latency()
    }

    fn fresh_addr(&mut self, scattered: bool) -> u64 {
        if scattered {
            // Pointer chases land on unpredictable pages.
            self.scatter_state = self
                .scatter_state
                .wrapping_mul(0x9e3779b97f4a7c15)
                .rotate_left(17)
                | 1;
            (self.scatter_state % 0x10_0000) * 4096
        } else {
            // Sequential data region; wraps far before overflowing.
            self.seq_slot = (self.seq_slot + 1) % (1 << 40);
            self.seq_slot * 64
        }
    }

    /// One memory access: TLB translate, then DRAM, starting no earlier
    /// than `now`. Returns completion time.
    fn mem_access(&mut self, now: u64, scattered: bool, bytes: u64) -> u64 {
        let addr = self.fresh_addr(scattered);
        let walk = self.tlb.translate(addr);
        self.dram.access(now + walk, addr, bytes)
    }

    /// A chunk store through the writer's dedicated memory port.
    fn store_chunk(&mut self, now: u64) -> u64 {
        let addr = self.fresh_addr(false);
        let walk = self.tlb.translate(addr);
        self.dram_wr
            .access(now + walk, addr, self.cfg.chunk_bytes as u64)
    }

    /// A streaming data fetch through the reader's prefetcher: the head
    /// latency is hidden; the reader advances at channel bandwidth,
    /// paying only the TLB walk for new pages.
    fn data_fetch(&mut self, now: u64, bytes: u64) -> u64 {
        let addr = self.fresh_addr(false);
        let walk = self.tlb.translate(addr);
        now + walk + 2 + bytes.div_ceil(16)
    }

    /// Walks one (sub)message with the reader, emitting chunk-complete
    /// timestamps into `chunks`. Returns the reader's clock after the
    /// walk. `pending_bytes` accumulates partial chunks across fields.
    fn read_message(
        &mut self,
        msg: &Message,
        mut t: u64,
        chunks: &mut Vec<u64>,
        pending_bytes: &mut usize,
    ) -> u64 {
        t += self.cfg.msg_setup;
        for _ in 0..self.cfg.ptr_chases {
            t = self.mem_access(t, true, 64);
        }
        let groups = msg.num_fields().div_ceil(self.cfg.fields_per_desc).max(1);
        for _ in 0..groups {
            // Descriptor tables are their own heap structures: each
            // group fetch is a dependent, scattered access.
            t += self.cfg.desc_fixed;
            t = self.mem_access(t, true, 64);
        }
        for (number, value) in &msg.fields {
            let t_before = t;
            let field_bytes = match value {
                FieldValue::Message(m) => {
                    // Nested message: recurse (serial pointer chase).
                    t = self.read_message(m, t, chunks, pending_bytes);
                    // The enclosing tag + length prefix still counts.
                    wire::varint_len((*number as u64) << 3) + 2
                }
                FieldValue::Str(s) if s.len() > self.cfg.inline_threshold => {
                    t = self.data_fetch(t, s.len() as u64);
                    wire::varint_len((*number as u64) << 3)
                        + wire::varint_len(s.len() as u64)
                        + s.len()
                }
                FieldValue::Bytes(b) if b.len() > self.cfg.inline_threshold => {
                    t = self.data_fetch(t, b.len() as u64);
                    wire::varint_len((*number as u64) << 3)
                        + wire::varint_len(b.len() as u64)
                        + b.len()
                }
                other => {
                    let m = Message {
                        fields: vec![(*number, other.clone())],
                    };
                    wire::encoded_len(&m)
                }
            };
            // Output chunks appear progressively over the field's
            // processing interval (a long string streams its chunks,
            // it does not release them all at the end).
            *pending_bytes += field_bytes;
            let n = *pending_bytes / self.cfg.chunk_bytes;
            *pending_bytes %= self.cfg.chunk_bytes;
            for k in 1..=n as u64 {
                chunks.push(t_before + (t - t_before) * k / n as u64);
            }
        }
        t
    }

    /// Serializes a stream of messages back to back.
    pub fn serialize_stream(&mut self, msgs: &[Message]) -> StreamResult {
        let mut res = StreamResult::default();
        let mut reader_t = 0u64;
        let mut writer_t = 0u64;
        let mut stream_last_done = 0u64;
        // Completion times of in-flight chunks, bounded by the queue:
        // the reader may run at most `chunk_queue_cap` chunks ahead of
        // the writer.
        let mut inflight: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        // Writer cycle accounting: issue work vs waiting (on chunk
        // availability or store-buffer backpressure).
        let mut writer_busy = 0u64;
        let mut writer_wait = 0u64;
        for msg in msgs {
            let mut chunk_times = Vec::new();
            let mut pending = 0usize;
            let t_end = self.read_message(msg, reader_t, &mut chunk_times, &mut pending);
            if pending > 0 {
                chunk_times.push(t_end);
            }
            reader_t = t_end;
            // Writer: per-message setup, then drain each chunk. Stores
            // are fire-and-forget through a store buffer: the writer is
            // limited by its issue rate and the DRAM channel's
            // occupancy, not by store completion latency.
            writer_t += self.cfg.write_setup;
            writer_busy += self.cfg.write_setup;
            let mut last_store_done = writer_t;
            if chunk_times.is_empty() {
                // Tiny message with no full chunk: one flush write.
                chunk_times.push(t_end);
            }
            for &avail in &chunk_times {
                // Store-buffer backpressure: with too many stores in
                // flight the writer waits for the oldest completion.
                // (The reader-writer chunk queue itself is deep and
                // elastic; the reader is never throttled by it.)
                while inflight.len() >= self.cfg.chunk_queue_cap {
                    let freed = inflight.pop_front().expect("non-empty");
                    if freed > writer_t {
                        writer_wait += freed - writer_t;
                        writer_t = freed;
                    }
                }
                if avail > writer_t {
                    writer_wait += avail - writer_t;
                }
                let start = writer_t.max(avail) + self.cfg.write_per_chunk;
                let done = self.store_chunk(start);
                writer_busy += self.cfg.write_per_chunk;
                writer_t = start;
                last_store_done = last_store_done.max(done);
                inflight.push_back(done);
            }
            res.chunks += chunk_times.len() as u64;
            res.wire_bytes += wire::encoded_len(msg) as u64;
            stream_last_done = stream_last_done.max(last_store_done);
            if res.first_latency == 0 {
                res.first_latency = last_store_done;
            }
        }
        res.total_cycles = stream_last_done.max(reader_t);
        self.ticks += res.total_cycles;
        // The reader is never throttled in this model: it is busy from
        // stream start until its clock stops, then idle while the
        // writer drains. The writer splits its time into issue work,
        // waiting (chunks or store buffer) and tail idle.
        self.stage_totals[0].busy += reader_t;
        self.stage_totals[0].idle += res.total_cycles - reader_t;
        self.stage_totals[1].busy += writer_busy;
        self.stage_totals[1].stall += writer_wait;
        self.stage_totals[1].idle += res.total_cycles.saturating_sub(writer_busy + writer_wait);
        res
    }

    /// Reader/writer busy/stall/idle totals accumulated across streams.
    pub fn stage_totals(&self) -> &[StageCycles; 2] {
        &self.stage_totals
    }

    /// Emits accumulated reader/writer cycle accounting into `sink`
    /// under component `protoacc`.
    pub fn trace_stages(&self, sink: &mut dyn TraceSink) {
        if !sink.is_enabled() {
            return;
        }
        for (name, c) in ["reader", "writer"].iter().zip(&self.stage_totals) {
            sink.stage("protoacc", name, *c);
        }
    }

    /// Resets memory-system state (new measurement window).
    pub fn reset(&mut self) {
        self.dram.reset();
        self.dram_wr.reset();
        self.tlb.reset();
        self.scatter_state = 1;
        self.seq_slot = 1;
    }
}

impl GroundTruth<ProtoWorkload> for ProtoaccSim {
    fn measure(&mut self, w: &ProtoWorkload) -> Result<Observation, CoreError> {
        if w.messages.is_empty() {
            return Err(CoreError::InvalidObservation("empty stream".into()));
        }
        self.reset();
        let res = self.serialize_stream(&w.messages);
        Ok(Observation::new(
            Cycles(res.first_latency),
            Throughput::of(w.messages.len() as u64, Cycles(res.total_cycles)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{FieldDesc, FieldKind, MessageDesc};

    fn flat(nf: usize) -> MessageDesc {
        MessageDesc::new(
            format!("flat{nf}"),
            (0..nf)
                .map(|i| FieldDesc::single(i as u32 + 1, FieldKind::Uint64))
                .collect(),
        )
    }

    fn nested(depth: usize) -> MessageDesc {
        let mut d = flat(4);
        for level in 0..depth {
            d = MessageDesc::new(
                format!("nest{level}"),
                vec![
                    FieldDesc::single(1, FieldKind::Uint64),
                    FieldDesc::single(2, FieldKind::Message(Box::new(d))),
                ],
            );
        }
        d
    }

    #[test]
    fn serializes_and_counts_bytes() {
        let mut sim = ProtoaccSim::default();
        let w = ProtoWorkload::of_format(&flat(8), 10, 1);
        let res = sim.serialize_stream(&w.messages);
        assert!(res.total_cycles > 0);
        assert!(res.wire_bytes > 0);
        assert!(res.chunks > 0);
        assert!(res.first_latency <= res.total_cycles);
    }

    #[test]
    fn more_fields_cost_more_descriptor_fetches() {
        let mut a = ProtoaccSim::default();
        let mut b = ProtoaccSim::default();
        let small = ProtoWorkload::of_format(&flat(8), 20, 2);
        let large = ProtoWorkload::of_format(&flat(120), 20, 2);
        let ra = a.serialize_stream(&small.messages);
        let rb = b.serialize_stream(&large.messages);
        assert!(
            rb.total_cycles > ra.total_cycles,
            "120 fields {} vs 8 fields {}",
            rb.total_cycles,
            ra.total_cycles
        );
    }

    #[test]
    fn nesting_reduces_throughput() {
        // The paper's Fig. 1 Protoacc law: throughput decreases as
        // nesting increases (pointer chasing per level).
        let mut tputs = Vec::new();
        for depth in [0usize, 2, 4, 6] {
            let mut sim = ProtoaccSim::default();
            let w = ProtoWorkload::of_format(&nested(depth), 30, 3);
            let obs = sim.measure(&w).unwrap();
            tputs.push(obs.throughput.items_per_cycle());
        }
        for pair in tputs.windows(2) {
            assert!(
                pair[1] < pair[0],
                "throughput must fall with nesting: {tputs:?}"
            );
        }
    }

    #[test]
    fn long_strings_are_write_bound() {
        let strings = MessageDesc::new(
            "strs",
            vec![FieldDesc::repeated(1, FieldKind::Str(200..201), 8..9)],
        );
        let mut sim = ProtoaccSim::default();
        let w = ProtoWorkload::of_format(&strings, 10, 4);
        let res = sim.serialize_stream(&w.messages);
        // ~1600 wire bytes per message => ~100 chunks each.
        assert!(res.chunks >= 1000, "chunks = {}", res.chunks);
        // Write side must dominate: cycles >= chunks * (1 + mem ~ bw).
        assert!(res.total_cycles >= res.chunks * 2);
    }

    #[test]
    fn stage_accounting_covers_the_stream() {
        let mut sim = ProtoaccSim::default();
        let w = ProtoWorkload::of_format(&flat(16), 20, 7);
        let res = sim.serialize_stream(&w.messages);
        let [reader, writer] = *sim.stage_totals();
        // Both engines' accounted time spans exactly the stream.
        assert_eq!(reader.total(), res.total_cycles);
        assert_eq!(writer.total(), res.total_cycles);
        assert!(reader.busy > 0);
        assert!(writer.busy > 0);
        // Fixed-width fields make the reader the bottleneck: the writer
        // spends most of its time waiting for chunks.
        assert!(writer.stall > writer.busy, "writer {writer:?}");
        let mut sink = perf_sim::MemorySink::new();
        sim.trace_stages(&mut sink);
        assert_eq!(sink.stages.len(), 2);
        assert_eq!(sink.stages[0].stage, "reader");
        assert_eq!(sink.stages[1].cycles, writer);
        sim.trace_stages(&mut perf_sim::NullSink);
    }

    #[test]
    fn deterministic_after_reset() {
        let w = ProtoWorkload::of_format(&nested(3), 15, 5);
        let mut sim = ProtoaccSim::default();
        let a = sim.measure(&w).unwrap();
        let b = sim.measure(&w).unwrap();
        assert_eq!(a.latency, b.latency);
        assert!((a.throughput.items_per_cycle() - b.throughput.items_per_cycle()).abs() < 1e-15);
    }

    #[test]
    fn empty_stream_rejected() {
        let mut sim = ProtoaccSim::default();
        let w = ProtoWorkload {
            messages: vec![],
            name: "empty".into(),
        };
        assert!(sim.measure(&w).is_err());
    }

    #[test]
    fn observed_mem_latency_reported() {
        let mut sim = ProtoaccSim::default();
        let w = ProtoWorkload::of_format(&nested(2), 10, 6);
        sim.serialize_stream(&w.messages);
        let m = sim.observed_mem_latency();
        assert!(m > 20.0 && m < 300.0, "mem latency {m}");
    }
}
