//! The protobuf wire format: a real encoder and decoder.
//!
//! The encoder is the functional model of what Protoacc produces; the
//! decoder exists so round-trip property tests can verify the encoder
//! against an independent reading of the format.

use crate::descriptor::{FieldValue, Message};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protobuf wire types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireType {
    /// Varint-encoded scalar.
    Varint = 0,
    /// 8-byte little-endian.
    I64 = 1,
    /// Length-delimited (strings, bytes, submessages).
    Len = 2,
    /// 4-byte little-endian.
    I32 = 5,
}

/// Encodes a varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes a varint; returns `None` on truncation or overflow.
pub fn get_varint(buf: &mut Bytes) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return None;
        }
        let b = buf.get_u8();
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Size in bytes of a varint.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

fn put_tag(buf: &mut BytesMut, number: u32, wt: WireType) {
    put_varint(buf, ((number as u64) << 3) | wt as u64);
}

fn encode_into(msg: &Message, buf: &mut BytesMut) {
    for (number, value) in &msg.fields {
        match value {
            FieldValue::Uint64(v) => {
                put_tag(buf, *number, WireType::Varint);
                put_varint(buf, *v);
            }
            FieldValue::Bool(b) => {
                put_tag(buf, *number, WireType::Varint);
                put_varint(buf, u64::from(*b));
            }
            FieldValue::Fixed64(v) => {
                put_tag(buf, *number, WireType::I64);
                buf.put_u64_le(*v);
            }
            FieldValue::Fixed32(v) => {
                put_tag(buf, *number, WireType::I32);
                buf.put_u32_le(*v);
            }
            FieldValue::Str(s) => {
                put_tag(buf, *number, WireType::Len);
                put_varint(buf, s.len() as u64);
                buf.put_slice(s.as_bytes());
            }
            FieldValue::Bytes(b) => {
                put_tag(buf, *number, WireType::Len);
                put_varint(buf, b.len() as u64);
                buf.put_slice(b);
            }
            FieldValue::Message(m) => {
                put_tag(buf, *number, WireType::Len);
                let inner = encode(m);
                put_varint(buf, inner.len() as u64);
                buf.put_slice(&inner);
            }
        }
    }
}

/// Serializes a message to wire bytes.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut buf = BytesMut::new();
    encode_into(msg, &mut buf);
    buf.to_vec()
}

/// A decoded field as raw wire data (schema-less decoding).
#[derive(Clone, Debug, PartialEq)]
pub enum RawValue {
    /// A varint payload.
    Varint(u64),
    /// An 8-byte payload.
    I64(u64),
    /// A 4-byte payload.
    I32(u32),
    /// A length-delimited payload.
    Len(Vec<u8>),
}

/// Decodes wire bytes into `(field number, raw value)` pairs; `None` on
/// malformed input.
pub fn decode_raw(data: &[u8]) -> Option<Vec<(u32, RawValue)>> {
    let mut buf = Bytes::copy_from_slice(data);
    let mut out = Vec::new();
    while buf.has_remaining() {
        let key = get_varint(&mut buf)?;
        let number = (key >> 3) as u32;
        if number == 0 {
            return None;
        }
        let value = match key & 7 {
            0 => RawValue::Varint(get_varint(&mut buf)?),
            1 => {
                if buf.remaining() < 8 {
                    return None;
                }
                RawValue::I64(buf.get_u64_le())
            }
            5 => {
                if buf.remaining() < 4 {
                    return None;
                }
                RawValue::I32(buf.get_u32_le())
            }
            2 => {
                let len = get_varint(&mut buf)? as usize;
                if buf.remaining() < len {
                    return None;
                }
                let mut v = vec![0u8; len];
                buf.copy_to_slice(&mut v);
                RawValue::Len(v)
            }
            _ => return None,
        };
        out.push((number, value));
    }
    Some(out)
}

/// Computes the encoded size without materializing bytes (used by cost
/// models).
pub fn encoded_len(msg: &Message) -> usize {
    msg.fields
        .iter()
        .map(|(number, value)| {
            let tag = varint_len((*number as u64) << 3);
            tag + match value {
                FieldValue::Uint64(v) => varint_len(*v),
                FieldValue::Bool(_) => 1,
                FieldValue::Fixed64(_) => 8,
                FieldValue::Fixed32(_) => 4,
                FieldValue::Str(s) => varint_len(s.len() as u64) + s.len(),
                FieldValue::Bytes(b) => varint_len(b.len() as u64) + b.len(),
                FieldValue::Message(m) => {
                    let inner = encoded_len(m);
                    varint_len(inner as u64) + inner
                }
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{FieldDesc, FieldKind, MessageDesc};

    #[test]
    fn varint_golden_values() {
        let mut b = BytesMut::new();
        put_varint(&mut b, 300);
        assert_eq!(&b[..], &[0xac, 0x02]);
        let mut b = BytesMut::new();
        put_varint(&mut b, 0);
        assert_eq!(&b[..], &[0x00]);
        let mut b = BytesMut::new();
        put_varint(&mut b, u64::MAX);
        assert_eq!(b.len(), 10);
    }

    #[test]
    fn varint_roundtrip_and_len() {
        for v in [0u64, 1, 127, 128, 300, 1 << 21, u64::MAX] {
            let mut b = BytesMut::new();
            put_varint(&mut b, v);
            assert_eq!(b.len(), varint_len(v), "len of {v}");
            let mut bytes = Bytes::from(b.to_vec());
            assert_eq!(get_varint(&mut bytes), Some(v));
        }
    }

    #[test]
    fn known_encoding_golden() {
        // Field 1 = varint 150 encodes as 08 96 01 (protobuf docs
        // example).
        let m = Message {
            fields: vec![(1, FieldValue::Uint64(150))],
        };
        assert_eq!(encode(&m), vec![0x08, 0x96, 0x01]);
    }

    #[test]
    fn string_field_encoding() {
        // Field 2 = "testing" encodes as 12 07 74 65 73 74 69 6e 67.
        let m = Message {
            fields: vec![(2, FieldValue::Str("testing".into()))],
        };
        assert_eq!(
            encode(&m),
            vec![0x12, 0x07, 0x74, 0x65, 0x73, 0x74, 0x69, 0x6e, 0x67]
        );
    }

    #[test]
    fn encoded_len_matches_encode() {
        let d = MessageDesc::new(
            "mix",
            vec![
                FieldDesc::single(1, FieldKind::Uint64),
                FieldDesc::single(2, FieldKind::Str(0..40)),
                FieldDesc::single(3, FieldKind::Fixed32),
                FieldDesc::repeated(4, FieldKind::Bytes(0..20), 0..4),
                FieldDesc::single(
                    5,
                    FieldKind::Message(Box::new(MessageDesc::new(
                        "sub",
                        vec![FieldDesc::single(1, FieldKind::Fixed64)],
                    ))),
                ),
            ],
        );
        for seed in 0..20 {
            let m = d.instantiate(seed);
            assert_eq!(encode(&m).len(), encoded_len(&m), "seed {seed}");
        }
    }

    #[test]
    fn decode_raw_roundtrip() {
        let d = MessageDesc::new(
            "m",
            vec![
                FieldDesc::single(1, FieldKind::Uint64),
                FieldDesc::single(2, FieldKind::Str(3..9)),
                FieldDesc::single(7, FieldKind::Fixed64),
                FieldDesc::single(9, FieldKind::Fixed32),
            ],
        );
        let m = d.instantiate(5);
        let raw = decode_raw(&encode(&m)).expect("well-formed");
        assert_eq!(raw.len(), 4);
        assert_eq!(raw[0].0, 1);
        match (&m.fields[1].1, &raw[1].1) {
            (FieldValue::Str(s), RawValue::Len(b)) => assert_eq!(s.as_bytes(), &b[..]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode_raw(&[0x08]).is_none()); // Tag without payload.
        assert!(decode_raw(&[0x0c]).is_none()); // Wire type 4 invalid.
        assert!(decode_raw(&[0x12, 0x05, 0x61]).is_none()); // Short len.
        assert!(decode_raw(&[0x00]).is_none()); // Field number 0.
    }
}
