//! Protoacc's performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;

use crate::simx::ProtoWorkload;
use perf_core::InterfaceBundle;

/// Builds Protoacc's vendor-shipped interface bundle.
pub fn bundle() -> InterfaceBundle<ProtoWorkload> {
    InterfaceBundle::new("protoacc", nl::interface())
        .with(Box::new(
            program::ProtoaccProgramInterface::new().expect("shipped .pi parses"),
        ))
        .with(Box::new(
            petri::ProtoaccPetriInterface::new().expect("shipped .pnet parses"),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn bundle_complete() {
        let b = bundle();
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
        assert!(!b.natural_language.claims.is_empty());
    }
}
