//! Protoacc's performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;
pub mod service;

use crate::simx::ProtoWorkload;
use perf_core::query::EngineChoice;
use perf_core::{Diagnostics, InterfaceBundle};

/// Builds Protoacc's vendor-shipped interface bundle (compiled
/// evaluation substrate).
pub fn bundle() -> InterfaceBundle<ProtoWorkload> {
    bundle_with_engine(EngineChoice::Compiled)
}

/// Builds the bundle with an explicit evaluation substrate.
pub fn bundle_with_engine(engine: EngineChoice) -> InterfaceBundle<ProtoWorkload> {
    InterfaceBundle::new("protoacc", nl::interface())
        .with(Box::new(
            program::ProtoaccProgramInterface::with_engine(engine).expect("shipped .pi parses"),
        ))
        .with(Box::new(
            petri::ProtoaccPetriInterface::with_engine(engine).expect("generated .pnet parses"),
        ))
}

/// Statically audits Protoacc's shipped interface artifacts with the
/// `perf-lint` analyses. Messages enter the net at `msgs_in`.
pub fn lint() -> Diagnostics {
    let mut ds = perf_iface_lang::lint::lint_src("protoacc.pi", program::PROTOACC_PI_SRC);
    ds.merge(perf_petri::lint::lint_pnet_src(
        "protoacc.pnet",
        petri::PROTOACC_PNET_SRC,
        &["msgs_in"],
    ));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn shipped_artifacts_lint_clean() {
        let ds = lint();
        assert_eq!(ds.count(perf_core::Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(perf_core::Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn bundle_complete() {
        let b = bundle();
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
        assert!(!b.natural_language.claims.is_empty());
    }
}
