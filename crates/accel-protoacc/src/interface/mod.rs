//! Protoacc's performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;
pub mod service;

use crate::simx::ProtoWorkload;
use perf_core::query::EngineChoice;
use perf_core::{Diagnostics, InterfaceBundle};
use perf_iface_lang::lint::BoxVal;

/// Builds Protoacc's vendor-shipped interface bundle (compiled
/// evaluation substrate).
pub fn bundle() -> InterfaceBundle<ProtoWorkload> {
    bundle_with_engine(EngineChoice::Compiled)
}

/// Builds the bundle with an explicit evaluation substrate.
pub fn bundle_with_engine(engine: EngineChoice) -> InterfaceBundle<ProtoWorkload> {
    InterfaceBundle::new("protoacc", nl::interface())
        .with(Box::new(
            program::ProtoaccProgramInterface::with_engine(engine).expect("shipped .pi parses"),
        ))
        .with(Box::new(
            petri::ProtoaccPetriInterface::with_engine(engine).expect("generated .pnet parses"),
        ))
}

/// Protoacc's declared message family as an interval box over the
/// `.pi` program's input record, restricted to *leaf* messages
/// (`subs` pinned empty): interval boxes cannot express recursive
/// nesting, so the cross-tier checker probes nesting with concrete
/// message values instead and uses this box for the flat bounds.
pub fn workload_box() -> BoxVal {
    BoxVal::record([
        ("num_fields", BoxVal::num(0.0, 64.0)),
        ("num_writes", BoxVal::num(0.0, 256.0)),
        ("wire_bytes", BoxVal::num(0.0, 4096.0)),
        (
            "subs",
            BoxVal::list(
                BoxVal::record([("num_fields", BoxVal::num(0.0, 0.0))]),
                0.0,
                0.0,
            ),
        ),
    ])
}

/// One Petri-net token's feature box: the ingest adapter precomputes
/// each message's read and write cost onto the token. The floors match
/// the program tier's leaf-message floors (`MSG_SETUP + 2·MEM` for a
/// read, `WRITE_SETUP` for a write).
pub fn token_box() -> BoxVal {
    BoxVal::record([
        ("read_cost", BoxVal::num(296.0, 1.0e6)),
        ("write_cost", BoxVal::num(5.0, 1.0e6)),
    ])
}

/// Statically audits Protoacc's shipped interface artifacts with the
/// `perf-lint` analyses. Messages enter the net at `msgs_in`.
pub fn lint() -> Diagnostics {
    let mut ds = perf_iface_lang::lint::lint_src("protoacc.pi", program::PROTOACC_PI_SRC);
    ds.merge(perf_petri::lint::lint_pnet_src(
        "protoacc.pnet",
        petri::PROTOACC_PNET_SRC,
        &["msgs_in"],
    ));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn shipped_artifacts_lint_clean() {
        let ds = lint();
        assert_eq!(ds.count(perf_core::Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(perf_core::Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn bundle_complete() {
        let b = bundle();
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
        assert!(!b.natural_language.claims.is_empty());
    }
}
