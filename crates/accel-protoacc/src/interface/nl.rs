//! Natural-language interface for Protoacc (paper Fig. 1, bottom).

use perf_core::nl::{Claim, Direction, NlInterface, Quantity};

/// The Fig. 1 prose: throughput decreases as message nesting
/// increases, because each nesting level costs a pointer chase.
pub fn interface() -> NlInterface {
    NlInterface::new(
        "protoacc",
        "Throughput decreases as the degree of nesting in a message increases.",
    )
    .with_claim(Claim::Monotone {
        metric: Quantity::Throughput,
        axis: "nesting_depth".into(),
        direction: Direction::Decreasing,
    })
    .with_claim(Claim::Monotone {
        metric: Quantity::Latency,
        axis: "nesting_depth".into(),
        direction: Direction::Increasing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{FieldDesc, FieldKind, MessageDesc};
    use crate::simx::{ProtoWorkload, ProtoaccSim};
    use perf_core::iface::Metric;
    use perf_core::GroundTruth;

    fn nested(depth: usize) -> MessageDesc {
        let mut d = MessageDesc::new(
            "leaf",
            (0..4)
                .map(|i| FieldDesc::single(i + 1, FieldKind::Uint64))
                .collect(),
        );
        for _ in 0..depth {
            d = MessageDesc::new(
                "wrap",
                vec![
                    FieldDesc::single(1, FieldKind::Uint64),
                    FieldDesc::single(2, FieldKind::Message(Box::new(d))),
                ],
            );
        }
        d
    }

    #[test]
    fn nesting_claims_hold() {
        let nl = interface();
        let mut tput_samples = Vec::new();
        let mut lat_samples = Vec::new();
        for depth in [0usize, 1, 2, 4, 6] {
            let mut sim = ProtoaccSim::default();
            let w = ProtoWorkload::of_format(&nested(depth), 30, 7);
            let obs = sim.measure(&w).unwrap();
            tput_samples.push((depth as f64, Metric::Throughput.of(&obs)));
            lat_samples.push((depth as f64, Metric::Latency.of(&obs)));
        }
        assert!(nl.claims[0].check(&tput_samples).unwrap().holds);
        assert!(nl.claims[1].check(&lat_samples).unwrap().holds);
    }
}
