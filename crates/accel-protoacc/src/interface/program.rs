//! Program interface for Protoacc (paper Fig. 3).

use crate::simx::{ProtoWorkload, ProtoaccConfig};
use perf_core::iface::{InterfaceKind, Metric, PerfInterface};
use perf_core::query::EngineChoice;
use perf_core::{CoreError, Prediction};
use perf_iface_lang::vm::Executable;
use perf_iface_lang::{Program, Value};

/// The shipped interface program source.
pub const PROTOACC_PI_SRC: &str = include_str!("../../assets/protoacc.pi");

/// Executable program interface for Protoacc.
pub struct ProtoaccProgramInterface {
    prog: Executable,
    chunk_bytes: usize,
}

impl ProtoaccProgramInterface {
    /// Parses the shipped program; calls run the bytecode VM.
    pub fn new() -> Result<ProtoaccProgramInterface, CoreError> {
        Self::with_engine(EngineChoice::Compiled)
    }

    /// Parses the shipped program with an explicit evaluation
    /// substrate.
    pub fn with_engine(engine: EngineChoice) -> Result<ProtoaccProgramInterface, CoreError> {
        let prog =
            Program::parse(PROTOACC_PI_SRC).map_err(|e| CoreError::Artifact(e.to_string()))?;
        let prog = match engine {
            EngineChoice::Compiled => {
                Executable::compiled(prog).map_err(|e| CoreError::Artifact(e.to_string()))?
            }
            EngineChoice::Interpreted => Executable::interpreted(prog),
        };
        Ok(ProtoaccProgramInterface {
            prog,
            chunk_bytes: ProtoaccConfig::default().chunk_bytes,
        })
    }

    /// Which evaluation substrate calls use.
    pub fn engine(&self) -> EngineChoice {
        if self.prog.is_compiled() {
            EngineChoice::Compiled
        } else {
            EngineChoice::Interpreted
        }
    }

    /// The program source (display / complexity metric).
    pub fn source(&self) -> &str {
        self.prog.source()
    }

    fn representative(&self, w: &ProtoWorkload) -> Result<Value, CoreError> {
        w.messages
            .first()
            .map(|m| m.to_value(self.chunk_bytes))
            .ok_or_else(|| CoreError::InvalidObservation("empty stream".into()))
    }

    fn call_num(&self, f: &str, v: Value) -> Result<f64, CoreError> {
        self.prog
            .call(f, &[v])
            .map_err(|e| CoreError::Artifact(e.to_string()))?
            .as_num()
            .ok_or_else(|| CoreError::InvalidPrediction("non-numeric".into()))
    }
}

impl PerfInterface<ProtoWorkload> for ProtoaccProgramInterface {
    fn kind(&self) -> InterfaceKind {
        InterfaceKind::Program
    }

    fn predict(&self, w: &ProtoWorkload, metric: Metric) -> Result<Prediction, CoreError> {
        let msg = self.representative(w)?;
        match metric {
            Metric::Throughput => {
                let t = self.call_num("tput_protoacc_ser", msg)?;
                Ok(Prediction::point(t))
            }
            Metric::Latency => {
                let lo = self.call_num("min_latency_protoacc_ser", msg.clone())?;
                let hi = self.call_num("max_latency_protoacc_ser", msg)?;
                Ok(Prediction::bounds(lo, hi))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simx::ProtoaccSim;
    use crate::suite;
    use perf_core::validate::validate;

    #[test]
    fn program_parses_and_predicts() {
        let iface = ProtoaccProgramInterface::new().unwrap();
        let w = ProtoWorkload::of_format(&suite::formats()[0], 5, 1);
        let t = iface.predict(&w, Metric::Throughput).unwrap();
        assert!(t.is_finite());
        let l = iface.predict(&w, Metric::Latency).unwrap();
        assert!(matches!(l, Prediction::Bounds { .. }));
    }

    #[test]
    fn latency_always_within_bounds_on_suite() {
        // The paper: "the latency was always within the predicted
        // bounds" across the 32-format suite.
        let iface = ProtoaccProgramInterface::new().unwrap();
        let mut sim = ProtoaccSim::default();
        let workloads: Vec<ProtoWorkload> = suite::formats()
            .iter()
            .map(|d| ProtoWorkload::of_format(d, 1, 42))
            .collect();
        let rep = validate(&mut sim, &iface, Metric::Latency, &workloads).unwrap();
        assert_eq!(rep.bounds.n, 32);
        assert_eq!(
            rep.bounds.coverage(),
            1.0,
            "within {} of 32",
            rep.bounds.within
        );
    }

    #[test]
    fn throughput_error_is_single_digit_percent() {
        let iface = ProtoaccProgramInterface::new().unwrap();
        let mut sim = ProtoaccSim::default();
        let workloads: Vec<ProtoWorkload> = suite::formats()
            .iter()
            .map(|d| ProtoWorkload::of_format(d, 40, 42))
            .collect();
        let rep = validate(&mut sim, &iface, Metric::Throughput, &workloads).unwrap();
        assert!(
            rep.point.avg < 0.15,
            "avg tput error {:.3} too large",
            rep.point.avg
        );
    }
}
