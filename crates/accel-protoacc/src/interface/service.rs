//! Query-service adapter for the Protoacc serializer.
//!
//! Implements [`perf_core::query::QueryBackend`] for `perf-service`.
//! Spec kinds mirror the conformance harness: `format` picks one of
//! the 32 suite formats, `nested` builds a pointer-chase-heavy
//! wrap-chain of the given depth.

use crate::descriptor::{FieldDesc, FieldKind, Message, MessageDesc};
use crate::interface;
use crate::simx::{ProtoWorkload, ProtoaccSim};
use crate::{suite, wire};
use perf_core::iface::{InterfaceBundle, InterfaceKind, Metric};
use perf_core::query::{EngineChoice, QueryBackend, WorkloadSpec};
use perf_core::{Budget, CoreError, GroundTruth, Observation, Prediction};

/// The serializer's query-service backend.
pub struct ProtoaccService {
    bundle: InterfaceBundle<ProtoWorkload>,
    formats: Vec<MessageDesc>,
    engine: EngineChoice,
}

impl ProtoaccService {
    /// Builds the backend with the shipped interface bundle and the
    /// 32-format workload suite; the interfaces run on the compiled
    /// substrate.
    pub fn new() -> ProtoaccService {
        Self::with_engine(EngineChoice::Compiled)
    }

    /// Builds the backend with an explicit evaluation substrate.
    pub fn with_engine(engine: EngineChoice) -> ProtoaccService {
        ProtoaccService {
            bundle: interface::bundle_with_engine(engine),
            formats: suite::formats(),
            engine,
        }
    }

    /// Realizes a spec into a message stream.
    pub fn realize(&self, spec: &WorkloadSpec) -> Result<ProtoWorkload, CoreError> {
        let n = spec.get_uint("n")?.clamp(1, 4096) as usize;
        let seed = spec.get_or("seed", 1.0) as u64;
        match spec.kind.as_str() {
            "format" => {
                let idx = spec.get_uint("idx")? as usize;
                let desc = self.formats.get(idx).ok_or_else(|| {
                    CoreError::Artifact(format!(
                        "protoacc: format index {idx} out of range (suite has {})",
                        self.formats.len()
                    ))
                })?;
                Ok(ProtoWorkload::of_format(desc, n, seed))
            }
            "nested" => {
                let depth = spec.get_uint("depth")?.min(24) as usize;
                Ok(ProtoWorkload::of_format(&nested(depth), n, seed))
            }
            other => Err(CoreError::Artifact(format!(
                "protoacc: unknown spec kind `{other}`"
            ))),
        }
    }
}

impl Default for ProtoaccService {
    fn default() -> Self {
        ProtoaccService::new()
    }
}

/// Builds the `depth`-level nested format (mirrors the conformance
/// subject's generator so the same specs hash identically).
fn nested(depth: usize) -> MessageDesc {
    let mut d = MessageDesc::new(
        "leaf",
        (0..4)
            .map(|i| FieldDesc::single(i + 1, FieldKind::Uint64))
            .collect(),
    );
    for _ in 0..depth {
        d = MessageDesc::new(
            "wrap",
            vec![
                FieldDesc::single(1, FieldKind::Uint64),
                FieldDesc::single(2, FieldKind::Message(Box::new(d))),
            ],
        );
    }
    d
}

/// Structural cost summary of one message: (sub)message count
/// including the root, total fields, wire bytes, and output chunks.
struct MsgStats {
    msgs: u64,
    fields: u64,
    bytes: u64,
    chunks: u64,
}

fn stats(msg: &Message) -> MsgStats {
    fn count(m: &Message) -> u64 {
        1 + m.submessages().map(count).sum::<u64>()
    }
    let bytes = wire::encoded_len(msg) as u64;
    MsgStats {
        msgs: count(msg),
        fields: msg.total_fields() as u64,
        bytes,
        chunks: bytes.div_ceil(16).max(1),
    }
}

/// Per-message closed-form latency bounds derived from the NL claims.
///
/// The NL interface says: "reading costs a setup plus two
/// pointer-chasing memory accesses per (sub)message and a descriptor
/// fetch per 32 fields; writing drains one 16-byte chunk per cycle;
/// read and write overlap". With the memory system's hit/worst-case
/// access latencies that prose bounds one message's latency:
///
/// * lower — the reader's pointer chases at best-case (row-hit) DRAM
///   latency, or the writer's drain, whichever is larger (overlap
///   means the slower side is a floor);
/// * upper — every access worst-case (row miss + TLB walk + channel
///   queueing), no overlap at all, plus drain and fill slack.
fn msg_latency_bounds(s: &MsgStats) -> (f64, f64) {
    // Best-case access: row hit (40) + one transfer cycle.
    const MEM_MIN: f64 = 41.0;
    // Worst-case access: row miss + TLB walk + queueing behind the
    // channel; deliberately beyond the program interface's MEM_MAX.
    const MEM_MAX: f64 = 260.0;
    let descs = s.fields.div_ceil(32) as f64;
    let read_min = s.msgs as f64 * (6.0 + 2.0 * MEM_MIN);
    let write_min = 5.0 + s.chunks as f64;
    let lo = read_min.max(write_min);
    let hi = s.msgs as f64 * (6.0 + 2.0 * MEM_MAX)
        + descs * (4.0 + MEM_MAX)
        + s.bytes as f64 / 16.0
        + 5.0
        + 3.0 * s.chunks as f64
        + MEM_MAX
        + 500.0;
    (lo, hi)
}

/// The natural-language closed-form bound for a message stream.
///
/// Latency is the first message's latency (the stream's pipeline fill);
/// throughput amortizes over the stream: at worst every message runs
/// serially at its worst case, at best the stream is bound only by the
/// reader's or writer's aggregate floor.
pub fn nl_bounds(w: &ProtoWorkload, metric: Metric) -> Prediction {
    let all: Vec<MsgStats> = w.messages.iter().map(stats).collect();
    match metric {
        Metric::Latency => {
            let (lo, hi) = msg_latency_bounds(&all[0]);
            Prediction::bounds(lo, hi)
        }
        Metric::Throughput => {
            let n = w.messages.len() as f64;
            let serial_worst: f64 = all.iter().map(|s| msg_latency_bounds(s).1).sum();
            let read_floor: f64 = all.iter().map(|s| s.msgs as f64 * (6.0 + 2.0 * 41.0)).sum();
            let write_floor: f64 = all.iter().map(|s| 5.0 + s.chunks as f64).sum();
            Prediction::bounds(n / serial_worst, n / read_floor.max(write_floor))
        }
    }
}

impl QueryBackend for ProtoaccService {
    fn accel(&self) -> &'static str {
        "protoacc"
    }

    fn engine(&self) -> EngineChoice {
        self.engine
    }

    fn spec_kinds(&self) -> &'static [&'static str] {
        &["format", "nested"]
    }

    fn predict(
        &mut self,
        spec: &WorkloadSpec,
        repr: InterfaceKind,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        let w = self.realize(spec)?;
        match repr {
            InterfaceKind::NaturalLanguage => Ok(nl_bounds(&w, metric)),
            _ => self
                .bundle
                .get(repr)
                .ok_or_else(|| CoreError::Artifact(format!("no {} interface", repr.name())))?
                .predict(&w, metric),
        }
    }

    fn budget(&self, repr: InterfaceKind, metric: Metric) -> Budget {
        // Program and Petri budgets mirror the conformance subject.
        match (repr, metric) {
            (InterfaceKind::NaturalLanguage, _) => Budget::new(0.80, 3.0).with_atol(100.0),
            (InterfaceKind::Program, Metric::Latency) => Budget::new(0.01, 0.02),
            (InterfaceKind::Program, Metric::Throughput) => Budget::new(0.15, 0.45),
            (_, Metric::Latency) => Budget::new(0.10, 0.30),
            (_, Metric::Throughput) => Budget::new(0.15, 0.45),
        }
    }

    fn measure(&mut self, spec: &WorkloadSpec) -> Result<Observation, CoreError> {
        let w = self.realize(spec)?;
        ProtoaccSim::default().measure(&w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<WorkloadSpec> {
        let mut v = Vec::new();
        for idx in (0..32).step_by(5) {
            v.push(
                WorkloadSpec::new("format")
                    .with("idx", idx as f64)
                    .with("n", 10.0)
                    .with("seed", 40.0 + idx as f64),
            );
        }
        v.push(
            WorkloadSpec::new("format")
                .with("idx", 0.0)
                .with("n", 1.0)
                .with("seed", 90.0),
        );
        for depth in [0.0, 4.0, 8.0] {
            v.push(
                WorkloadSpec::new("nested")
                    .with("depth", depth)
                    .with("n", 6.0)
                    .with("seed", 92.0),
            );
        }
        v
    }

    #[test]
    fn all_reprs_predict_and_nl_contains_sim() {
        let mut svc = ProtoaccService::new();
        for spec in corpus() {
            let obs = svc.measure(&spec).unwrap();
            for metric in [Metric::Latency, Metric::Throughput] {
                for repr in [
                    InterfaceKind::NaturalLanguage,
                    InterfaceKind::Program,
                    InterfaceKind::PetriNet,
                ] {
                    let p = svc.predict(&spec, repr, metric).unwrap();
                    assert!(p.is_finite(), "{spec:?} {repr:?} {metric:?}");
                    if repr == InterfaceKind::NaturalLanguage {
                        assert!(
                            p.contains(metric.of(&obs)),
                            "{spec:?} {metric:?}: {p:?} vs {}",
                            metric.of(&obs)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bad_format_index_is_rejected() {
        let mut svc = ProtoaccService::new();
        let spec = WorkloadSpec::new("format")
            .with("idx", 9999.0)
            .with("n", 1.0);
        assert!(svc
            .predict(&spec, InterfaceKind::Program, Metric::Latency)
            .is_err());
    }
}
