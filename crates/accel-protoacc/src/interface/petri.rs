//! Petri-net performance IR for Protoacc.
//!
//! The net has one transition per engine (reader, writer) joined by the
//! internal queue. The ingest adapter walks each message tree once to
//! compute the token's `read_cost` and `write_cost` fields — the token
//! transform that makes downstream delays computable.

use crate::descriptor::Message;
use crate::simx::{ProtoWorkload, ProtoaccConfig};
use crate::wire;
use perf_core::iface::{InterfaceKind, Metric, PerfInterface};
use perf_core::query::EngineChoice;
use perf_core::{CoreError, Prediction};
use perf_iface_lang::Value;
use perf_petri::engine::Options;
use perf_petri::stepper::NetExec;
use perf_petri::text;
use perf_petri::token::Token;

/// The shipped `.pnet` source.
pub const PROTOACC_PNET_SRC: &str = include_str!("../../assets/protoacc.pnet");

/// Average memory latency constant used by the ingest adapter (same
/// calibration as the program interface).
pub const AVG_MEM_LATENCY: u64 = 145;

/// Writer tail charged on the latency (first-message) path instead of
/// the chunk-scaled [`write_cost`](ProtoaccPetriInterface::write_cost).
///
/// Within one message the hardware writer drains chunks concurrently
/// with the reader's streaming (the simulator releases chunks
/// progressively across each field's interval), so the per-chunk
/// write cost is overlapped, not serial — on 16 KiB payloads the
/// serial model over-predicted by 113%. What remains past the
/// reader's finish is a near-constant flush/store tail; the constant
/// also absorbs the first message's cold-TLB/cold-row extra. The
/// conformance harness measured `sim - (read + data)` between -47 and
/// +242 cycles across the 32-format suite; 140 minimizes the worst
/// relative error (~6.5%).
pub const FIRST_MSG_TAIL: u64 = 140;

/// Petri-net interface for Protoacc.
pub struct ProtoaccPetriInterface {
    exec: NetExec,
    cfg: ProtoaccConfig,
}

impl ProtoaccPetriInterface {
    /// Parses the shipped net; evaluations run the compiled stepper.
    pub fn new() -> Result<ProtoaccPetriInterface, CoreError> {
        Self::with_engine(EngineChoice::Compiled)
    }

    /// Parses the shipped net with an explicit evaluation substrate.
    pub fn with_engine(engine: EngineChoice) -> Result<ProtoaccPetriInterface, CoreError> {
        let net = text::parse(PROTOACC_PNET_SRC)?;
        let exec = match engine {
            EngineChoice::Compiled => NetExec::compiled(net),
            EngineChoice::Interpreted => NetExec::interpreted(net),
        };
        Ok(ProtoaccPetriInterface {
            exec,
            cfg: ProtoaccConfig::default(),
        })
    }

    /// Which evaluation substrate [`ProtoaccPetriInterface::run`] uses.
    pub fn engine(&self) -> EngineChoice {
        if self.exec.is_compiled() {
            EngineChoice::Compiled
        } else {
            EngineChoice::Interpreted
        }
    }

    /// The `.pnet` source.
    pub fn source(&self) -> &'static str {
        PROTOACC_PNET_SRC
    }

    /// Expected reader cycles for one message tree.
    pub fn read_cost(&self, msg: &Message) -> u64 {
        let groups = msg.num_fields().div_ceil(self.cfg.fields_per_desc).max(1) as u64;
        let own = self.cfg.msg_setup
            + AVG_MEM_LATENCY * self.cfg.ptr_chases
            + (self.cfg.desc_fixed + AVG_MEM_LATENCY) * groups;
        own + msg.submessages().map(|m| self.read_cost(m)).sum::<u64>()
    }

    /// Expected writer cycles for one message.
    pub fn write_cost(&self, msg: &Message) -> u64 {
        let chunks = wire::encoded_len(msg).div_ceil(self.cfg.chunk_bytes).max(1) as u64;
        self.cfg.write_setup + chunks * 2
    }

    /// Expected reader data-streaming cycles for the whole tree.
    pub fn data_cost(&self, msg: &Message) -> u64 {
        wire::encoded_len(msg) as u64 / 16
    }

    /// Runs the net over pre-computed `(read_cost, write_cost)` token
    /// payloads and returns `(makespan, completions)`.
    fn run_costed(&self, costed: &[(u64, u64)]) -> Result<(u64, usize), CoreError> {
        let src = self
            .exec
            .net()
            .place_id("msgs_in")
            .ok_or_else(|| CoreError::Artifact("net lacks msgs_in".into()))?;
        let mut eng = self.exec.session(Options::default());
        for &(rc, wc) in costed {
            eng.inject(
                src,
                Token::at(
                    Value::record([
                        ("read_cost", Value::from(rc)),
                        ("write_cost", Value::from(wc)),
                    ]),
                    0,
                ),
            );
        }
        let res = eng.run().map_err(CoreError::from)?;
        Ok((res.makespan, res.completions.len()))
    }

    /// Runs the net over a stream and returns `(makespan, completions)`.
    pub fn run(&self, msgs: &[Message]) -> Result<(u64, usize), CoreError> {
        let costed: Vec<(u64, u64)> = msgs
            .iter()
            .map(|m| (self.read_cost(m) + self.data_cost(m), self.write_cost(m)))
            .collect();
        self.run_costed(&costed)
    }
}

impl PerfInterface<ProtoWorkload> for ProtoaccPetriInterface {
    fn kind(&self) -> InterfaceKind {
        InterfaceKind::PetriNet
    }

    fn predict(&self, w: &ProtoWorkload, metric: Metric) -> Result<Prediction, CoreError> {
        match metric {
            Metric::Throughput => {
                let (span, n) = self.run(&w.messages)?;
                Ok(Prediction::point(n as f64 / span.max(1) as f64))
            }
            Metric::Latency => {
                // First-message span: the writer overlaps the read, so
                // the token carries the constant tail, not the
                // chunk-scaled steady-state write cost.
                let first = w
                    .messages
                    .first()
                    .ok_or_else(|| CoreError::InvalidObservation("empty stream".into()))?;
                let rc = self.read_cost(first) + self.data_cost(first);
                let (span, _) = self.run_costed(&[(rc, FIRST_MSG_TAIL)])?;
                Ok(Prediction::point(span as f64))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simx::ProtoaccSim;
    use crate::suite;
    use perf_core::validate::validate;

    #[test]
    fn net_runs_on_suite() {
        let iface = ProtoaccPetriInterface::new().unwrap();
        for d in suite::formats().iter().take(6) {
            let w = ProtoWorkload::of_format(d, 4, 9);
            let (span, n) = iface.run(&w.messages).unwrap();
            assert_eq!(n, 4);
            assert!(span > 0);
        }
    }

    // Conformance-harness counterexamples: the latency metric is the
    // *first* message's span, which runs cold (empty TLB, closed DRAM
    // rows) — the steady-state constants under-shot flat singleton
    // formats by 22% — while serializing the chunk-scaled write cost
    // after the read over-shot 16 KiB payloads by 113% (the hardware
    // writer drains chunks while the reader streams). With the
    // constant first-message tail the whole 32-format suite stays
    // inside 10%.
    #[test]
    fn singleton_latency_includes_cold_start() {
        let iface = ProtoaccPetriInterface::new().unwrap();
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        let formats = suite::formats();
        for (i, d) in formats.iter().enumerate() {
            let w = ProtoWorkload::of_format(d, 1, 90 + i as u64);
            let mut sim = ProtoaccSim::default();
            let obs = perf_core::GroundTruth::measure(&mut sim, &w).unwrap();
            let pred = iface.predict(&w, Metric::Latency).unwrap();
            let rel = (pred.midpoint() - obs.latency.as_f64()).abs() / obs.latency.as_f64();
            worst = worst.max(rel);
            sum += rel;
        }
        let avg = sum / formats.len() as f64;
        assert!(worst < 0.10, "worst singleton latency error {worst:.3}");
        assert!(avg < 0.05, "avg singleton latency error {avg:.3}");
    }

    #[test]
    fn petri_throughput_tracks_simulator() {
        let iface = ProtoaccPetriInterface::new().unwrap();
        let mut sim = ProtoaccSim::default();
        let workloads: Vec<ProtoWorkload> = suite::formats()
            .iter()
            .map(|d| ProtoWorkload::of_format(d, 30, 17))
            .collect();
        let rep = validate(&mut sim, &iface, Metric::Throughput, &workloads).unwrap();
        // The net models per-message costs and pipelining but not the
        // memory system's fine structure: expect low-teens error at
        // worst.
        assert!(
            rep.point.avg < 0.15,
            "petri tput avg error {:.3}",
            rep.point.avg
        );
    }

    #[test]
    fn read_cost_grows_with_nesting() {
        let iface = ProtoaccPetriInterface::new().unwrap();
        let f = suite::formats();
        let flat = f.iter().find(|d| d.name.ends_with("flat4")).unwrap();
        let deep = f.iter().find(|d| d.name.ends_with("nest7")).unwrap();
        let rc_flat = iface.read_cost(&flat.instantiate(1));
        let rc_deep = iface.read_cost(&deep.instantiate(1));
        assert!(rc_deep > rc_flat * 4);
    }
}
