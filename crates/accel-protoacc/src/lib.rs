//! A model of Protoacc — Google's protocol-buffer serialization
//! accelerator — with software and Optimus-Prime-style baselines and
//! all three performance-interface representations.
//!
//! Protoacc (Karandikar et al., MICRO '21) serializes protobuf messages
//! in hardware: a *reader* walks the in-memory message tree (descriptor
//! fetches cover 32 fields at a time; every nested submessage costs a
//! pointer chase through the memory system), while a *writer* drains
//! encoded output chunks. The two stages overlap through an internal
//! queue, which is why the paper's Fig. 3 interface can give exact
//! throughput expressions but only latency *bounds*.
//!
//! This crate contains:
//!
//! * [`descriptor`] — message schemas and instance generation,
//! * [`wire`] — a real protobuf wire-format encoder/decoder (the
//!   functional model and the software baseline's workload),
//! * [`simx`] — the cycle-accurate accelerator simulator on a DRAM+TLB
//!   memory system,
//! * [`baselines`] — a Xeon-style software serializer cost model and an
//!   Optimus-Prime-style tightly-coupled accelerator model (Example #2
//!   and the §4 discussion),
//! * [`suite`] — the 32-message-format evaluation suite,
//! * [`interface`] — natural-language, program and Petri-net
//!   interfaces.

pub mod baselines;
pub mod descriptor;
pub mod interface;
pub mod simx;
pub mod suite;
pub mod wire;

pub use descriptor::{FieldDesc, FieldKind, Message, MessageDesc};
pub use simx::{ProtoaccConfig, ProtoaccSim};
