//! The 32-message-format evaluation suite.
//!
//! The paper evaluates Protoacc's interfaces on "32 message formats
//! from its test suite". This module defines 32 schemas spanning the
//! same axes: scalar counts (flat, wide), string/bytes payloads (short,
//! long, repeated), nesting depth (1–8) and mixes thereof.

use crate::descriptor::{FieldDesc, FieldKind, MessageDesc};

fn flat_scalars(name: &str, nf: usize) -> MessageDesc {
    MessageDesc::new(
        name,
        (0..nf)
            .map(|i| {
                let kind = match i % 4 {
                    0 => FieldKind::Uint64,
                    1 => FieldKind::Fixed64,
                    2 => FieldKind::Fixed32,
                    _ => FieldKind::Bool,
                };
                FieldDesc::single(i as u32 + 1, kind)
            })
            .collect(),
    )
}

fn strings(name: &str, count: usize, len: std::ops::Range<usize>) -> MessageDesc {
    MessageDesc::new(
        name,
        vec![FieldDesc::repeated(
            1,
            FieldKind::Str(len),
            count..count + 1,
        )],
    )
}

fn bytes_msg(name: &str, count: usize, len: std::ops::Range<usize>) -> MessageDesc {
    MessageDesc::new(
        name,
        vec![FieldDesc::repeated(
            1,
            FieldKind::Bytes(len),
            count..count + 1,
        )],
    )
}

fn nested(name: &str, depth: usize, leaf_fields: usize) -> MessageDesc {
    let mut d = flat_scalars("leaf", leaf_fields);
    for level in 0..depth {
        d = MessageDesc::new(
            format!("{name}_l{level}"),
            vec![
                FieldDesc::single(1, FieldKind::Uint64),
                FieldDesc::single(2, FieldKind::Message(Box::new(d))),
            ],
        );
    }
    d.name = name.to_string();
    d
}

fn fanout(name: &str, width: usize, leaf_fields: usize) -> MessageDesc {
    let leaf = flat_scalars("leaf", leaf_fields);
    MessageDesc::new(
        name,
        (0..width)
            .map(|i| FieldDesc::single(i as u32 + 1, FieldKind::Message(Box::new(leaf.clone()))))
            .collect(),
    )
}

fn rpc_like(name: &str, payload: std::ops::Range<usize>) -> MessageDesc {
    MessageDesc::new(
        name,
        vec![
            FieldDesc::single(1, FieldKind::Uint64),         // request id
            FieldDesc::single(2, FieldKind::Fixed64),        // timestamp
            FieldDesc::single(3, FieldKind::Str(8..24)),     // method
            FieldDesc::single(4, FieldKind::Bytes(payload)), // payload
            FieldDesc::single(
                5,
                FieldKind::Message(Box::new(MessageDesc::new(
                    "meta",
                    vec![
                        FieldDesc::single(1, FieldKind::Uint64),
                        FieldDesc::single(2, FieldKind::Str(4..12)),
                        FieldDesc::single(3, FieldKind::Bool),
                    ],
                ))),
            ),
        ],
    )
}

/// Builds the 32-format suite.
pub fn formats() -> Vec<MessageDesc> {
    let mut v = vec![
        flat_scalars("flat4", 4),
        flat_scalars("flat8", 8),
        flat_scalars("flat16", 16),
        flat_scalars("flat32", 32),
        flat_scalars("flat64", 64),
        flat_scalars("flat128", 128),
        flat_scalars("flat256", 256),
        strings("str_short4", 4, 4..16),
        strings("str_short16", 16, 4..16),
        strings("str_mid8", 8, 32..96),
        strings("str_long4", 4, 256..512),
        strings("str_long16", 16, 256..512),
        bytes_msg("bytes_small8", 8, 8..32),
        bytes_msg("bytes_1k", 2, 1024..1025),
        bytes_msg("bytes_4k", 1, 4096..4097),
        bytes_msg("bytes_16k", 1, 16384..16385),
        nested("nest1", 1, 6),
        nested("nest2", 2, 6),
        nested("nest3", 3, 6),
        nested("nest4", 4, 6),
        nested("nest5", 5, 6),
        nested("nest6", 6, 6),
        nested("nest7", 7, 6),
        fanout("fan4", 4, 6),
        fanout("fan8", 8, 6),
        fanout("fan16", 16, 6),
        rpc_like("rpc_small", 16..64),
        rpc_like("rpc_mid", 256..512),
        rpc_like("rpc_large", 2048..4096),
        MessageDesc::new(
            "mixed_wide",
            vec![
                FieldDesc::repeated(1, FieldKind::Uint64, 16..17),
                FieldDesc::repeated(2, FieldKind::Str(16..48), 4..5),
                FieldDesc::single(3, FieldKind::Message(Box::new(flat_scalars("sub", 12)))),
            ],
        ),
        MessageDesc::new(
            "mixed_deep_strings",
            vec![
                FieldDesc::single(1, FieldKind::Str(64..128)),
                FieldDesc::single(
                    2,
                    FieldKind::Message(Box::new(MessageDesc::new(
                        "inner",
                        vec![
                            FieldDesc::single(1, FieldKind::Str(64..128)),
                            FieldDesc::single(
                                2,
                                FieldKind::Message(Box::new(strings("leafstr", 3, 32..64))),
                            ),
                        ],
                    ))),
                ),
            ],
        ),
        MessageDesc::new(
            "kitchen_sink",
            vec![
                FieldDesc::repeated(1, FieldKind::Uint64, 8..9),
                FieldDesc::single(2, FieldKind::Bytes(512..1024)),
                FieldDesc::repeated(3, FieldKind::Message(Box::new(nested("ks", 2, 4))), 3..4),
                FieldDesc::repeated(4, FieldKind::Str(8..64), 6..7),
            ],
        ),
    ];
    debug_assert_eq!(v.len(), 32, "suite must have 32 formats");
    // Give every format a stable index prefix for reports.
    for (i, d) in v.iter_mut().enumerate() {
        d.name = format!("{:02}_{}", i, d.name);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    #[test]
    fn suite_has_32_distinct_formats() {
        let f = formats();
        assert_eq!(f.len(), 32);
        let names: std::collections::HashSet<_> = f.iter().map(|d| d.name.clone()).collect();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn suite_spans_depth_and_size() {
        let f = formats();
        let depths: Vec<usize> = f.iter().map(MessageDesc::depth).collect();
        assert!(depths.contains(&1));
        assert!(depths.iter().any(|&d| d >= 7));
        let sizes: Vec<usize> = f
            .iter()
            .map(|d| wire::encoded_len(&d.instantiate(11)))
            .collect();
        assert!(sizes.iter().any(|&s| s < 64), "has tiny formats");
        assert!(sizes.iter().any(|&s| s > 8192), "has huge formats");
    }

    #[test]
    fn every_format_round_trips_on_the_wire() {
        for d in formats() {
            let m = d.instantiate(3);
            let enc = wire::encode(&m);
            let raw = wire::decode_raw(&enc);
            assert!(raw.is_some(), "format {} must decode", d.name);
        }
    }
}
