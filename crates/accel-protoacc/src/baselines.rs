//! Software (Xeon-style) and Optimus-Prime-style baselines.
//!
//! Example #2 of the paper: an infrastructure engineer choosing between
//! serialization backends. The three candidates have different cost
//! shapes:
//!
//! * **CPU** — no offload overhead, but high per-byte and per-field
//!   cost;
//! * **Optimus Prime** — a tightly-coupled transformation engine:
//!   small invocation overhead, moderate streaming rate; best for
//!   small objects (the paper: <= 300 B);
//! * **Protoacc** — DMA-coupled with descriptor fetches and pointer
//!   chasing: large per-message overhead, fastest streaming; best for
//!   large objects (the paper: >= 4 KB) and *worse than the CPU* for
//!   tiny ones.

use crate::descriptor::Message;
use crate::wire;

/// Cost model of a software serializer on a commodity core (cycles at
/// the accelerator clock for comparability).
pub fn cpu_serialize_cycles(msg: &Message) -> u64 {
    let bytes = wire::encoded_len(msg) as u64;
    let fields = msg.total_fields() as u64;
    let depth = msg.depth() as u64;
    // Fixed call overhead + per-field dispatch + per-byte copy/encode +
    // cache effects per nesting level.
    60 + 22 * fields + 3 * bytes + 40 * (depth - 1)
}

/// Cost model of an Optimus-Prime-style tightly-coupled transformer.
pub fn optimus_serialize_cycles(msg: &Message) -> u64 {
    let bytes = wire::encoded_len(msg) as u64;
    let fields = msg.total_fields() as u64;
    let depth = msg.depth() as u64;
    // Small invocation overhead; field descriptors stream with the
    // data; per-byte rate is ~1.6 cycles (limited SRAM port width).
    150 + 4 * fields + (16 * bytes) / 10 + 25 * (depth - 1)
}

/// Peak (marketing) throughput of the Optimus-Prime-style engine in
/// bytes per cycle — the upper bound a datasheet would quote (§4 of the
/// paper: "33 Gbps ... drops to 14 Gbps for realistic workloads").
pub fn optimus_peak_bytes_per_cycle() -> f64 {
    // 1 byte / 1.6 cycles of streaming with zero overhead amortized.
    1.0 / 1.6
}

/// Effective throughput of the Optimus-Prime model on a message, in
/// bytes per cycle.
pub fn optimus_effective_bytes_per_cycle(msg: &Message) -> f64 {
    let bytes = wire::encoded_len(msg) as f64;
    bytes / optimus_serialize_cycles(msg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{FieldDesc, FieldKind, MessageDesc};

    fn blob(bytes: usize) -> Message {
        MessageDesc::new(
            "blob",
            vec![FieldDesc::single(1, FieldKind::Bytes(bytes..bytes + 1))],
        )
        .instantiate(1)
    }

    #[test]
    fn cpu_scales_with_bytes_and_fields() {
        let small = blob(16);
        let big = blob(4096);
        assert!(cpu_serialize_cycles(&big) > cpu_serialize_cycles(&small) * 10);
    }

    #[test]
    fn optimus_beats_cpu_on_mid_sizes() {
        let m = blob(300);
        assert!(optimus_serialize_cycles(&m) < cpu_serialize_cycles(&m));
    }

    #[test]
    fn cpu_beats_optimus_on_tiny_messages() {
        let m = blob(4);
        assert!(cpu_serialize_cycles(&m) < optimus_serialize_cycles(&m));
    }

    #[test]
    fn peak_exceeds_effective_throughput() {
        // The §4 gap between datasheet peak and realistic throughput.
        let m = blob(256);
        assert!(optimus_effective_bytes_per_cycle(&m) < optimus_peak_bytes_per_cycle());
    }
}
