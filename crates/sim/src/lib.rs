//! Cycle-accurate simulation substrate.
//!
//! The accelerator models in this workspace (`accel-jpeg`,
//! `accel-bitcoin`, `accel-protoacc`, `accel-vta`) are cycle-level
//! simulators standing in for the RTL the paper measured. This crate is
//! their shared substrate: bounded FIFOs with backpressure ([`fifo`]),
//! an in-order multi-stage pipeline model ([`pipeline`]), its fan-out/
//! fan-in DAG generalization ([`dag`]), DRAM and TLB models ([`mem`]), statistics counters ([`stats`]), a bounded event
//! trace ([`trace`]) and deterministic fault injection ([`fault`]) for
//! probing interface contracts outside nominal operation.
//!
//! All of these are *tick-accurate*: state advances one clock cycle at a
//! time, which is deliberately detailed and deliberately slow — the
//! paper's point (and our E5 experiment) is that an event-driven Petri
//! net evaluates the same performance behavior orders of magnitude
//! faster.

pub mod dag;
pub mod fault;
pub mod fifo;
pub mod mem;
pub mod pipeline;
pub mod stats;
pub mod trace;

pub use dag::{DagNodeSpec, DagNodeStats, DagPipeline, Route};
pub use fault::{FaultInjector, FaultPlan};
pub use fifo::Fifo;
pub use mem::{DramModel, Tlb};
pub use pipeline::{Pipeline, StageSpec};
pub use stats::Counter;
pub use trace::{Trace, TraceEvent};
// The sink interface lives in `perf-core` so non-sim crates (the
// autotuner, the Petri engine's consumers) can emit into the same
// sinks; re-exported here because the cycle-level models are its main
// producers.
pub use perf_core::trace::{MemorySink, NullSink, StageCycles, TraceSink};
