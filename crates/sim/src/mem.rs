//! Memory-system models: DRAM and TLB.
//!
//! §5 of the paper notes that the hard part of accelerator performance
//! is often not the datapath but its interaction with memory structures
//! — Protoacc accesses memory through a TLB, and pointer chasing over
//! nested messages is its dominant cost. These models supply that
//! behavior to the accelerator simulators.

use crate::fault::{FaultInjector, FaultPlan};
use std::collections::VecDeque;

/// A single-channel DRAM model with a row buffer and finite bandwidth.
///
/// An access costs the row-hit or row-miss latency plus transfer time at
/// the channel's bandwidth; the channel serializes transfers, so
/// back-to-back accesses queue behind each other.
///
/// # Examples
///
/// ```
/// use perf_sim::DramModel;
///
/// let mut dram = DramModel::new(100, 40, 64, 4096, 16);
/// let done = dram.access(0, 0x1000, 64);
/// // Cold access: row miss (100) + 64/16 transfer cycles.
/// assert_eq!(done, 104);
/// ```
#[derive(Clone, Debug)]
pub struct DramModel {
    row_miss_latency: u64,
    row_hit_latency: u64,
    /// Minimum transfer granule in bytes (a burst).
    burst_bytes: u64,
    row_bytes: u64,
    bytes_per_cycle: u64,
    /// Open row per bank (bank = row index modulo bank count).
    open_rows: Vec<Option<u64>>,
    channel_free_at: u64,
    accesses: u64,
    row_hits: u64,
    total_latency: u64,
    fault: Option<FaultInjector>,
}

impl DramModel {
    /// Creates a DRAM model.
    ///
    /// * `row_miss_latency` — cycles to activate a new row.
    /// * `row_hit_latency` — cycles when the open row is reused.
    /// * `burst_bytes` — minimum transfer size.
    /// * `row_bytes` — row-buffer size.
    /// * `bytes_per_cycle` — channel bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    pub fn new(
        row_miss_latency: u64,
        row_hit_latency: u64,
        burst_bytes: u64,
        row_bytes: u64,
        bytes_per_cycle: u64,
    ) -> DramModel {
        assert!(burst_bytes > 0 && row_bytes > 0 && bytes_per_cycle > 0);
        DramModel {
            row_miss_latency,
            row_hit_latency,
            burst_bytes,
            row_bytes,
            bytes_per_cycle,
            open_rows: vec![None],
            channel_free_at: 0,
            accesses: 0,
            row_hits: 0,
            total_latency: 0,
            fault: None,
        }
    }

    /// Arms (or with `None` disarms) deterministic latency-jitter
    /// injection: each access may pay extra cycles per the plan.
    /// [`reset`](DramModel::reset) rewinds the injection stream.
    pub fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan.map(FaultInjector::new);
    }

    /// Extra cycles injected by the armed fault plan so far.
    pub fn fault_cycles(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.extra_cycles())
    }

    /// A configuration resembling a 2022-era DDR4 channel as seen from a
    /// ~1 GHz accelerator clock.
    pub fn typical() -> DramModel {
        DramModel::new(120, 45, 64, 4096, 16)
    }

    /// Splits the device into `banks` independent banks: streams in
    /// different regions keep their rows open instead of thrashing one
    /// row buffer.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn with_banks(mut self, banks: usize) -> DramModel {
        assert!(banks > 0);
        self.open_rows = vec![None; banks];
        self
    }

    /// Issues an access of `bytes` at `addr` starting no earlier than
    /// `now`; returns the cycle at which the data is fully transferred.
    ///
    /// The channel is pipelined: consecutive row hits occupy it only
    /// for their transfer time (so they stream at full bandwidth even
    /// though each completes `row_hit_latency` later), while a row miss
    /// blocks the bank for the activation as well.
    pub fn access(&mut self, now: u64, addr: u64, bytes: u64) -> u64 {
        let row = addr / self.row_bytes;
        let bank = (row % self.open_rows.len() as u64) as usize;
        let hit = self.open_rows[bank] == Some(row);
        self.open_rows[bank] = Some(row);
        let base_lat = if hit {
            self.row_hits += 1;
            self.row_hit_latency
        } else {
            self.row_miss_latency
        };
        // Injected jitter delays the data like a longer activation
        // would: it pushes completion out and (on a miss) holds the
        // bank, but never reorders accesses.
        let lat = base_lat + self.fault.as_mut().map_or(0, FaultInjector::mem_extra);
        let eff_bytes = bytes.max(self.burst_bytes);
        let xfer = eff_bytes.div_ceil(self.bytes_per_cycle);
        let start = now.max(self.channel_free_at);
        let done = start + lat + xfer;
        // With multiple banks an activation proceeds inside its bank
        // while the channel stays available (only a short rank-to-rank
        // gap is charged); a single-bank device blocks outright.
        let occupancy = if hit {
            xfer
        } else if self.open_rows.len() > 1 {
            xfer + 4
        } else {
            lat + xfer
        };
        self.channel_free_at = start + occupancy;
        self.accesses += 1;
        self.total_latency += done - now;
        done
    }

    /// Total accesses issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Row-hit fraction of all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Mean access latency (request to data) in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }

    /// Forgets open-row and channel state (new measurement window).
    /// An armed fault plan rewinds to the start of its stream, so a
    /// faulted measurement replays bit-exactly after reset.
    pub fn reset(&mut self) {
        self.open_rows.iter_mut().for_each(|r| *r = None);
        self.channel_free_at = 0;
        self.accesses = 0;
        self.row_hits = 0;
        self.total_latency = 0;
        if let Some(f) = self.fault.as_mut() {
            f.reset();
        }
    }
}

/// A fully-associative LRU TLB.
///
/// # Examples
///
/// ```
/// use perf_sim::Tlb;
///
/// let mut tlb = Tlb::new(2, 4096, 30);
/// assert_eq!(tlb.translate(0x0000), 30); // Cold miss: page walk.
/// assert_eq!(tlb.translate(0x0008), 0);  // Same page: hit.
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: usize,
    page_size: u64,
    miss_penalty: u64,
    /// Most-recently-used page last.
    lru: VecDeque<u64>,
    lookups: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots over `page_size`-byte pages
    /// and a `miss_penalty` page-walk cost.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `page_size` is zero.
    pub fn new(entries: usize, page_size: u64, miss_penalty: u64) -> Tlb {
        assert!(entries > 0 && page_size > 0);
        Tlb {
            entries,
            page_size,
            miss_penalty,
            lru: VecDeque::new(),
            lookups: 0,
            misses: 0,
        }
    }

    /// Translates `addr`; returns the extra cycles incurred (0 on hit,
    /// the miss penalty on a miss).
    pub fn translate(&mut self, addr: u64) -> u64 {
        self.lookups += 1;
        let page = addr / self.page_size;
        if let Some(pos) = self.lru.iter().position(|&p| p == page) {
            // Hit: move to MRU position.
            self.lru.remove(pos);
            self.lru.push_back(page);
            0
        } else {
            self.misses += 1;
            if self.lru.len() == self.entries {
                self.lru.pop_front();
            }
            self.lru.push_back(page);
            self.miss_penalty
        }
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Miss fraction of all lookups.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }

    /// Flushes all entries and statistics.
    pub fn reset(&mut self) {
        self.lru.clear();
        self.lookups = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_row_hit_cheaper_than_miss() {
        let mut d = DramModel::new(100, 40, 64, 4096, 16);
        let t1 = d.access(0, 0, 64); // Miss.
        let t2 = d.access(t1, 64, 64); // Same row: hit.
        assert_eq!(t1, 104);
        assert_eq!(t2 - t1, 44);
        assert_eq!(d.accesses(), 2);
        assert!((d.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dram_misses_serialize_on_the_bank() {
        let mut d = DramModel::new(100, 40, 64, 4096, 16);
        let t1 = d.access(0, 0, 64);
        // A second miss issued at cycle 0 waits for the first row
        // activation to finish occupying the bank.
        let t2 = d.access(0, 8192, 64);
        assert_eq!(t1, 104);
        assert_eq!(t2, 104 + 100 + 4);
    }

    #[test]
    fn dram_row_hits_stream_at_bandwidth() {
        let mut d = DramModel::new(100, 40, 64, 1 << 20, 16);
        let mut last = 0;
        for i in 0..10u64 {
            last = d.access(0, i * 64, 64);
        }
        // First access: miss occupying 104 cycles; the nine following
        // hits each add only 4 transfer cycles to channel occupancy,
        // completing 44 cycles after their start.
        assert_eq!(last, 104 + 8 * 4 + 44);
    }

    #[test]
    fn dram_small_access_pays_full_burst() {
        let mut d = DramModel::new(100, 40, 64, 4096, 16);
        let t = d.access(0, 0, 4);
        assert_eq!(t, 104); // 4 bytes still costs one 64-byte burst.
    }

    #[test]
    fn dram_bandwidth_bound_transfer() {
        let mut d = DramModel::new(100, 40, 64, 1 << 20, 16);
        let t = d.access(0, 0, 4096);
        assert_eq!(t, 100 + 4096 / 16);
        assert!(d.avg_latency() > 0.0);
    }

    #[test]
    fn tlb_lru_eviction() {
        let mut t = Tlb::new(2, 4096, 25);
        assert_eq!(t.translate(0), 25); // Page 0: miss.
        assert_eq!(t.translate(4096), 25); // Page 1: miss.
        assert_eq!(t.translate(0), 0); // Hit; page 0 now MRU.
        assert_eq!(t.translate(8192), 25); // Page 2 evicts page 1.
        assert_eq!(t.translate(4096), 25); // Page 1 was evicted: miss.
        assert_eq!(t.lookups(), 5);
        assert!((t.miss_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dram_jitter_is_deterministic_and_reset_replays() {
        let plan = FaultPlan::mem_jitter(21, 350, 60);
        let run = |d: &mut DramModel| -> Vec<u64> {
            let mut t = 0;
            (0..50u64)
                .map(|i| {
                    t = d.access(t, i * 8192, 64);
                    t
                })
                .collect()
        };
        let mut a = DramModel::typical();
        a.set_fault(Some(plan));
        let mut b = DramModel::typical();
        b.set_fault(Some(plan));
        let ta = run(&mut a);
        assert_eq!(ta, run(&mut b), "same plan, same completion times");
        assert!(a.fault_cycles() > 0);
        // reset() rewinds the stream: the same model replays exactly.
        let before = a.fault_cycles();
        a.reset();
        assert_eq!(run(&mut a), ta);
        assert_eq!(a.fault_cycles(), before);
        // Jitter only ever delays completions.
        let mut clean = DramModel::typical();
        let tc = run(&mut clean);
        assert!(ta.iter().zip(&tc).all(|(f, c)| f >= c));
        // Disarming restores nominal behavior.
        a.set_fault(None);
        a.reset();
        assert_eq!(run(&mut a), tc);
        assert_eq!(a.fault_cycles(), 0);
    }

    #[test]
    fn resets_clear_state() {
        let mut d = DramModel::typical();
        d.access(0, 0, 64);
        d.reset();
        assert_eq!(d.accesses(), 0);
        let mut t = Tlb::new(4, 4096, 10);
        t.translate(0);
        t.reset();
        assert_eq!(t.lookups(), 0);
        assert_eq!(t.translate(0), 10); // Cold again after reset.
    }
}
