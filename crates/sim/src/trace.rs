//! A bounded event trace for debugging simulators.

use std::collections::VecDeque;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: u64,
    /// Component that emitted it.
    pub source: String,
    /// Free-form description.
    pub what: String,
}

/// A ring buffer of the most recent `capacity` events.
#[derive(Clone, Debug)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            enabled: true,
        }
    }

    /// A disabled trace: all emits are no-ops (zero overhead runs).
    pub fn disabled() -> Trace {
        let mut t = Trace::new(1);
        t.enabled = false;
        t
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event.
    pub fn emit(&mut self, cycle: u64, source: &str, what: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            cycle,
            source: source.to_string(),
            what: what.into(),
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained events, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("[{:>8}] {}: {}\n", e.cycle, e.source, e.what));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(2);
        t.emit(1, "a", "one");
        t.emit(2, "a", "two");
        t.emit(3, "a", "three");
        let ev: Vec<_> = t.events().collect();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].what, "two");
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        t.emit(1, "x", "y");
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn render_format() {
        let mut t = Trace::new(4);
        t.emit(42, "huff", "block done");
        let s = t.render();
        assert!(s.contains("42"));
        assert!(s.contains("huff: block done"));
    }
}
