//! Tick-accurate DAG pipelines: fan-out, fan-in and replicated nodes.
//!
//! [`Pipeline`](crate::Pipeline) models a linear chain; real SoCs are
//! DAGs — one decoder feeding two consumers, N replicated units behind
//! one dispatcher, branches merging back into a shared serializer. A
//! [`DagPipeline`] is the ground-truth analogue for those shapes: each
//! node owns one bounded input [`Fifo`], serves up to
//! `replicas` items concurrently, and hands finished items to its
//! out-edges either by caller-defined selection ([`Route::Pick`]) or by
//! copying to every edge ([`Route::Broadcast`]). Fan-in needs no
//! mechanism at all: several producers simply push into the same
//! consumer's input queue, in deterministic (reverse-topological
//! producer) order.
//!
//! Backpressure is identical to the linear model: a finished item keeps
//! occupying its server until every target queue it must enter has
//! space, so a full consumer throttles its producers — and, whole-DAG,
//! the branch with the slowest consumer governs the merged rate.
//!
//! ```
//! use perf_sim::dag::{DagNodeSpec, DagPipeline, Route};
//!
//! // split ──▶ a ──▶ join ◀── b ◀── split  (diamond, round-robin)
//! let nodes = vec![
//!     DagNodeSpec::new("split", 2, |_: &u32| 1)
//!         .targets(vec![1, 2], Route::Pick(Box::new(|i: &u32| *i as usize))),
//!     DagNodeSpec::new("a", 2, |_: &u32| 5).targets(vec![3], Route::Pick(Box::new(|_| 0))),
//!     DagNodeSpec::new("b", 2, |_: &u32| 5).targets(vec![3], Route::Pick(Box::new(|_| 0))),
//!     DagNodeSpec::new("join", 2, |_: &u32| 1),
//! ];
//! let mut dag = DagPipeline::new(nodes);
//! let (elapsed, done) = dag.run_to_completion((0..8).collect());
//! assert_eq!(done.len(), 8);
//! // Two 5-cycle branches in parallel beat one serial 5-cycle stage.
//! assert!(elapsed < 8 * 5);
//! ```

use crate::fault::{FaultInjector, FaultPlan};
use crate::fifo::Fifo;
use std::collections::VecDeque;

/// How a node distributes finished items across its out-edges.
pub enum Route<T> {
    /// Each finished item leaves on exactly one out-edge: the closure
    /// maps the item to an out-edge *slot* (taken modulo the number of
    /// targets). Callers encode their routing discipline here — e.g. a
    /// precomputed round-robin plan keyed by item index.
    Pick(Box<dyn Fn(&T) -> usize>),
    /// Every finished item is copied onto every out-edge; the copies
    /// are independent items downstream (a merge interleaves them, it
    /// does not re-join them).
    Broadcast,
}

/// Static description of one DAG node.
pub struct DagNodeSpec<T> {
    name: String,
    queue: usize,
    replicas: usize,
    delay: Box<dyn Fn(&T) -> u64>,
    targets: Vec<usize>,
    route: Route<T>,
}

impl<T> DagNodeSpec<T> {
    /// A terminal single-server node: `queue` bounds its input FIFO,
    /// `delay` is its per-item service time in cycles.
    pub fn new(
        name: impl Into<String>,
        queue: usize,
        delay: impl Fn(&T) -> u64 + 'static,
    ) -> DagNodeSpec<T> {
        DagNodeSpec {
            name: name.into(),
            queue,
            replicas: 1,
            delay: Box::new(delay),
            targets: Vec::new(),
            route: Route::Broadcast,
        }
    }

    /// Sets the number of parallel servers (≥ 1) sharing the input
    /// queue — the sim-side meaning of a stage's `replicas` key.
    pub fn replicas(mut self, r: usize) -> DagNodeSpec<T> {
        assert!(r >= 1, "a node needs at least one server");
        self.replicas = r;
        self
    }

    /// Sets the node's out-edges (indices into the pipeline's node
    /// vector, in edge order) and its distribution policy.
    pub fn targets(mut self, targets: Vec<usize>, route: Route<T>) -> DagNodeSpec<T> {
        self.targets = targets;
        self.route = route;
        self
    }
}

struct DagNode<T> {
    spec: DagNodeSpec<T>,
    input: Fifo<T>,
    /// Items in service, in dispatch order: `(completion_time, item)`.
    in_service: VecDeque<(u64, T)>,
    /// Finished items refuse to retire while `now < hold_until`
    /// (injected backpressure burst), exactly as if a target were full.
    hold_until: u64,
    busy_cycles: u64,
    stall_cycles: u64,
    processed: u64,
}

/// Per-node counters reported by [`DagPipeline::node_stats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagNodeStats {
    /// Node name.
    pub name: String,
    /// Items that completed service and retired downstream.
    pub processed: u64,
    /// Server-cycles spent in service (a node with R replicas can
    /// accumulate R per elapsed cycle).
    pub busy_cycles: u64,
    /// Server-cycles a finished item spent blocked on a full target.
    pub stall_cycles: u64,
}

/// A tick-accurate DAG of bounded-queue service nodes.
///
/// Construction checks the structure: targets must be in range, no
/// self-loops, the edge graph must be acyclic, and exactly one node
/// (the *source*) has no in-edges — that is where
/// [`run_to_completion`](Self::run_to_completion) injects items.
/// Nodes with no out-edges are *terminal*; their outputs are the
/// pipeline's completions.
pub struct DagPipeline<T> {
    nodes: Vec<DagNode<T>>,
    source: usize,
    /// Reverse-topological node order: consumers step before their
    /// producers so space freed downstream is visible upstream within
    /// the same cycle (flow-through), matching the linear pipeline.
    rev_topo: Vec<usize>,
    completions: Vec<T>,
    now: u64,
    fault: Option<FaultInjector>,
    fault_node: Option<usize>,
}

impl<T: Clone> DagPipeline<T> {
    /// Builds the pipeline from node specs.
    ///
    /// # Panics
    ///
    /// Panics if a target index is out of range or a self-loop, if the
    /// edge graph has a cycle, or if the number of source nodes (no
    /// in-edges) is not exactly one.
    pub fn new(specs: Vec<DagNodeSpec<T>>) -> DagPipeline<T> {
        assert!(!specs.is_empty(), "DAG pipeline needs at least one node");
        let n = specs.len();
        let mut indeg = vec![0usize; n];
        for (i, s) in specs.iter().enumerate() {
            for &t in &s.targets {
                assert!(t < n, "node `{}` targets out-of-range node {t}", s.name);
                assert!(t != i, "node `{}` targets itself", s.name);
                indeg[t] += 1;
            }
        }
        let sources: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        assert!(
            sources.len() == 1,
            "DAG pipeline needs exactly one source node, found {}",
            sources.len()
        );
        // Kahn topological sort; leftover nodes mean a cycle.
        let mut topo = Vec::with_capacity(n);
        let mut deg = indeg.clone();
        let mut ready: VecDeque<usize> = sources.iter().copied().collect();
        while let Some(u) = ready.pop_front() {
            topo.push(u);
            for &t in &specs[u].targets {
                deg[t] -= 1;
                if deg[t] == 0 {
                    ready.push_back(t);
                }
            }
        }
        assert!(topo.len() == n, "DAG pipeline edge graph has a cycle");
        topo.reverse();
        let nodes = specs
            .into_iter()
            .map(|spec| {
                let input = Fifo::new(format!("{}.in", spec.name), spec.queue.max(1));
                DagNode {
                    spec,
                    input,
                    in_service: VecDeque::new(),
                    hold_until: 0,
                    busy_cycles: 0,
                    stall_cycles: 0,
                    processed: 0,
                }
            })
            .collect();
        DagPipeline {
            nodes,
            source: sources[0],
            rev_topo: topo,
            completions: Vec::new(),
            now: 0,
            fault: None,
            fault_node: None,
        }
    }

    /// Arms (or with `None` disarms) deterministic fault injection on
    /// one node, with the same plan semantics as the linear pipeline's
    /// [`set_fault_on`](crate::Pipeline::set_fault_on).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_fault_on(&mut self, node: usize, plan: Option<FaultPlan>) {
        assert!(node < self.nodes.len(), "fault node out of range");
        self.fault = plan.map(FaultInjector::new);
        self.fault_node = plan.map(|_| node);
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Offers an item to the source node's input queue; fails when
    /// full.
    pub fn push_input(&mut self, item: T) -> Result<(), T> {
        self.nodes[self.source].input.push(item)
    }

    /// Whether any item remains anywhere in the DAG.
    pub fn is_busy(&self) -> bool {
        self.nodes
            .iter()
            .any(|nd| !nd.input.is_empty() || !nd.in_service.is_empty())
    }

    /// Items that reached a terminal node so far, in completion order.
    pub fn completions(&self) -> &[T] {
        &self.completions
    }

    /// Advances one clock cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        for oi in 0..self.rev_topo.len() {
            let i = self.rev_topo[oi];
            // 1. Retire finished items, in dispatch order. An item
            //    leaves only when *every* queue it must enter has
            //    space; otherwise it keeps its server (backpressure).
            let mut slot = 0;
            while slot < self.nodes[i].in_service.len() {
                let held = self.nodes[i].hold_until > now;
                let (emit, blocked) = {
                    let nd = &self.nodes[i];
                    let (done, item) = &nd.in_service[slot];
                    if *done > now {
                        (None, false)
                    } else if held {
                        (None, true)
                    } else if nd.spec.targets.is_empty() {
                        (Some(Vec::new()), false)
                    } else {
                        let outs: Vec<usize> = match &nd.spec.route {
                            Route::Broadcast => nd.spec.targets.clone(),
                            Route::Pick(f) => {
                                vec![nd.spec.targets[f(item) % nd.spec.targets.len()]]
                            }
                        };
                        if outs.iter().all(|&t| !self.nodes[t].input.is_full()) {
                            (Some(outs), false)
                        } else {
                            (None, true)
                        }
                    }
                };
                match emit {
                    Some(outs) => {
                        let (_, item) = self.nodes[i].in_service.remove(slot).expect("in range");
                        self.nodes[i].processed += 1;
                        if outs.is_empty() {
                            self.completions.push(item);
                        } else {
                            for &t in &outs {
                                self.nodes[t]
                                    .input
                                    .push(item.clone())
                                    .unwrap_or_else(|_| unreachable!("space checked"));
                            }
                        }
                        // `slot` now indexes the next entry already.
                    }
                    None => {
                        if blocked {
                            self.nodes[i].stall_cycles += 1;
                        }
                        slot += 1;
                    }
                }
            }
            // 2. Dispatch waiting items onto idle servers.
            while self.nodes[i].in_service.len() < self.nodes[i].spec.replicas {
                let Some(item) = self.nodes[i].input.pop() else {
                    break;
                };
                let mut d = (self.nodes[i].spec.delay)(&item).max(1);
                let targeted = self.fault_node.is_none_or(|k| k == i);
                if let Some(f) = self.fault.as_mut().filter(|_| targeted) {
                    d += f.stage_stall();
                    let burst = f.backpressure_burst();
                    if burst > 0 {
                        self.nodes[i].hold_until = now + d + burst;
                    }
                }
                self.nodes[i].in_service.push_back((now + d, item));
            }
            self.nodes[i].busy_cycles += self.nodes[i].in_service.len() as u64;
        }
        self.now += 1;
    }

    /// Feeds `items` into the source and runs until the DAG drains.
    /// Returns `(elapsed_cycles, completions)` measured from the
    /// current time; completions from every terminal node interleave in
    /// completion order.
    pub fn run_to_completion(&mut self, items: Vec<T>) -> (u64, Vec<T>) {
        let start = self.now;
        let drained = self.completions.len();
        let mut pending: VecDeque<T> = items.into();
        let mut idle_ticks = 0u64;
        while !pending.is_empty() || self.is_busy() {
            while let Some(item) = pending.pop_front() {
                match self.push_input(item) {
                    Ok(()) => {}
                    Err(item) => {
                        pending.push_front(item);
                        break;
                    }
                }
            }
            let before = self.completions.len();
            self.tick();
            if self.completions.len() == before {
                idle_ticks += 1;
                assert!(
                    idle_ticks < 100_000_000,
                    "DAG pipeline made no progress for 1e8 cycles; wedged?"
                );
            } else {
                idle_ticks = 0;
            }
        }
        (self.now - start, self.completions.split_off(drained))
    }

    /// Per-node counters over the cycles simulated so far.
    pub fn node_stats(&self) -> Vec<DagNodeStats> {
        self.nodes
            .iter()
            .map(|nd| DagNodeStats {
                name: nd.spec.name.clone(),
                processed: nd.processed,
                busy_cycles: nd.busy_cycles,
                stall_cycles: nd.stall_cycles,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, StageSpec};

    fn pick(f: impl Fn(&usize) -> usize + 'static) -> Route<usize> {
        Route::Pick(Box::new(f))
    }

    /// A two-node DAG chain must time out identically to the linear
    /// `Pipeline` on the same costs and queue depths.
    #[test]
    fn chain_dag_matches_linear_pipeline() {
        let costs = [7u64, 3, 9, 4, 8, 2, 6, 5];
        let dcosts = costs;
        let nodes = vec![
            DagNodeSpec::new("a", 2, move |i: &usize| dcosts[*i]).targets(vec![1], pick(|_| 0)),
            DagNodeSpec::new("b", 3, move |i: &usize| dcosts[*i] + 2),
        ];
        let mut dag = DagPipeline::new(nodes);
        let (d_elapsed, d_out) = dag.run_to_completion((0..costs.len()).collect());

        let c0 = costs;
        let c1 = costs;
        let mut lin = Pipeline::new(
            2,
            vec![
                StageSpec::new("a", 3, move |i: &usize| c0[*i]),
                StageSpec::new("b", costs.len(), move |i: &usize| c1[*i] + 2),
            ],
        );
        let (l_elapsed, l_out) = lin.run_to_completion((0..costs.len()).collect());
        assert_eq!(d_out, l_out);
        assert_eq!(d_elapsed, l_elapsed);
    }

    /// Round-robin fan-out across two equal branches roughly halves
    /// the bottleneck stage's effective service time.
    #[test]
    fn round_robin_fanout_parallelizes_the_bottleneck() {
        let serial = {
            let mut p = Pipeline::new(
                4,
                vec![
                    StageSpec::new("feed", 4, |_: &usize| 1),
                    StageSpec::new("work", 16, |_: &usize| 10),
                ],
            );
            p.run_to_completion((0..16).collect()).0
        };
        let nodes = vec![
            DagNodeSpec::new("feed", 4, |_: &usize| 1)
                .targets(vec![1, 2], pick(|i: &usize| *i % 2)),
            DagNodeSpec::new("work0", 4, |_: &usize| 10).targets(vec![3], pick(|_| 0)),
            DagNodeSpec::new("work1", 4, |_: &usize| 10).targets(vec![3], pick(|_| 0)),
            DagNodeSpec::new("drain", 4, |_: &usize| 1),
        ];
        let mut dag = DagPipeline::new(nodes);
        let (elapsed, out) = dag.run_to_completion((0..16).collect());
        assert_eq!(out.len(), 16);
        assert!(
            elapsed * 3 < serial * 2,
            "fan-out {elapsed} should clearly beat serial {serial}"
        );
    }

    /// Broadcast copies every item to every branch: completions double
    /// and a full branch throttles the producer (atomic hand-off).
    #[test]
    fn broadcast_duplicates_and_backpressures() {
        let nodes = vec![
            DagNodeSpec::new("src", 2, |_: &usize| 1).targets(vec![1, 2], Route::Broadcast),
            DagNodeSpec::new("fast", 1, |_: &usize| 1),
            DagNodeSpec::new("slow", 1, |_: &usize| 50),
        ];
        let mut dag = DagPipeline::new(nodes);
        let (elapsed, out) = dag.run_to_completion((0..6).collect());
        assert_eq!(out.len(), 12, "each item completes on both branches");
        // The slow branch gates the broadcast: ~6 × 50 cycles.
        assert!(elapsed >= 300, "slow branch must gate: {elapsed}");
        let stats = dag.node_stats();
        assert!(stats[0].stall_cycles > 0, "producer must stall: {stats:?}");
    }

    /// Replicated servers drain a queue R× faster once saturated.
    #[test]
    fn replicas_scale_service_throughput() {
        let run = |r: usize| {
            let nodes = vec![DagNodeSpec::new("work", 8, |_: &usize| 20).replicas(r)];
            DagPipeline::new(nodes)
                .run_to_completion((0..12).collect())
                .0
        };
        let one = run(1);
        let three = run(3);
        assert!(one >= 240, "single server is serial: {one}");
        assert!(
            three * 2 < one,
            "3 replicas ({three}) must clearly beat 1 ({one})"
        );
    }

    /// Fault injection on one node slows the stream; disarming
    /// restores the clean timing.
    #[test]
    fn faults_inject_and_disarm() {
        let build = || {
            DagPipeline::new(vec![
                DagNodeSpec::new("a", 2, |_: &usize| 2)
                    .targets(vec![1, 2], pick(|i: &usize| *i % 2)),
                DagNodeSpec::new("b", 2, |_: &usize| 4).targets(vec![3], pick(|_| 0)),
                DagNodeSpec::new("c", 2, |_: &usize| 4).targets(vec![3], pick(|_| 0)),
                DagNodeSpec::new("d", 2, |_: &usize| 1),
            ])
        };
        let clean = build().run_to_completion((0..10).collect()).0;
        let mut faulted = build();
        faulted.set_fault_on(1, Some(FaultPlan::backpressure(3, 900, 200)));
        let slow = faulted.run_to_completion((0..10).collect()).0;
        assert!(slow > clean, "fault must slow the DAG: {slow} vs {clean}");
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_edges_panic() {
        let _ = DagPipeline::new(vec![
            DagNodeSpec::new("src", 1, |_: &usize| 1).targets(vec![1], pick(|_| 0)),
            DagNodeSpec::new("a", 1, |_: &usize| 1).targets(vec![2], pick(|_| 0)),
            DagNodeSpec::new("b", 1, |_: &usize| 1).targets(vec![1], pick(|_| 0)),
        ]);
    }

    #[test]
    #[should_panic(expected = "exactly one source")]
    fn two_sources_panic() {
        let _ = DagPipeline::new(vec![
            DagNodeSpec::new("a", 1, |_: &usize| 1).targets(vec![2], pick(|_| 0)),
            DagNodeSpec::new("b", 1, |_: &usize| 1).targets(vec![2], pick(|_| 0)),
            DagNodeSpec::new("sink", 1, |_: &usize| 1),
        ]);
    }
}
