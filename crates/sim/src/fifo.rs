//! Bounded FIFO queues with occupancy statistics.
//!
//! Hardware queues are the mechanism behind backpressure and internal
//! queuing — the phenomena the paper says make accelerator performance
//! hard to reason about. Every inter-stage buffer in the accelerator
//! models is a [`Fifo`].

use std::collections::VecDeque;

/// A bounded FIFO.
///
/// `push` fails (returning the item back) when the queue is full; the
/// producer then stalls — that is backpressure.
///
/// # Examples
///
/// ```
/// use perf_sim::Fifo;
///
/// let mut q: Fifo<u32> = Fifo::new("q", 2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert_eq!(q.push(3), Err(3)); // Full: backpressure.
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    name: String,
    cap: usize,
    items: VecDeque<T>,
    pushes: u64,
    pops: u64,
    rejected: u64,
    high_water: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with capacity `cap` (must be at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero; a zero-capacity hardware queue cannot
    /// exist and would deadlock every producer.
    pub fn new(name: impl Into<String>, cap: usize) -> Fifo<T> {
        assert!(cap >= 1, "FIFO capacity must be >= 1");
        Fifo {
            name: name.into(),
            cap,
            items: VecDeque::with_capacity(cap),
            pushes: 0,
            pops: 0,
            rejected: 0,
            high_water: 0,
        }
    }

    /// The queue's name (for traces and stats).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.cap
    }

    /// Remaining free entries.
    pub fn space(&self) -> usize {
        self.cap - self.items.len()
    }

    /// Attempts to enqueue; on a full queue the item is handed back so
    /// the producer can retry next cycle.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Peeks at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Total successful pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful pops.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Total rejected pushes (backpressure events).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Empties the queue and resets statistics.
    pub fn reset(&mut self) {
        self.items.clear();
        self.pushes = 0;
        self.pops = 0;
        self.rejected = 0;
        self.high_water = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = Fifo::new("q", 4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn backpressure_counts_rejections() {
        let mut q = Fifo::new("q", 1);
        q.push('a').unwrap();
        assert_eq!(q.push('b'), Err('b'));
        assert_eq!(q.push('c'), Err('c'));
        assert_eq!(q.rejected(), 2);
        assert!(q.is_full());
        assert_eq!(q.space(), 0);
    }

    #[test]
    fn stats_track_traffic() {
        let mut q = Fifo::new("q", 3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.high_water(), 2);
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.pushes(), 3);
        assert_eq!(q.pops(), 1);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.front(), Some(&2));
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = Fifo::new("q", 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let _ = q.push(3);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.pushes(), 0);
        assert_eq!(q.rejected(), 0);
        assert_eq!(q.high_water(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new("bad", 0);
    }
}
