//! Deterministic fault injection for the cycle-accurate models.
//!
//! A real accelerator's timing contract holds only over an *operating
//! region*: DRAM refresh, thermal throttling or a congested NoC add
//! latency the vendor's interface never promised to model. The
//! conformance harness (`perf-conformance`) needs a way to push the
//! simulated hardware outside its nominal behavior and check that the
//! interfaces degrade *gracefully* — stay within a widened error budget
//! or be declared out of contract — rather than silently producing
//! nonsense.
//!
//! Everything here is seeded and deterministic: a [`FaultPlan`] plus a
//! seed fully determines every injected event, so any faulted run can
//! be replayed bit-exactly. The PRNG is a self-contained splitmix64 —
//! no dependence on the `rand` facade — because replayability across
//! crates is the whole point.
//!
//! Three fault classes, matching the structures in this crate:
//!
//! * **memory-latency jitter** — extra cycles on a [`crate::DramModel`]
//!   access (refresh collisions, rank contention);
//! * **transient stage stalls** — extra occupancy when a
//!   [`crate::Pipeline`] stage issues an item (clock gating, ECC
//!   scrub);
//! * **FIFO backpressure bursts** — a stage's output queue refuses
//!   retirement for a burst of cycles (downstream arbitration loss).
//!
//! # Examples
//!
//! ```
//! use perf_sim::fault::{FaultInjector, FaultPlan};
//!
//! let plan = FaultPlan::mem_jitter(7, 100, 40); // seed 7, 10%, ≤40 cycles
//! let mut a = FaultInjector::new(plan);
//! let mut b = FaultInjector::new(plan);
//! let xs: Vec<u64> = (0..64).map(|_| a.mem_extra()).collect();
//! let ys: Vec<u64> = (0..64).map(|_| b.mem_extra()).collect();
//! assert_eq!(xs, ys); // Same plan, same stream.
//! ```

/// What to inject, with what probability, and how hard.
///
/// Probabilities are per-mille (`0..=1000`) so a plan is `Copy`, `Eq`
/// and hashable — convenient for memoized harness runs. The default
/// plan injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the injector's private PRNG stream.
    pub seed: u64,
    /// Per-mille probability that a DRAM access pays extra latency.
    pub mem_jitter_pm: u32,
    /// Maximum extra cycles on a jittered access (uniform `1..=max`).
    pub mem_jitter_max: u64,
    /// Per-mille probability that a stage issue incurs a transient
    /// stall.
    pub stage_stall_pm: u32,
    /// Maximum extra cycles for a transient stage stall.
    pub stage_stall_max: u64,
    /// Per-mille probability that an item's retirement triggers a
    /// backpressure burst on its stage's output queue.
    pub backpressure_pm: u32,
    /// Length of a backpressure burst in cycles.
    pub backpressure_len: u64,
}

impl FaultPlan {
    /// A plan that injects only memory-latency jitter.
    pub fn mem_jitter(seed: u64, pm: u32, max: u64) -> FaultPlan {
        FaultPlan {
            seed,
            mem_jitter_pm: pm,
            mem_jitter_max: max,
            ..FaultPlan::default()
        }
    }

    /// A plan that injects only transient stage stalls.
    pub fn stage_stalls(seed: u64, pm: u32, max: u64) -> FaultPlan {
        FaultPlan {
            seed,
            stage_stall_pm: pm,
            stage_stall_max: max,
            ..FaultPlan::default()
        }
    }

    /// A plan that injects only FIFO backpressure bursts.
    pub fn backpressure(seed: u64, pm: u32, len: u64) -> FaultPlan {
        FaultPlan {
            seed,
            backpressure_pm: pm,
            backpressure_len: len,
            ..FaultPlan::default()
        }
    }

    /// Whether this plan injects anything at all.
    pub fn is_nominal(&self) -> bool {
        self.mem_jitter_pm == 0 && self.stage_stall_pm == 0 && self.backpressure_pm == 0
    }

    /// Expected extra cycles per *potential* injection site — the
    /// scalar the conformance harness compares against a per-accelerator
    /// contract threshold. Deterministic in the plan alone (the seed
    /// plays no part), so the in/out-of-contract decision is stable.
    pub fn intensity(&self) -> f64 {
        let mj = self.mem_jitter_pm as f64 * (self.mem_jitter_max as f64 + 1.0) / 2.0;
        let ss = self.stage_stall_pm as f64 * (self.stage_stall_max as f64 + 1.0) / 2.0;
        let bp = self.backpressure_pm as f64 * self.backpressure_len as f64;
        (mj + ss + bp) / 1000.0
    }
}

/// Stateful, seeded injector: the runtime half of a [`FaultPlan`].
///
/// Each query advances a private splitmix64 stream, so the sequence of
/// injected events is a pure function of the plan. [`reset`] rewinds
/// the stream to its start, which the simulators call from their own
/// `reset` so a measurement is replayable.
///
/// [`reset`]: FaultInjector::reset
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    injected: u64,
    extra_cycles: u64,
}

impl FaultInjector {
    /// Creates an injector at the start of the plan's event stream.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            // Offset so seed 0 is a usable stream too.
            state: plan.seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            injected: 0,
            extra_cycles: 0,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele et al.) — tiny, full-period, and good
        // enough for Bernoulli draws.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn roll(&mut self, pm: u32) -> bool {
        pm > 0 && self.next_u64() % 1000 < pm as u64
    }

    fn magnitude(&mut self, max: u64) -> u64 {
        if max == 0 {
            0
        } else {
            1 + self.next_u64() % max
        }
    }

    fn charge(&mut self, extra: u64) -> u64 {
        if extra > 0 {
            self.injected += 1;
            self.extra_cycles += extra;
        }
        extra
    }

    /// Extra latency for one DRAM access (0 when not jittered).
    pub fn mem_extra(&mut self) -> u64 {
        if self.roll(self.plan.mem_jitter_pm) {
            let m = self.magnitude(self.plan.mem_jitter_max);
            self.charge(m)
        } else {
            0
        }
    }

    /// Extra occupancy for one pipeline-stage issue (0 when clean).
    pub fn stage_stall(&mut self) -> u64 {
        if self.roll(self.plan.stage_stall_pm) {
            let m = self.magnitude(self.plan.stage_stall_max);
            self.charge(m)
        } else {
            0
        }
    }

    /// Backpressure-burst length charged to one item's retirement
    /// (0 when no burst triggers).
    pub fn backpressure_burst(&mut self) -> u64 {
        if self.roll(self.plan.backpressure_pm) {
            let len = self.plan.backpressure_len;
            self.charge(len)
        } else {
            0
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total extra cycles injected so far.
    pub fn extra_cycles(&self) -> u64 {
        self.extra_cycles
    }

    /// Rewinds the event stream to its start (fresh measurement
    /// window; replays identically).
    pub fn reset(&mut self) {
        *self = FaultInjector::new(self.plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_nominal_and_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::default());
        assert!(inj.plan().is_nominal());
        assert_eq!(inj.plan().intensity(), 0.0);
        for _ in 0..1000 {
            assert_eq!(inj.mem_extra(), 0);
            assert_eq!(inj.stage_stall(), 0);
            assert_eq!(inj.backpressure_burst(), 0);
        }
        assert_eq!(inj.injected(), 0);
        assert_eq!(inj.extra_cycles(), 0);
    }

    #[test]
    fn same_seed_same_stream_different_seed_diverges() {
        let plan = FaultPlan::mem_jitter(42, 500, 100);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        let mut c = FaultInjector::new(FaultPlan::mem_jitter(43, 500, 100));
        let xs: Vec<u64> = (0..256).map(|_| a.mem_extra()).collect();
        let ys: Vec<u64> = (0..256).map(|_| b.mem_extra()).collect();
        let zs: Vec<u64> = (0..256).map(|_| c.mem_extra()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn reset_rewinds_the_stream() {
        let mut inj = FaultInjector::new(FaultPlan::stage_stalls(7, 300, 9));
        let first: Vec<u64> = (0..64).map(|_| inj.stage_stall()).collect();
        inj.reset();
        let replay: Vec<u64> = (0..64).map(|_| inj.stage_stall()).collect();
        assert_eq!(first, replay);
        assert_eq!(
            inj.injected(),
            first.iter().filter(|&&x| x > 0).count() as u64
        );
    }

    #[test]
    fn probabilities_and_magnitudes_respected() {
        let mut inj = FaultInjector::new(FaultPlan::mem_jitter(1, 250, 16));
        let n = 10_000;
        let hits = (0..n).filter(|_| inj.mem_extra() > 0).count();
        let frac = hits as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "hit rate {frac}");
        let mut inj = FaultInjector::new(FaultPlan::mem_jitter(1, 1000, 16));
        for _ in 0..1000 {
            let m = inj.mem_extra();
            assert!((1..=16).contains(&m), "magnitude {m}");
        }
    }

    #[test]
    fn backpressure_burst_is_fixed_length() {
        let mut inj = FaultInjector::new(FaultPlan::backpressure(3, 1000, 12));
        for _ in 0..100 {
            assert_eq!(inj.backpressure_burst(), 12);
        }
        assert_eq!(inj.extra_cycles(), 1200);
    }

    #[test]
    fn intensity_scales_with_plan_not_seed() {
        let a = FaultPlan::mem_jitter(1, 100, 40);
        let b = FaultPlan::mem_jitter(999, 100, 40);
        assert_eq!(a.intensity(), b.intensity());
        assert!(FaultPlan::mem_jitter(0, 200, 40).intensity() > a.intensity());
        let combo = FaultPlan {
            seed: 0,
            mem_jitter_pm: 100,
            mem_jitter_max: 40,
            stage_stall_pm: 50,
            stage_stall_max: 10,
            backpressure_pm: 20,
            backpressure_len: 8,
        };
        let expect = (100.0 * 20.5 + 50.0 * 5.5 + 20.0 * 8.0) / 1000.0;
        assert!((combo.intensity() - expect).abs() < 1e-12);
        assert!(!combo.is_nominal());
    }
}
