//! A generic in-order hardware pipeline with bounded inter-stage
//! buffers and backpressure.
//!
//! Each stage processes one item at a time for a data-dependent number
//! of cycles, then hands it to the next stage's input queue. A finished
//! item whose downstream queue is full keeps occupying its stage — the
//! stall propagates upstream exactly as in silicon. This structure (and
//! the resulting "throughput = slowest stage, latency = fill + drain")
//! is the performance behavior the paper's interfaces summarize.

use crate::fault::{FaultInjector, FaultPlan};
use crate::fifo::Fifo;

/// Specification of one pipeline stage.
pub struct StageSpec<T> {
    /// Stage name for stats and traces.
    pub name: String,
    /// Cycles this stage needs to process an item.
    pub delay: Box<dyn Fn(&T) -> u64>,
    /// Capacity of the buffer between this stage and the next.
    pub out_capacity: usize,
}

impl<T> StageSpec<T> {
    /// Creates a stage spec.
    pub fn new(
        name: impl Into<String>,
        out_capacity: usize,
        delay: impl Fn(&T) -> u64 + 'static,
    ) -> StageSpec<T> {
        StageSpec {
            name: name.into(),
            delay: Box::new(delay),
            out_capacity,
        }
    }
}

struct Stage<T> {
    name: String,
    delay: Box<dyn Fn(&T) -> u64>,
    /// Item in flight in this stage, with its completion cycle.
    current: Option<(T, u64)>,
    /// Injected backpressure burst: retirement is refused while
    /// `now < hold_until`, exactly as if `out` were full.
    hold_until: u64,
    /// Buffer between this stage and the next.
    out: Fifo<T>,
    busy_cycles: u64,
    stall_cycles: u64,
    processed: u64,
}

/// A tick-accurate in-order pipeline.
///
/// # Examples
///
/// ```
/// use perf_sim::{Pipeline, StageSpec};
///
/// // Two stages: 3 cycles then 1 cycle, single-entry buffers.
/// let mut p = Pipeline::new(
///     4,
///     vec![
///         StageSpec::new("a", 1, |_: &u32| 3),
///         StageSpec::new("b", 1, |_: &u32| 1),
///     ],
/// );
/// let (elapsed, out) = p.run_to_completion(vec![1, 2, 3]);
/// assert_eq!(out, vec![1, 2, 3]);
/// // Bottleneck is stage a at 3 cycles/item.
/// assert!(elapsed >= 9);
/// ```
pub struct Pipeline<T> {
    input: Fifo<T>,
    stages: Vec<Stage<T>>,
    now: u64,
    fault: Option<FaultInjector>,
    /// When set, the armed fault plan applies only to this stage index;
    /// otherwise every stage draws from the injection stream.
    fault_stage: Option<usize>,
}

impl<T> Pipeline<T> {
    /// Creates a pipeline with the given input-queue capacity and
    /// stages.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(input_capacity: usize, specs: Vec<StageSpec<T>>) -> Pipeline<T> {
        assert!(!specs.is_empty(), "pipeline needs at least one stage");
        let stages = specs
            .into_iter()
            .map(|s| Stage {
                out: Fifo::new(format!("{}_out", s.name), s.out_capacity),
                name: s.name,
                delay: s.delay,
                current: None,
                hold_until: 0,
                busy_cycles: 0,
                stall_cycles: 0,
                processed: 0,
            })
            .collect();
        Pipeline {
            input: Fifo::new("input", input_capacity),
            stages,
            now: 0,
            fault: None,
            fault_stage: None,
        }
    }

    /// Arms (or with `None` disarms) deterministic fault injection:
    /// transient stage stalls extend an item's occupancy (counted as
    /// busy time — the stage *is* working, just slower), and
    /// backpressure bursts refuse retirement for a window (counted as
    /// stall time, like a full downstream queue). The busy/stall/idle
    /// partition of elapsed time is preserved under injection.
    pub fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan.map(FaultInjector::new);
        self.fault_stage = None;
    }

    /// Like [`set_fault`](Self::set_fault), but the plan applies only to
    /// the stage at `stage` (other stages run clean). Composite models
    /// use this to degrade an individual accelerator inside a pipeline
    /// and watch the stall propagate across the composition boundary.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn set_fault_on(&mut self, stage: usize, plan: Option<FaultPlan>) {
        assert!(stage < self.stages.len(), "fault stage out of range");
        self.fault = plan.map(FaultInjector::new);
        self.fault_stage = plan.map(|_| stage);
    }

    /// Extra cycles injected by the armed fault plan so far.
    pub fn fault_cycles(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.extra_cycles())
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Offers an item to the input queue; fails when full.
    pub fn push_input(&mut self, item: T) -> Result<(), T> {
        self.input.push(item)
    }

    /// Pops a finished item from the final stage's output buffer.
    pub fn pop_output(&mut self) -> Option<T> {
        self.stages.last_mut().expect("non-empty").out.pop()
    }

    /// Whether any item remains anywhere in the pipeline.
    pub fn is_busy(&self) -> bool {
        !self.input.is_empty()
            || self
                .stages
                .iter()
                .any(|s| s.current.is_some() || !s.out.is_empty())
    }

    /// Advances one clock cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        // Walk stages from last to first so space freed downstream this
        // cycle is visible upstream this same cycle (flow-through).
        for i in (0..self.stages.len()).rev() {
            // 1. Retire a finished item into the out buffer if it fits.
            let finished = matches!(self.stages[i].current, Some((_, done)) if done <= now);
            if finished {
                if self.stages[i].out.is_full() || self.stages[i].hold_until > now {
                    self.stages[i].stall_cycles += 1;
                } else {
                    let (item, _) = self.stages[i].current.take().expect("checked");
                    self.stages[i]
                        .out
                        .push(item)
                        .unwrap_or_else(|_| unreachable!("space checked"));
                    self.stages[i].processed += 1;
                }
            }
            // 2. Accept a new item if the stage is idle.
            if self.stages[i].current.is_none() {
                let item = if i == 0 {
                    self.input.pop()
                } else {
                    // Split to satisfy the borrow checker: the input of
                    // stage i is the out-queue of stage i-1.
                    let (prev, rest) = self.stages.split_at_mut(i);
                    let _ = &rest[0];
                    prev[i - 1].out.pop()
                };
                if let Some(item) = item {
                    let mut d = (self.stages[i].delay)(&item).max(1);
                    let targeted = self.fault_stage.is_none_or(|k| k == i);
                    if let Some(f) = self.fault.as_mut().filter(|_| targeted) {
                        // Transient stall: the stage simply takes
                        // longer. Backpressure burst: after finishing,
                        // retirement is refused for the burst window.
                        d += f.stage_stall();
                        let burst = f.backpressure_burst();
                        if burst > 0 {
                            self.stages[i].hold_until = now + d + burst;
                        }
                    }
                    self.stages[i].current = Some((item, now + d));
                }
            }
            if self.stages[i].current.is_some() {
                self.stages[i].busy_cycles += 1;
            }
        }
        self.now += 1;
    }

    /// Feeds `items` through the pipeline and collects all outputs.
    /// Returns `(elapsed_cycles, outputs)` measured from the current
    /// time.
    pub fn run_to_completion(&mut self, items: Vec<T>) -> (u64, Vec<T>) {
        let start = self.now;
        let mut pending: std::collections::VecDeque<T> = items.into();
        let mut out = Vec::new();
        // Guard against a wedged configuration: no pipeline should need
        // more than (items+stages) x max_delay cycles; use a generous
        // fixed bound instead of computing delays up front.
        let mut idle_ticks = 0u64;
        while !pending.is_empty() || self.is_busy() {
            while let Some(item) = pending.pop_front() {
                match self.push_input(item) {
                    Ok(()) => {}
                    Err(item) => {
                        pending.push_front(item);
                        break;
                    }
                }
            }
            let before = out.len();
            self.tick();
            while let Some(done) = self.pop_output() {
                out.push(done);
            }
            if out.len() == before {
                idle_ticks += 1;
                assert!(
                    idle_ticks < 100_000_000,
                    "pipeline made no progress for 1e8 cycles; wedged?"
                );
            } else {
                idle_ticks = 0;
            }
        }
        (self.now - start, out)
    }

    /// Per-stage cycle totals over the cycles simulated so far:
    /// `(name, cycles)` with busy split into pure work and
    /// backpressure stall, and idle as the remainder of elapsed time.
    pub fn stage_cycles(&self) -> Vec<(String, crate::StageCycles)> {
        let elapsed = self.now;
        self.stages
            .iter()
            .map(|s| {
                // `busy_cycles` counts every occupied cycle, including
                // those stalled on a full downstream buffer.
                let busy = s.busy_cycles - s.stall_cycles;
                (
                    s.name.clone(),
                    crate::StageCycles {
                        busy,
                        stall: s.stall_cycles,
                        idle: elapsed.saturating_sub(s.busy_cycles),
                    },
                )
            })
            .collect()
    }

    /// Emits every stage's cycle totals into `sink` under `component`.
    pub fn report_stages(&self, component: &str, sink: &mut dyn crate::TraceSink) {
        if !sink.is_enabled() {
            return;
        }
        for (name, cycles) in self.stage_cycles() {
            sink.stage(component, &name, cycles);
        }
    }

    /// Per-stage utilization over the cycles simulated so far:
    /// `(name, busy_fraction, stall_fraction, items_processed)`.
    pub fn stage_stats(&self) -> Vec<(String, f64, f64, u64)> {
        let elapsed = self.now.max(1) as f64;
        self.stages
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    s.busy_cycles as f64 / elapsed,
                    s.stall_cycles as f64 / elapsed,
                    s.processed,
                )
            })
            .collect()
    }

    /// Clears all queues, in-flight items and statistics; time restarts
    /// at zero.
    pub fn reset(&mut self) {
        self.input.reset();
        for s in &mut self.stages {
            s.current = None;
            s.hold_until = 0;
            s.out.reset();
            s.busy_cycles = 0;
            s.stall_cycles = 0;
            s.processed = 0;
        }
        self.now = 0;
        if let Some(f) = self.fault.as_mut() {
            f.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage(d1: u64, d2: u64) -> Pipeline<u64> {
        Pipeline::new(
            16,
            vec![
                StageSpec::new("s1", 2, move |_| d1),
                StageSpec::new("s2", 2, move |_| d2),
            ],
        )
    }

    #[test]
    fn single_item_latency_is_sum_of_delays() {
        let mut p = two_stage(3, 4);
        let (elapsed, out) = p.run_to_completion(vec![42]);
        assert_eq!(out, vec![42]);
        // 3 + 4 plus one cycle of queue hand-off per boundary.
        assert!((7..=10).contains(&elapsed), "elapsed = {elapsed}");
    }

    #[test]
    fn throughput_set_by_slowest_stage() {
        let mut p = two_stage(1, 5);
        let n = 50;
        let (elapsed, out) = p.run_to_completion((0..n).collect());
        assert_eq!(out.len(), n as usize);
        let per_item = elapsed as f64 / n as f64;
        // Bottleneck stage takes 5 cycles/item; fill adds a little.
        assert!((5.0..6.0).contains(&per_item), "per_item = {per_item}");
    }

    #[test]
    fn order_preserved() {
        let mut p = two_stage(2, 3);
        let (_, out) = p.run_to_completion((0..20).collect());
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_stalls_counted() {
        // Slow final stage with tiny buffer forces stage 1 to stall.
        let mut p = Pipeline::new(
            4,
            vec![
                StageSpec::new("fast", 1, |_: &u64| 1),
                StageSpec::new("slow", 1, |_: &u64| 10),
            ],
        );
        let (_, out) = p.run_to_completion((0..10).collect());
        assert_eq!(out.len(), 10);
        let stats = p.stage_stats();
        let fast_stalls = stats[0].2;
        assert!(fast_stalls > 0.0, "expected upstream stalls");
    }

    #[test]
    fn data_dependent_delays() {
        // Delay equals the item's value.
        let mut p = Pipeline::new(4, vec![StageSpec::new("v", 1, |x: &u64| *x)]);
        let (elapsed, _) = p.run_to_completion(vec![5, 1, 1]);
        assert!(elapsed >= 7, "elapsed = {elapsed}");
    }

    #[test]
    fn zero_delay_coerced_to_one_cycle() {
        let mut p = Pipeline::new(4, vec![StageSpec::new("z", 1, |_: &u64| 0)]);
        let (elapsed, out) = p.run_to_completion(vec![1, 2, 3]);
        assert_eq!(out.len(), 3);
        assert!(elapsed >= 3);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = two_stage(1, 1);
        p.run_to_completion(vec![1, 2, 3]);
        p.reset();
        assert_eq!(p.now(), 0);
        assert!(!p.is_busy());
        let (_, out) = p.run_to_completion(vec![9]);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn stage_stats_report_processed_counts() {
        let mut p = two_stage(1, 1);
        p.run_to_completion((0..7).collect());
        for (_, _, _, n) in p.stage_stats() {
            assert_eq!(n, 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let _ = Pipeline::<u64>::new(1, vec![]);
    }

    #[test]
    fn stage_cycles_partition_elapsed_time() {
        let mut p = Pipeline::new(
            4,
            vec![
                StageSpec::new("fast", 1, |_: &u64| 1),
                StageSpec::new("slow", 1, |_: &u64| 10),
            ],
        );
        let (elapsed, _) = p.run_to_completion((0..10).collect());
        for (name, c) in p.stage_cycles() {
            assert_eq!(c.total(), elapsed, "stage {name} must partition time");
            assert!(c.busy > 0);
        }
        // The fast stage stalls behind the slow one.
        let fast = &p.stage_cycles()[0];
        assert!(fast.1.stall > 0, "expected backpressure stalls: {fast:?}");
        // The sink view matches the raw accessor.
        let mut sink = crate::MemorySink::new();
        p.report_stages("pipe", &mut sink);
        assert_eq!(sink.stages.len(), 2);
        assert_eq!(sink.stages[0].cycles, p.stage_cycles()[0].1);
        assert_eq!(sink.stages[0].component, "pipe");
        // A disabled sink stays empty.
        let mut null = crate::NullSink;
        p.report_stages("pipe", &mut null);
    }

    fn faulted_pipeline(plan: FaultPlan) -> Pipeline<u64> {
        let mut p = Pipeline::new(
            4,
            vec![
                StageSpec::new("a", 2, |_: &u64| 3),
                StageSpec::new("b", 2, |_: &u64| 2),
            ],
        );
        p.set_fault(Some(plan));
        p
    }

    #[test]
    fn fault_injection_is_deterministic_and_replayable() {
        let plan = FaultPlan {
            seed: 11,
            mem_jitter_pm: 0,
            mem_jitter_max: 0,
            stage_stall_pm: 400,
            stage_stall_max: 7,
            backpressure_pm: 200,
            backpressure_len: 5,
        };
        let (e1, o1) = faulted_pipeline(plan).run_to_completion((0..40).collect());
        let (e2, o2) = faulted_pipeline(plan).run_to_completion((0..40).collect());
        assert_eq!(e1, e2, "same plan must replay bit-exactly");
        assert_eq!(o1, o2);
        // reset() rewinds the injection stream: the same pipeline
        // object repeats the measurement exactly.
        let mut p = faulted_pipeline(plan);
        let (ea, _) = p.run_to_completion((0..40).collect());
        let fault_a = p.fault_cycles();
        p.reset();
        let (eb, _) = p.run_to_completion((0..40).collect());
        assert_eq!(ea, eb);
        assert_eq!(fault_a, p.fault_cycles());
        assert!(fault_a > 0, "plan should have injected something");
        // A different seed yields a different schedule.
        let (e3, _) =
            faulted_pipeline(FaultPlan { seed: 12, ..plan }).run_to_completion((0..40).collect());
        assert_ne!(e1, e3);
        // Injection only ever slows the pipeline down.
        let mut clean = faulted_pipeline(plan);
        clean.set_fault(None);
        let (e0, _) = clean.run_to_completion((0..40).collect());
        assert!(e1 > e0, "faulted {e1} should exceed clean {e0}");
    }

    #[test]
    fn stage_cycles_partition_holds_under_injection() {
        // Transient stalls land in busy time, backpressure bursts in
        // stall time; either way every elapsed cycle stays attributed
        // to exactly one of busy/stall/idle per stage.
        for plan in [
            FaultPlan::stage_stalls(5, 500, 9),
            FaultPlan::backpressure(5, 400, 6),
            FaultPlan {
                seed: 9,
                mem_jitter_pm: 0,
                mem_jitter_max: 0,
                stage_stall_pm: 300,
                stage_stall_max: 4,
                backpressure_pm: 300,
                backpressure_len: 8,
            },
        ] {
            let mut p = faulted_pipeline(plan);
            let (elapsed, out) = p.run_to_completion((0..25).collect());
            assert_eq!(out, (0..25).collect::<Vec<_>>(), "order preserved");
            for (name, c) in p.stage_cycles() {
                assert_eq!(
                    c.total(),
                    elapsed,
                    "stage {name} must partition elapsed time under {plan:?}"
                );
            }
        }
    }

    #[test]
    fn per_stage_fault_targets_only_that_stage() {
        // Backpressure injected on stage 0 only: stage 0 accumulates
        // stall cycles, stage 1 runs clean (its output is drained every
        // tick, so any stall it shows would be injected).
        let build = || {
            Pipeline::new(
                4,
                vec![
                    StageSpec::new("a", 4, |_: &u64| 2),
                    StageSpec::new("b", 4, |_: &u64| 2),
                ],
            )
        };
        let plan = FaultPlan::backpressure(2, 1000, 10);
        let mut p = build();
        p.set_fault_on(0, Some(plan));
        let (faulted, out) = p.run_to_completion((0..8).collect());
        assert_eq!(out.len(), 8);
        let cycles = p.stage_cycles();
        assert!(cycles[0].1.stall >= 50, "targeted stage stalls: {cycles:?}");
        assert_eq!(cycles[1].1.stall, 0, "untargeted stage clean: {cycles:?}");

        let mut clean = build();
        let (base, _) = clean.run_to_completion((0..8).collect());
        assert!(faulted > base);

        // Disarming also clears the target; re-arming with set_fault
        // applies to every stage again.
        let mut q = build();
        q.set_fault_on(1, Some(plan));
        q.set_fault(Some(plan));
        q.run_to_completion((0..8).collect());
        let qc = q.stage_cycles();
        assert!(qc[0].1.stall > 0, "global plan hits stage 0: {qc:?}");
    }

    #[test]
    fn backpressure_bursts_surface_as_stalls() {
        let mut p = Pipeline::new(4, vec![StageSpec::new("only", 4, |_: &u64| 2)]);
        p.set_fault(Some(FaultPlan::backpressure(2, 1000, 10)));
        p.run_to_completion((0..5).collect());
        let (_, c) = &p.stage_cycles()[0];
        // Every item triggers a 10-cycle hold; with no real downstream
        // pressure all stall time comes from injection.
        assert!(
            c.stall >= 50,
            "expected ≥50 injected stall cycles, got {}",
            c.stall
        );
    }
}
