//! Statistics counters and histograms for simulators.

/// A named monotonic counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter.
    pub fn new(name: impl Into<String>) -> Counter {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// A fixed-bucket histogram of cycle counts (power-of-two buckets).
#[derive(Clone, Debug)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))`; bucket 0 also
    /// holds zero.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram covering values up to `2^levels`.
    pub fn new(levels: usize) -> Histogram {
        Histogram {
            buckets: vec![0; levels.max(1)],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records a sample. Values beyond the last bucket saturate into it.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            (63 - v.leading_zeros() as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("ops");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.name(), "ops");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(8);
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1000); // Saturates into the last bucket (2^7..).
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        assert_eq!(h.buckets()[0], 2); // 0 and 1.
        assert_eq!(h.buckets()[1], 2); // 2 and 3.
        assert_eq!(h.buckets()[7], 1); // 1000 saturated.
    }

    #[test]
    fn histogram_min_one_level() {
        let mut h = Histogram::new(0);
        h.record(7);
        assert_eq!(h.buckets().len(), 1);
        assert_eq!(h.count(), 1);
    }
}
