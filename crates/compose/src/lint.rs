//! Topology-level lints (`PC0xx`): static checks on a pipeline config
//! before anything is simulated.
//!
//! The composition boundary is where per-accelerator interfaces stop
//! helping: a topology can name a queue that will always saturate, a
//! queue that can never bind, or a stage template its accelerator does
//! not accept — all statically detectable from the TOML alone plus the
//! stages' *program-tier* throughput ceilings (extracted with the
//! interval bound analyzer in `perf_iface_lang::lint`, no simulation).
//!
//! Severities follow the shipped-artifact gate convention: template
//! and parse problems are errors (the pipeline will not run, or will
//! not run as written); rate-structure findings are informational —
//! a saturating inter-stage queue is often the *point* of a bounded
//! pipeline (backpressure), so `PC001`/`PC002` surface structure
//! without failing `repro --xcheck`.

use crate::model::accel_backend;
use crate::topology::{default_template, GraphIssue, Policy, StageCfg, Topology, MAX_ITEMS};
use perf_core::diag::{Diagnostic, Diagnostics};
use perf_core::query::EngineChoice;
use perf_iface_lang::lint::{bound_src, BoxVal};

/// The topology lint catalog: code, summary.
pub const TOPOLOGY_CODES: &[(&str, &str)] = &[
    (
        "PC001",
        "rate mismatch between adjacent stages: the producer's program-tier \
         throughput ceiling exceeds the consumer's, so the bounded queue \
         between them saturates and throttles the producer (info)",
    ),
    (
        "PC002",
        "queue can never bind: its depth is at least the stream-length cap, \
         so backpressure through it is unreachable (info)",
    ),
    (
        "PC003",
        "stage/template mismatch: the spec kind is not accepted by the \
         accelerator's backend, or the varied field is not part of the \
         stage template",
    ),
    ("PC004", "unknown accelerator name in a stage"),
    ("PC005", "topology config failed to parse or validate"),
    (
        "PC006",
        "edge graph has a cycle (including self-loops): a pipeline's stage \
         graph must be a DAG",
    ),
    (
        "PC007",
        "broken stream path: no injection point, more than one, or a stage \
         the stream can never reach",
    ),
    (
        "PC008",
        "fan-out policy mismatch: one producer's out-edges declare \
         conflicting round-robin/broadcast policies",
    ),
];

/// The stage's throughput ceiling from its accelerator's *program*
/// interface: the upper end of the interval the bound analyzer
/// guarantees for the accel's throughput function over its declared
/// workload box, narrowed by the stage's fixed spec fields where they
/// map onto program-input features. `None` when the accelerator is
/// unknown or the extracted ceiling is unbounded.
fn stage_tput_ceiling(st: &StageCfg) -> Option<f64> {
    // (program source, throughput fn, workload box, spec→box field map)
    let (src, fname, mut bx, map): (&str, &str, BoxVal, &[(&str, &str)]) = match st.accel.as_str() {
        "jpeg-decoder" => (
            accel_jpeg::interface::program::JPEG_PI_SRC,
            "tput_jpeg_decode",
            accel_jpeg::interface::workload_box(),
            &[],
        ),
        "bitcoin-miner" => (
            accel_bitcoin::interface::program::BITCOIN_PI_SRC,
            "max_tput_job",
            accel_bitcoin::interface::workload_box(),
            &[
                ("loop", "loop"),
                ("nonce_count", "nonce_count"),
                ("difficulty", "difficulty_bits"),
            ],
        ),
        "protoacc" => (
            accel_protoacc::interface::program::PROTOACC_PI_SRC,
            "tput_protoacc_ser",
            accel_protoacc::interface::workload_box(),
            &[],
        ),
        "vta" => (
            accel_vta::interface::program::VTA_PI_SRC,
            "tput_vta",
            accel_vta::interface::workload_box(),
            &[],
        ),
        _ => return None,
    };
    for (spec_field, box_field) in map {
        if let Some(&(_, v)) = st.fields.iter().find(|(k, _)| k == spec_field) {
            bx = bx.with_field(box_field, BoxVal::point(v));
        }
    }
    let iv = bound_src(src, fname, &bx).ok()?;
    iv.hi.is_finite().then_some(iv.hi)
}

/// Maps a structural edge-graph issue to its catalog diagnostic,
/// pointed at the offending `[[edge]]`/`[[stage]]` stanza when the
/// topology came from TOML.
fn graph_diag(topo: &Topology, issue: &GraphIssue) -> Diagnostic {
    let edge_line = |e: usize| topo.edges.get(e).map(|e| e.line).filter(|&l| l > 0);
    let stage_line = |s: usize| topo.stage_lines.get(s).copied().filter(|&l| l > 0);
    let (code, line) = match issue {
        GraphIssue::UnknownEndpoint { edge, .. } | GraphIssue::DuplicateEdge { edge } => {
            ("PC005", edge_line(*edge))
        }
        GraphIssue::SelfLoop { edge } => ("PC006", edge_line(*edge)),
        GraphIssue::Cycle { stages } => {
            // Point at the first edge inside the cycle.
            let line = topo
                .edges
                .iter()
                .find(|e| stages.contains(&e.from) && stages.contains(&e.to))
                .map(|e| e.line)
                .filter(|&l| l > 0);
            ("PC006", line)
        }
        GraphIssue::NoSource | GraphIssue::MultiSource { .. } => ("PC007", None),
        GraphIssue::Unreachable { stage } => ("PC007", stage_line(*stage)),
        GraphIssue::PolicyMismatch { stage } => {
            let line = topo
                .out_edges(*stage)
                .into_iter()
                .find(|&e| topo.edges[e].policy.is_some())
                .and_then(edge_line);
            ("PC008", line)
        }
    };
    let d = Diagnostic::error(code, issue.render(topo));
    match line {
        Some(l) => d.with_pos(l as u32, 1),
        None => d,
    }
}

/// Lints a finished [`Topology`]. Line numbers point at each stage's
/// `[[stage]]` stanza when the topology came from TOML.
pub fn lint(topo: &Topology) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let at = |i: usize, st: &StageCfg, d: Diagnostic| -> Diagnostic {
        let d = d.with_at(format!("stage `{}`", st.instance));
        match topo.stage_lines.get(i) {
            Some(&ln) if ln > 0 => d.with_pos(ln as u32, 1),
            _ => d,
        }
    };
    let mut ceilings: Vec<Option<f64>> = Vec::with_capacity(topo.stages.len());
    for (i, st) in topo.stages.iter().enumerate() {
        match accel_backend(&st.accel, EngineChoice::Compiled) {
            Err(_) => {
                ds.push(at(
                    i,
                    st,
                    Diagnostic::error(
                        "PC004",
                        format!(
                            "unknown accelerator `{}` (have: jpeg-decoder, bitcoin-miner, \
                             protoacc, vta)",
                            st.accel
                        ),
                    ),
                ));
                ceilings.push(None);
                continue;
            }
            Ok(b) => {
                if !b.spec_kinds().contains(&st.kind.as_str()) {
                    ds.push(at(
                        i,
                        st,
                        Diagnostic::error(
                            "PC003",
                            format!(
                                "accelerator `{}` does not accept spec kind `{}` (accepts: {})",
                                st.accel,
                                st.kind,
                                b.spec_kinds().join(", ")
                            ),
                        ),
                    ));
                }
                if st.vary != "seed" && !st.fields.iter().any(|(k, _)| k == &st.vary) {
                    ds.push(at(
                        i,
                        st,
                        Diagnostic::error(
                            "PC003",
                            format!(
                                "varied field `{}` is not part of the stage template \
                                 (fields: {})",
                                st.vary,
                                st.fields
                                    .iter()
                                    .map(|(k, _)| k.as_str())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        ),
                    ));
                }
                ceilings.push(stage_tput_ceiling(st));
            }
        }
        if st.queue >= MAX_ITEMS {
            ds.push(at(
                i,
                st,
                Diagnostic::info(
                    "PC002",
                    format!(
                        "queue feeding stage `{}` (depth {}) can never bind: streams are \
                         capped at {MAX_ITEMS} items",
                        st.instance, st.queue
                    ),
                ),
            ));
        }
    }
    for issue in topo.graph_issues() {
        ds.push(graph_diag(topo, &issue));
    }
    // Rate mismatches follow the edge graph: the arrival rate at a
    // consumer sums every in-edge's producer ceiling (scaled down by
    // the producer's fan-out under round-robin — each edge carries a
    // 1/outdeg share — and by nothing under broadcast, which copies
    // the full stream), against the consumer's ceiling times its
    // replica count. On a chain this is the producer-vs-consumer
    // comparison the linear linter made.
    for (v, consumer) in topo.stages.iter().enumerate() {
        let ins = topo.in_edges(v);
        if ins.is_empty() {
            continue;
        }
        let Some(c) = ceilings[v] else { continue };
        let mut arrival = 0.0_f64;
        let mut producers: Vec<&str> = Vec::new();
        let mut all_known = true;
        for &e in &ins {
            let Some(u) = topo.stage_index(&topo.edges[e].from) else {
                all_known = false;
                break;
            };
            let Some(p) = ceilings[u] else {
                all_known = false;
                break;
            };
            let outs = topo.out_edges(u).len();
            let share = if outs > 1 && topo.policy_of(u) == Policy::RoundRobin {
                1.0 / outs as f64
            } else {
                1.0
            };
            arrival += p * topo.stages[u].replicas as f64 * share;
            producers.push(&topo.stages[u].instance);
        }
        let accept = c * consumer.replicas as f64;
        if all_known && arrival > accept * (1.0 + 1e-9) {
            ds.push(at(
                v,
                consumer,
                Diagnostic::info(
                    "PC001",
                    format!(
                        "stage{} {} can produce up to {arrival:.4} items/cycle but stage \
                         `{}` accepts at most {accept:.4}: the bounded queue `{}.in` \
                         (depth {}) saturates and becomes the binding constraint",
                        if producers.len() == 1 { "" } else { "s" },
                        producers
                            .iter()
                            .map(|p| format!("`{p}`"))
                            .collect::<Vec<_>>()
                            .join(" + "),
                        consumer.instance,
                        consumer.instance,
                        consumer.queue
                    ),
                ),
            ));
        }
    }
    ds.sort();
    ds.with_origin(&format!("topology `{}`", topo.name))
}

/// Lints a topology TOML document without requiring it to be valid:
/// parse failures become `PC005`, unknown accelerators `PC004` with
/// the stanza's line number, and well-formed configs get the full
/// [`lint`] pass.
pub fn lint_toml(origin: &str, src: &str) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let raw = match Topology::parse_toml_raw(src) {
        Ok(raw) => raw,
        Err(e) => {
            ds.push(Diagnostic::error("PC005", e.to_string()));
            return ds.with_origin(origin);
        }
    };
    let mut blocked = false;
    for (i, st) in raw.stages.iter().enumerate() {
        if st.accel.is_empty() {
            ds.push(
                Diagnostic::error("PC005", format!("stage {i} has no `accel` key"))
                    .with_pos(raw.stage_lines[i] as u32, 1),
            );
            blocked = true;
        } else if default_template(&st.accel).is_none() {
            ds.push(
                Diagnostic::error(
                    "PC004",
                    format!(
                        "unknown accelerator `{}` (have: jpeg-decoder, bitcoin-miner, \
                         protoacc, vta)",
                        st.accel
                    ),
                )
                .with_pos(raw.stage_lines[i] as u32, 1),
            );
            blocked = true;
        }
    }
    if blocked {
        ds.sort();
        return ds.with_origin(origin);
    }
    let mut topo = raw;
    // Fill defaults but skip `validate`: a broken edge graph should
    // surface as structured `PC006`/`PC007`/`PC008` diagnostics with
    // stanza line numbers (via `lint`'s graph pass), not one opaque
    // `PC005`. Non-graph validation failures (duplicate instance
    // names, out-of-range counts) still map to `PC005`.
    if let Err(e) = topo.fill_defaults() {
        ds.push(Diagnostic::error("PC005", e.to_string()));
        return ds.with_origin(origin);
    }
    if topo.graph_issues().is_empty() {
        if let Err(e) = topo.validate() {
            ds.push(Diagnostic::error("PC005", e.to_string()));
            return ds.with_origin(origin);
        }
    }
    ds.merge(lint(&topo));
    ds.sort();
    ds.with_origin(origin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::Severity;

    #[test]
    fn demo_style_chain_has_no_errors_or_warnings() {
        let topo = Topology::parse_chain("vta:3>bitcoin-miner:2>protoacc:4").unwrap();
        let ds = lint(&topo);
        assert_eq!(ds.count(Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn rate_mismatch_names_the_binding_queue() {
        // The miner (≤ 1/loop items per cycle) feeds the much slower
        // protoacc serializer: the inter-stage queue must saturate.
        let topo = Topology::parse_chain("bitcoin-miner:2>protoacc:4").unwrap();
        let ds = lint(&topo);
        let pc1 = ds.find("PC001").expect("rate mismatch detected");
        assert_eq!(pc1.severity, Severity::Info);
        assert!(pc1.message.contains("s1_protoacc.in"), "{}", pc1.message);
        assert!(pc1.message.contains("depth 4"), "{}", pc1.message);
    }

    #[test]
    fn never_binding_queue_is_flagged() {
        let topo = Topology::parse_chain(&format!("vta:2>protoacc:{MAX_ITEMS}")).unwrap();
        let ds = lint(&topo);
        let pc2 = ds.find("PC002").expect("never-binding queue detected");
        assert_eq!(pc2.severity, Severity::Info);
    }

    #[test]
    fn template_mismatches_are_line_numbered_errors() {
        let src = "name = \"bad\"\n\
                   [[stage]]\n\
                   accel = \"vta\"\n\
                   kind = \"scan\"\n\
                   [[stage]]\n\
                   accel = \"protoacc\"\n\
                   vary = \"bogus\"\n";
        let ds = lint_toml("bad.toml", src);
        assert!(ds.has_errors(), "{}", ds.render());
        let kinds: Vec<_> = ds.items().iter().filter(|d| d.code == "PC003").collect();
        assert_eq!(kinds.len(), 2, "{}", ds.render());
        assert_eq!(kinds[0].line, Some(2), "kind mismatch points at its stanza");
        assert_eq!(kinds[1].line, Some(5), "vary mismatch points at its stanza");
    }

    #[test]
    fn branched_demo_topology_lints_clean() {
        let topo = Topology::parse_chain("vta:2>(protoacc:2|bitcoin-miner:2)>protoacc:3").unwrap();
        let ds = lint(&topo);
        assert_eq!(ds.count(Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn cycle_is_pc006_with_an_edge_line() {
        let src = "[[stage]]\ninstance = \"a\"\naccel = \"vta\"\n\
                   [[stage]]\ninstance = \"b\"\naccel = \"protoacc\"\n\
                   [[edge]]\nfrom = \"a\"\nto = \"b\"\n\
                   [[edge]]\nfrom = \"b\"\nto = \"a\"\n";
        let ds = lint_toml("cyc.toml", src);
        let pc6 = ds.find("PC006").expect("cycle detected");
        assert_eq!(pc6.severity, Severity::Error);
        assert_eq!(pc6.line, Some(7), "points at an edge inside the cycle");
        // Self-loops are the smallest cycle.
        let src = "[[stage]]\ninstance = \"a\"\naccel = \"vta\"\n\
                   [[edge]]\nfrom = \"a\"\nto = \"a\"\n";
        let ds = lint_toml("loop.toml", src);
        assert_eq!(ds.find("PC006").expect("self-loop").line, Some(4));
    }

    #[test]
    fn orphan_stage_is_pc007() {
        let src = "[[stage]]\ninstance = \"a\"\naccel = \"vta\"\n\
                   [[stage]]\ninstance = \"b\"\naccel = \"protoacc\"\n\
                   [[stage]]\ninstance = \"c\"\naccel = \"vta\"\n\
                   [[edge]]\nfrom = \"a\"\nto = \"b\"\n";
        let ds = lint_toml("orphan.toml", src);
        let pc7 = ds.find("PC007").expect("orphan stage detected");
        assert_eq!(pc7.severity, Severity::Error);
        assert!(pc7.message.contains("injection point"), "{}", pc7.message);
    }

    #[test]
    fn policy_mismatch_is_pc008() {
        let src = "[[stage]]\ninstance = \"a\"\naccel = \"vta\"\n\
                   [[stage]]\ninstance = \"b\"\naccel = \"protoacc\"\n\
                   [[stage]]\ninstance = \"c\"\naccel = \"protoacc\"\n\
                   [[edge]]\nfrom = \"a\"\nto = \"b\"\npolicy = \"broadcast\"\n\
                   [[edge]]\nfrom = \"a\"\nto = \"c\"\npolicy = \"round-robin\"\n";
        let ds = lint_toml("mixed.toml", src);
        let pc8 = ds.find("PC008").expect("policy mismatch detected");
        assert_eq!(pc8.severity, Severity::Error);
        assert_eq!(pc8.line, Some(10), "points at a policy-declaring edge");
    }

    #[test]
    fn fan_in_rate_mismatch_sums_the_producers() {
        // Two miners broadcast-merge... rather, two miners feed one
        // serializer; their combined ceiling exceeds its acceptance.
        let src = "[[stage]]\ninstance = \"src\"\naccel = \"bitcoin-miner\"\n\
                   [[stage]]\ninstance = \"m1\"\naccel = \"bitcoin-miner\"\n\
                   [[stage]]\ninstance = \"m2\"\naccel = \"bitcoin-miner\"\n\
                   [[stage]]\ninstance = \"ser\"\naccel = \"protoacc\"\nqueue = 2\n\
                   [[edge]]\nfrom = \"src\"\nto = \"m1\"\n\
                   [[edge]]\nfrom = \"src\"\nto = \"m2\"\n\
                   [[edge]]\nfrom = \"m1\"\nto = \"ser\"\n\
                   [[edge]]\nfrom = \"m2\"\nto = \"ser\"\n";
        let ds = lint_toml("fanin.toml", src);
        assert_eq!(ds.count(Severity::Error), 0, "{}", ds.render());
        let pc1 = ds.find("PC001").expect("combined rate mismatch detected");
        assert!(pc1.message.contains("`m1` + `m2`"), "{}", pc1.message);
        assert!(pc1.message.contains("ser.in"), "{}", pc1.message);
    }

    #[test]
    fn unknown_accel_and_parse_failures_are_diagnosed() {
        let ds = lint_toml("x.toml", "[[stage]]\naccel = \"warp-drive\"\n");
        assert_eq!(ds.find("PC004").expect("unknown accel").line, Some(1));

        let ds = lint_toml("x.toml", "nonsense\n");
        assert!(ds.find("PC005").is_some(), "{}", ds.render());

        let ds = lint_toml("x.toml", "[[stage]]\nqueue = 2\n");
        assert!(ds.find("PC005").is_some(), "{}", ds.render());
    }
}
