//! [`QueryBackend`] adapter for composite pipelines.
//!
//! A [`PipelineBackend`] answers performance queries for a whole
//! accelerator chain under the accel name `pipe:<chain>` (e.g.
//! `pipe:jpeg-decoder:4>protoacc:8`), so the query service can serve
//! pipeline-level questions through the same representation ladder —
//! NL bounds, program recurrence, composite Petri net — it uses for
//! single accelerators.

use perf_core::budget::Budget;
use perf_core::iface::{InterfaceKind, Metric};
use perf_core::query::{EngineChoice, QueryBackend, WorkloadSpec};
use perf_core::{CoreError, Observation, Prediction};

use crate::model::{Composite, StreamParams};
use crate::topology::Topology;

/// A composite pipeline behind the [`QueryBackend`] interface.
pub struct PipelineBackend {
    composite: Composite,
    /// `"pipe:<chain>"`. Leaked once per constructed topology — the
    /// trait requires `&'static str`, and a service worker builds each
    /// distinct topology at most once per thread.
    name: &'static str,
}

impl PipelineBackend {
    /// Wraps a topology.
    pub fn new(topo: Topology, engine: EngineChoice) -> Result<PipelineBackend, CoreError> {
        let composite = Composite::new(topo, engine)?;
        let name = format!("pipe:{}", composite.topology().chain_label());
        Ok(PipelineBackend {
            composite,
            name: Box::leak(name.into_boxed_str()),
        })
    }

    /// Parses the one-line chain shorthand (the service's
    /// `pipe:<chain>` accel names route here).
    pub fn from_chain(chain: &str, engine: EngineChoice) -> Result<PipelineBackend, CoreError> {
        PipelineBackend::new(Topology::parse_chain(chain)?, engine)
    }

    /// The underlying composite model (fault arming, differential
    /// checks).
    pub fn composite_mut(&mut self) -> &mut Composite {
        &mut self.composite
    }

    /// Read access to the underlying composite model.
    pub fn composite(&self) -> &Composite {
        &self.composite
    }
}

impl QueryBackend for PipelineBackend {
    fn accel(&self) -> &'static str {
        self.name
    }

    fn engine(&self) -> EngineChoice {
        self.composite.engine()
    }

    fn spec_kinds(&self) -> &'static [&'static str] {
        &["stream"]
    }

    fn predict(
        &mut self,
        spec: &WorkloadSpec,
        repr: InterfaceKind,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        let stream = StreamParams::from_spec(spec)?;
        let (lo, hi) = match repr {
            InterfaceKind::NaturalLanguage => self.composite.nl_bounds(&stream)?,
            InterfaceKind::Program => {
                let m = self.composite.program_makespan(&stream)?;
                (m, m)
            }
            InterfaceKind::PetriNet => {
                let m = self.composite.petri_makespan(&stream)? as f64;
                (m, m)
            }
        };
        Ok(match metric {
            Metric::Latency => {
                if lo == hi {
                    Prediction::point(lo)
                } else {
                    Prediction::bounds(lo, hi)
                }
            }
            Metric::Throughput => {
                let n = stream.items as f64;
                if lo == hi {
                    Prediction::point(n / lo.max(1.0))
                } else {
                    // Reciprocation flips the endpoints.
                    Prediction::bounds(n / hi.max(1.0), n / lo.max(1.0))
                }
            }
        })
    }

    fn budget(&self, repr: InterfaceKind, _metric: Metric) -> Budget {
        // Composite budgets stack per-stage interface error on top of
        // composition error (event-driven net / analytic recurrence vs
        // the tick simulator's hand-off cycles), so each tier is wider
        // than its single-accelerator counterpart. The deadband covers
        // fill/drain hand-off cycles on short streams.
        match repr {
            InterfaceKind::PetriNet => Budget::new(0.08, 0.20).with_atol(64.0),
            InterfaceKind::Program => Budget::new(0.12, 0.40).with_atol(64.0),
            InterfaceKind::NaturalLanguage => Budget::new(0.40, 0.95).with_atol(128.0),
        }
    }

    fn measure(&mut self, spec: &WorkloadSpec) -> Result<Observation, CoreError> {
        let stream = StreamParams::from_spec(spec)?;
        self.composite.measure_stream(&stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_answers_every_channel() {
        let mut b =
            PipelineBackend::from_chain("vta:2>protoacc:4", EngineChoice::Compiled).unwrap();
        assert_eq!(b.accel(), "pipe:vta:2>protoacc:4");
        assert_eq!(b.spec_kinds(), &["stream"]);
        let spec = WorkloadSpec::new("stream")
            .with("items", 5.0)
            .with("seed", 2.0);
        let obs = b.measure(&spec).unwrap();
        let actual = Metric::Latency.of(&obs);
        assert!(actual > 0.0);
        for repr in [
            InterfaceKind::NaturalLanguage,
            InterfaceKind::Program,
            InterfaceKind::PetriNet,
        ] {
            for metric in [Metric::Latency, Metric::Throughput] {
                let p = b.predict(&spec, repr, metric).unwrap();
                assert!(p.is_finite(), "{repr:?}/{metric:?}: {p}");
            }
        }
        // NL latency bounds must contain the petri point estimate.
        let nl = b
            .predict(&spec, InterfaceKind::NaturalLanguage, Metric::Latency)
            .unwrap();
        let petri = b
            .predict(&spec, InterfaceKind::PetriNet, Metric::Latency)
            .unwrap();
        assert!(nl.contains(petri.midpoint()), "nl {nl} vs petri {petri}");
    }

    #[test]
    fn backend_accepts_dag_chain_specs() {
        let mut b = PipelineBackend::from_chain(
            "vta:2>(protoacc:2|bitcoin-miner:2)>protoacc:3",
            EngineChoice::Compiled,
        )
        .unwrap();
        assert_eq!(
            b.accel(),
            "pipe:vta:2>(protoacc:2|bitcoin-miner:2)>protoacc:3",
            "layered DAGs keep a round-trippable service name"
        );
        let spec = WorkloadSpec::new("stream")
            .with("items", 5.0)
            .with("seed", 2.0);
        let actual = Metric::Latency.of(&b.measure(&spec).unwrap());
        assert!(actual > 0.0);
        for repr in [
            InterfaceKind::NaturalLanguage,
            InterfaceKind::Program,
            InterfaceKind::PetriNet,
        ] {
            let p = b.predict(&spec, repr, Metric::Latency).unwrap();
            assert!(p.is_finite(), "{repr:?}: {p}");
        }
        let nl = b
            .predict(&spec, InterfaceKind::NaturalLanguage, Metric::Latency)
            .unwrap();
        let petri = b
            .predict(&spec, InterfaceKind::PetriNet, Metric::Latency)
            .unwrap();
        assert!(nl.contains(petri.midpoint()), "nl {nl} vs petri {petri}");
    }

    #[test]
    fn non_stream_specs_are_rejected() {
        let mut b = PipelineBackend::from_chain("vta:2", EngineChoice::Interpreted).unwrap();
        assert!(b.measure(&WorkloadSpec::new("random")).is_err());
        assert!(b
            .predict(
                &WorkloadSpec::new("stream").with("items", 0.0),
                InterfaceKind::Program,
                Metric::Latency
            )
            .is_err());
    }
}
