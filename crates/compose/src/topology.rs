//! Pipeline topology configs.
//!
//! A [`Topology`] names a chain of accelerator instances with bounded
//! inter-stage queues. It can be written two ways:
//!
//! * a TOML document ([`Topology::parse_toml`]) — the config format the
//!   `repro --compose` driver and service accept from files;
//! * a one-line chain ([`Topology::parse_chain`]) like
//!   `"jpeg-decoder:4>protoacc:8"` — the shorthand used in service
//!   requests (`pipe:<chain>`) and benchmark row tags.
//!
//! The TOML dialect is deliberately tiny (the build has no TOML crate):
//! top-level `key = "value"` pairs, `[[stage]]` array-of-table headers,
//! inline numeric tables for `fields`, and `#` comments. Anything else
//! is a parse error with a line number.
//!
//! ```
//! use perf_compose::Topology;
//!
//! let t = Topology::parse_toml(r#"
//!     name = "decode-serialize"
//!     [[stage]]
//!     accel = "jpeg-decoder"
//!     queue = 4
//!     [[stage]]
//!     accel = "protoacc"
//!     queue = 8
//! "#).unwrap();
//! assert_eq!(t.chain_label(), "jpeg-decoder:4>protoacc:8");
//! let shorthand = Topology::parse_chain("jpeg-decoder:4>protoacc:8").unwrap();
//! assert_eq!(t.stages, shorthand.stages); // names differ, stages agree
//! ```

use perf_core::CoreError;

/// Default inter-stage queue depth when a stage does not specify one.
pub const DEFAULT_QUEUE: usize = 4;

/// Hard ceiling on stream length accepted by composite models; keeps a
/// malicious `items` field from wedging the service worker.
pub const MAX_ITEMS: usize = 4096;

/// One accelerator instance in a pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct StageCfg {
    /// Unique instance name; becomes the stage's Petri component name
    /// and place-name prefix. Derived from the accelerator when unset.
    pub instance: String,
    /// Accelerator model: one of the shipped backends
    /// (`jpeg-decoder`, `bitcoin-miner`, `protoacc`, `vta`).
    pub accel: String,
    /// Depth of the bounded queue feeding this stage. For stage 0 this
    /// is the pipeline's input-queue capacity; for later stages it is
    /// the inter-stage buffer that carries backpressure upstream.
    pub queue: usize,
    /// Per-item workload-spec kind submitted to this stage's backend;
    /// defaults to an accelerator-specific template.
    pub kind: String,
    /// Fixed spec fields (the template's knobs).
    pub fields: Vec<(String, f64)>,
    /// Name of the field varied per stream item (default `"seed"`), so
    /// a stream exercises data-dependent behavior instead of replaying
    /// one workload.
    pub vary: String,
}

impl StageCfg {
    fn blank() -> StageCfg {
        StageCfg {
            instance: String::new(),
            accel: String::new(),
            queue: 0,
            kind: String::new(),
            fields: Vec::new(),
            vary: String::new(),
        }
    }
}

/// A named chain of accelerator stages.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Pipeline name (reports, net name).
    pub name: String,
    /// Stages in flow order.
    pub stages: Vec<StageCfg>,
    /// 1-based source line of each `[[stage]]` header, parallel to
    /// `stages`. Zero for stages that were not parsed from TOML (the
    /// chain shorthand has no line structure), so topology lints can
    /// point at the offending stanza when one exists.
    pub stage_lines: Vec<usize>,
}

/// The per-accelerator default workload template: spec kind, fixed
/// fields, and which field to vary per item. Chosen so per-item cost is
/// data-dependent but bounded (e.g. the bitcoin stage scans a fixed
/// nonce window instead of mining to an unbounded first hit).
pub(crate) fn default_template(accel: &str) -> Option<(&'static str, Vec<(String, f64)>)> {
    let f = |pairs: &[(&str, f64)]| {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v))
            .collect::<Vec<_>>()
    };
    match accel {
        "jpeg-decoder" => Some(("random", f(&[("seed", 1.0)]))),
        "bitcoin-miner" => Some((
            "scan",
            f(&[
                ("loop", 4.0),
                ("seed", 1.0),
                ("nonce_count", 12.0),
                ("difficulty", 16.0),
            ]),
        )),
        "protoacc" => Some(("format", f(&[("idx", 1.0), ("n", 6.0), ("seed", 1.0)]))),
        "vta" => Some(("random", f(&[("seed", 1.0), ("max_blocks", 6.0)]))),
        _ => None,
    }
}

fn err(line: usize, msg: impl std::fmt::Display) -> CoreError {
    CoreError::Artifact(format!("topology line {}: {msg}", line + 1))
}

/// Cuts a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, CoreError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(err(line, format!("expected a quoted string, got `{v}`")))
    }
}

fn parse_number(value: &str, line: usize) -> Result<f64, CoreError> {
    let v = value.trim();
    v.parse::<f64>()
        .map_err(|_| err(line, format!("expected a number, got `{v}`")))
}

/// Parses `{ k = 1, j = 2.5 }` (numbers only).
fn parse_inline_table(value: &str, line: usize) -> Result<Vec<(String, f64)>, CoreError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| {
            err(
                line,
                format!("expected an inline table `{{ k = v }}`, got `{v}`"),
            )
        })?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, val) = part.split_once('=').ok_or_else(|| {
            err(
                line,
                format!("expected `key = number` in table, got `{part}`"),
            )
        })?;
        out.push((k.trim().to_string(), parse_number(val, line)?));
    }
    Ok(out)
}

impl Topology {
    /// Parses the mini-TOML config format (see module docs).
    pub fn parse_toml(src: &str) -> Result<Topology, CoreError> {
        let mut t = Topology::parse_toml_raw(src)?;
        t.finish()?;
        Ok(t)
    }

    /// Parses the TOML without filling defaults or validating: the
    /// topology linter uses this so it can diagnose unknown
    /// accelerators and template mismatches (which `finish` would
    /// reject outright) with stanza line numbers.
    pub(crate) fn parse_toml_raw(src: &str) -> Result<Topology, CoreError> {
        let mut name = String::new();
        let mut stages: Vec<StageCfg> = Vec::new();
        let mut stage_lines: Vec<usize> = Vec::new();
        for (ln, raw) in src.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[stage]]" {
                stages.push(StageCfg::blank());
                stage_lines.push(ln + 1);
                continue;
            }
            if line.starts_with('[') {
                return Err(err(ln, format!("unknown table `{line}`; only [[stage]]")));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(ln, "expected `key = value`"))?;
            let key = key.trim();
            match stages.last_mut() {
                None => match key {
                    "name" => name = parse_string(value, ln)?,
                    other => {
                        return Err(err(
                            ln,
                            format!("unknown top-level key `{other}` (before any [[stage]])"),
                        ))
                    }
                },
                Some(st) => match key {
                    "instance" => st.instance = parse_string(value, ln)?,
                    "accel" => st.accel = parse_string(value, ln)?,
                    "queue" => {
                        let q = parse_number(value, ln)?;
                        if !(1.0..=65536.0).contains(&q) {
                            return Err(err(ln, format!("queue depth must be ≥ 1, got {q}")));
                        }
                        st.queue = q as usize;
                    }
                    "kind" => st.kind = parse_string(value, ln)?,
                    "vary" => st.vary = parse_string(value, ln)?,
                    "fields" => st.fields = parse_inline_table(value, ln)?,
                    other => return Err(err(ln, format!("unknown stage key `{other}`"))),
                },
            }
        }
        Ok(Topology {
            name: if name.is_empty() {
                "pipeline".to_string()
            } else {
                name
            },
            stages,
            stage_lines,
        })
    }

    /// Parses the one-line chain shorthand `accel[:queue]>accel[:queue]…`
    /// with per-accelerator default workload templates.
    pub fn parse_chain(chain: &str) -> Result<Topology, CoreError> {
        let mut stages = Vec::new();
        for part in chain.split('>') {
            let part = part.trim();
            if part.is_empty() {
                return Err(CoreError::Artifact(format!(
                    "empty stage in chain `{chain}`"
                )));
            }
            let (accel, queue) = match part.rsplit_once(':') {
                Some((a, q)) => {
                    let depth = q.trim().parse::<usize>().map_err(|_| {
                        CoreError::Artifact(format!("bad queue depth `{q}` in chain `{chain}`"))
                    })?;
                    if depth == 0 {
                        return Err(CoreError::Artifact(format!(
                            "queue depth must be ≥ 1 in chain `{chain}`"
                        )));
                    }
                    (a.trim().to_string(), depth)
                }
                None => (part.to_string(), DEFAULT_QUEUE),
            };
            stages.push(StageCfg {
                accel,
                queue,
                ..StageCfg::blank()
            });
        }
        let stage_lines = vec![0; stages.len()];
        let mut t = Topology {
            name: chain.trim().to_string(),
            stages,
            stage_lines,
        };
        t.finish()?;
        Ok(t)
    }

    /// Fills defaults (instance names, workload templates, queue
    /// depths) and validates the result.
    pub(crate) fn finish(&mut self) -> Result<(), CoreError> {
        if self.stages.is_empty() {
            return Err(CoreError::Artifact(
                "topology has no stages (need at least one [[stage]])".to_string(),
            ));
        }
        for (i, st) in self.stages.iter_mut().enumerate() {
            if st.accel.is_empty() {
                return Err(CoreError::Artifact(format!("stage {i} has no `accel` key")));
            }
            if st.instance.is_empty() {
                st.instance = format!("s{i}_{}", st.accel.replace('-', "_"));
            }
            if st.queue == 0 {
                st.queue = DEFAULT_QUEUE;
            }
            if st.kind.is_empty() {
                let (kind, fields) = default_template(&st.accel).ok_or_else(|| {
                    CoreError::Artifact(format!(
                        "stage `{}`: no default workload template for accelerator `{}`; \
                         set `kind` and `fields` explicitly",
                        st.instance, st.accel
                    ))
                })?;
                st.kind = kind.to_string();
                if st.fields.is_empty() {
                    st.fields = fields;
                }
            }
            if st.vary.is_empty() {
                st.vary = "seed".to_string();
            }
        }
        self.validate()
    }

    /// Structural checks: non-empty, unique instance names, sane queue
    /// depths. Backend-dependent checks (does the accelerator accept
    /// this spec kind?) happen in `Composite::new`, which has the
    /// backends in hand.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.stages.is_empty() {
            return Err(CoreError::Artifact("topology has no stages".to_string()));
        }
        for (i, st) in self.stages.iter().enumerate() {
            if st.queue == 0 {
                return Err(CoreError::Artifact(format!(
                    "stage `{}` has queue depth 0",
                    st.instance
                )));
            }
            for other in &self.stages[..i] {
                if other.instance == st.instance {
                    return Err(CoreError::Artifact(format!(
                        "duplicate instance name `{}`",
                        st.instance
                    )));
                }
            }
        }
        Ok(())
    }

    /// The canonical one-line label: `accel:queue>accel:queue…`. Used
    /// to tag benchmark rows and service answers by topology.
    pub fn chain_label(&self) -> String {
        self.stages
            .iter()
            .map(|s| format!("{}:{}", s.accel, s.queue))
            .collect::<Vec<_>>()
            .join(">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_round_trips_and_defaults() {
        let t = Topology::parse_chain("jpeg-decoder:4>protoacc:8").unwrap();
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].instance, "s0_jpeg_decoder");
        assert_eq!(t.stages[0].kind, "random");
        assert_eq!(t.stages[1].queue, 8);
        assert_eq!(t.stages[1].kind, "format");
        assert_eq!(t.chain_label(), "jpeg-decoder:4>protoacc:8");

        // No queue → default depth.
        let d = Topology::parse_chain("vta>bitcoin-miner").unwrap();
        assert_eq!(d.stages[0].queue, DEFAULT_QUEUE);
        assert_eq!(d.stages[1].kind, "scan");
    }

    #[test]
    fn chain_rejects_malformed_input() {
        assert!(Topology::parse_chain("").is_err());
        assert!(Topology::parse_chain("jpeg-decoder>>vta").is_err());
        assert!(Topology::parse_chain("jpeg-decoder:zero").is_err());
        assert!(Topology::parse_chain("jpeg-decoder:0").is_err());
        // Unknown accelerator has no template.
        assert!(Topology::parse_chain("warp-drive:4").is_err());
    }

    #[test]
    fn toml_full_form_parses() {
        let t = Topology::parse_toml(
            r#"
            # A decode -> serialize SoC pipeline.
            name = "decode-serialize"

            [[stage]]
            instance = "decode"
            accel = "jpeg-decoder"
            queue = 2
            kind = "random"
            fields = { seed = 7 }

            [[stage]]
            accel = "protoacc"
            queue = 8
            vary = "seed"
            "#,
        )
        .unwrap();
        assert_eq!(t.name, "decode-serialize");
        assert_eq!(t.stages[0].instance, "decode");
        assert_eq!(t.stages[0].fields, vec![("seed".to_string(), 7.0)]);
        assert_eq!(t.stages[1].instance, "s1_protoacc");
        assert_eq!(t.stages[1].kind, "format");
    }

    #[test]
    fn toml_errors_carry_line_numbers() {
        let e = Topology::parse_toml("name = \"x\"\nbogus = 3\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(Topology::parse_toml("[[stage]]\nqueue = 0\n").is_err());
        assert!(Topology::parse_toml("[widget]\n").is_err());
        assert!(Topology::parse_toml("[[stage]]\naccel = unquoted\n").is_err());
        assert!(Topology::parse_toml("").is_err());
        // Duplicate instance names are rejected.
        let dup = "[[stage]]\naccel = \"vta\"\ninstance = \"x\"\n\
                   [[stage]]\naccel = \"vta\"\ninstance = \"x\"\n";
        assert!(Topology::parse_toml(dup).is_err());
    }

    #[test]
    fn comments_respect_strings() {
        let t = Topology::parse_toml(
            "name = \"has#hash\" # trailing\n[[stage]]\naccel = \"vta\" # here too\n",
        )
        .unwrap();
        assert_eq!(t.name, "has#hash");
        assert_eq!(t.stages[0].accel, "vta");
    }
}
