//! Pipeline topology configs.
//!
//! A [`Topology`] names a DAG of accelerator instances with bounded
//! inter-stage queues. It can be written two ways:
//!
//! * a TOML document ([`Topology::parse_toml`]) — the config format the
//!   `repro --compose` driver and service accept from files. Stages are
//!   `[[stage]]` tables; the edge graph is `[[edge]]` tables naming
//!   `from`/`to` instances, with a fan-out `policy` of `"round-robin"`
//!   (each item takes one out-edge, in item order) or `"broadcast"`
//!   (every item is copied onto every out-edge). A config with no
//!   `[[edge]]` tables is implicitly the chain of its stages in
//!   declaration order — the PR 7 format keeps parsing unchanged.
//! * a one-line chain ([`Topology::parse_chain`]) like
//!   `"jpeg-decoder:4>protoacc:8"` — the shorthand used in service
//!   requests (`pipe:<chain>`) and benchmark row tags. Parallel groups
//!   are parenthesized, `(a:2|b:2)`, and connect all-to-all with their
//!   neighbor segments under round-robin; `accel*R:q` replicates a
//!   stage's server `R` ways. Broadcast fan-out needs the TOML form.
//!
//! The TOML dialect is deliberately tiny (the build has no TOML crate):
//! top-level `key = "value"` pairs, `[[stage]]`/`[[edge]]`
//! array-of-table headers, inline numeric tables for `fields`, and `#`
//! comments. Anything else is a parse error with a line number.
//!
//! ```
//! use perf_compose::Topology;
//!
//! let t = Topology::parse_toml(r#"
//!     name = "decode-serialize"
//!     [[stage]]
//!     accel = "jpeg-decoder"
//!     queue = 4
//!     [[stage]]
//!     accel = "protoacc"
//!     queue = 8
//! "#).unwrap();
//! assert_eq!(t.chain_label(), "jpeg-decoder:4>protoacc:8");
//! let shorthand = Topology::parse_chain("jpeg-decoder:4>protoacc:8").unwrap();
//! assert_eq!(t.stages, shorthand.stages); // names differ, stages agree
//! ```

use perf_core::CoreError;

/// Default inter-stage queue depth when a stage does not specify one.
pub const DEFAULT_QUEUE: usize = 4;

/// Hard ceiling on stream length accepted by composite models; keeps a
/// malicious `items` field from wedging the service worker.
pub const MAX_ITEMS: usize = 4096;

/// Hard ceiling on per-stage server replication.
pub const MAX_REPLICAS: usize = 64;

/// How a stage with several out-edges distributes finished items.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Each item leaves on exactly one out-edge, rotating through the
    /// edges in item order (deterministic, item-affine: all copies of
    /// one item take the same edge).
    RoundRobin,
    /// Every item is copied onto every out-edge; copies are
    /// independent items downstream.
    Broadcast,
}

impl Policy {
    /// The config-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round-robin",
            Policy::Broadcast => "broadcast",
        }
    }
}

/// One accelerator instance in a pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct StageCfg {
    /// Unique instance name; becomes the stage's Petri component name
    /// and place-name prefix. Derived from the accelerator when unset.
    pub instance: String,
    /// Accelerator model: one of the shipped backends
    /// (`jpeg-decoder`, `bitcoin-miner`, `protoacc`, `vta`).
    pub accel: String,
    /// Depth of the bounded queue feeding this stage. For the source
    /// stage this is the pipeline's input-queue capacity; elsewhere it
    /// is the inter-stage buffer that carries backpressure upstream.
    pub queue: usize,
    /// Number of parallel servers this stage runs (≥ 1, default 1):
    /// the Petri transition's `servers` count, and `replicas`
    /// concurrent servers in the ground-truth simulator.
    pub replicas: usize,
    /// Per-item workload-spec kind submitted to this stage's backend;
    /// defaults to an accelerator-specific template.
    pub kind: String,
    /// Fixed spec fields (the template's knobs).
    pub fields: Vec<(String, f64)>,
    /// Name of the field varied per stream item (default `"seed"`), so
    /// a stream exercises data-dependent behavior instead of replaying
    /// one workload.
    pub vary: String,
}

impl StageCfg {
    fn blank() -> StageCfg {
        StageCfg {
            instance: String::new(),
            accel: String::new(),
            queue: 0,
            replicas: 0,
            kind: String::new(),
            fields: Vec::new(),
            vary: String::new(),
        }
    }
}

/// One directed edge of the topology's stage graph.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeCfg {
    /// Producer instance name.
    pub from: String,
    /// Consumer instance name.
    pub to: String,
    /// Declared fan-out policy of the producer. `None` means "not
    /// declared" and resolves to round-robin; all out-edges of one
    /// producer must agree on the resolved policy.
    pub policy: Option<Policy>,
    /// 1-based source line of the `[[edge]]` stanza (0 when synthetic:
    /// chain shorthand or implicit chain edges).
    pub line: usize,
}

/// A structural problem in the topology's edge graph, shared between
/// hard validation ([`Topology::validate`]) and the topology linter
/// (`PC006`/`PC007`/`PC008` with stanza line numbers).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum GraphIssue {
    /// An edge endpoint names no stage instance.
    UnknownEndpoint { edge: usize, name: String },
    /// The same `from`→`to` pair appears twice.
    DuplicateEdge { edge: usize },
    /// An edge from a stage to itself (the smallest cycle).
    SelfLoop { edge: usize },
    /// The edge graph has a directed cycle through these stages.
    Cycle { stages: Vec<String> },
    /// No stage is free of in-edges: nowhere to inject the stream.
    NoSource,
    /// More than one stage has no in-edges; a pipeline has exactly one
    /// injection point.
    MultiSource { stages: Vec<String> },
    /// The stage cannot be reached from the source (orphans included).
    Unreachable { stage: usize },
    /// The stage's out-edges declare conflicting fan-out policies.
    PolicyMismatch { stage: usize },
}

impl GraphIssue {
    /// Renders the issue against its topology (for `validate` errors).
    pub(crate) fn render(&self, topo: &Topology) -> String {
        match self {
            GraphIssue::UnknownEndpoint { edge, name } => {
                format!("edge {edge} references unknown stage instance `{name}`")
            }
            GraphIssue::DuplicateEdge { edge } => {
                let e = &topo.edges[*edge];
                format!("duplicate edge `{}` -> `{}`", e.from, e.to)
            }
            GraphIssue::SelfLoop { edge } => {
                format!("edge `{0}` -> `{0}` is a self-loop", topo.edges[*edge].from)
            }
            GraphIssue::Cycle { stages } => format!(
                "edge graph has a cycle through {}",
                stages
                    .iter()
                    .map(|s| format!("`{s}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            GraphIssue::NoSource => {
                "no source stage: every stage has an in-edge, nowhere to inject the stream"
                    .to_string()
            }
            GraphIssue::MultiSource { stages } => format!(
                "multiple source stages ({}): a pipeline has exactly one injection point",
                stages
                    .iter()
                    .map(|s| format!("`{s}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            GraphIssue::Unreachable { stage } => format!(
                "stage `{}` is unreachable from the pipeline source",
                topo.stages[*stage].instance
            ),
            GraphIssue::PolicyMismatch { stage } => format!(
                "stage `{}` declares conflicting fan-out policies on its out-edges",
                topo.stages[*stage].instance
            ),
        }
    }
}

/// A named DAG of accelerator stages.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Pipeline name (reports, net name).
    pub name: String,
    /// Stages in declaration order.
    pub stages: Vec<StageCfg>,
    /// Directed edges of the stage graph, in declaration order — the
    /// order defines each producer's out-edge slots (round-robin
    /// rotation) and each consumer's in-edge slots (merge interleave).
    pub edges: Vec<EdgeCfg>,
    /// 1-based source line of each `[[stage]]` header, parallel to
    /// `stages`. Zero for stages that were not parsed from TOML (the
    /// chain shorthand has no line structure), so topology lints can
    /// point at the offending stanza when one exists.
    pub stage_lines: Vec<usize>,
}

/// The per-accelerator default workload template: spec kind, fixed
/// fields, and which field to vary per item. Chosen so per-item cost is
/// data-dependent but bounded (e.g. the bitcoin stage scans a fixed
/// nonce window instead of mining to an unbounded first hit).
pub(crate) fn default_template(accel: &str) -> Option<(&'static str, Vec<(String, f64)>)> {
    let f = |pairs: &[(&str, f64)]| {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v))
            .collect::<Vec<_>>()
    };
    match accel {
        "jpeg-decoder" => Some(("random", f(&[("seed", 1.0)]))),
        "bitcoin-miner" => Some((
            "scan",
            f(&[
                ("loop", 4.0),
                ("seed", 1.0),
                ("nonce_count", 12.0),
                ("difficulty", 16.0),
            ]),
        )),
        "protoacc" => Some(("format", f(&[("idx", 1.0), ("n", 6.0), ("seed", 1.0)]))),
        "vta" => Some(("random", f(&[("seed", 1.0), ("max_blocks", 6.0)]))),
        _ => None,
    }
}

fn err(line: usize, msg: impl std::fmt::Display) -> CoreError {
    CoreError::Artifact(format!("topology line {}: {msg}", line + 1))
}

/// Cuts a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, CoreError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(err(line, format!("expected a quoted string, got `{v}`")))
    }
}

fn parse_number(value: &str, line: usize) -> Result<f64, CoreError> {
    let v = value.trim();
    v.parse::<f64>()
        .map_err(|_| err(line, format!("expected a number, got `{v}`")))
}

/// Parses a strictly integral count in `lo..=hi`. Fractional values
/// are rejected rather than truncated: `queue = 2.9` used to silently
/// become a depth-2 queue, changing the model behind the user's back.
fn parse_count(
    value: &str,
    line: usize,
    what: &str,
    lo: usize,
    hi: usize,
) -> Result<usize, CoreError> {
    let q = parse_number(value, line)?;
    if !q.is_finite() || q.fract() != 0.0 {
        return Err(err(
            line,
            format!("{what} must be an integer, got {}", value.trim()),
        ));
    }
    if q < lo as f64 || q > hi as f64 {
        return Err(err(line, format!("{what} must be in {lo}..={hi}, got {q}")));
    }
    Ok(q as usize)
}

fn parse_policy(value: &str, line: usize) -> Result<Policy, CoreError> {
    match parse_string(value, line)?.as_str() {
        "round-robin" => Ok(Policy::RoundRobin),
        "broadcast" => Ok(Policy::Broadcast),
        other => Err(err(
            line,
            format!("unknown edge policy `{other}` (have: round-robin, broadcast)"),
        )),
    }
}

/// Parses `{ k = 1, j = 2.5 }` (numbers only).
fn parse_inline_table(value: &str, line: usize) -> Result<Vec<(String, f64)>, CoreError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| {
            err(
                line,
                format!("expected an inline table `{{ k = v }}`, got `{v}`"),
            )
        })?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, val) = part.split_once('=').ok_or_else(|| {
            err(
                line,
                format!("expected `key = number` in table, got `{part}`"),
            )
        })?;
        out.push((k.trim().to_string(), parse_number(val, line)?));
    }
    Ok(out)
}

/// Which array-of-tables stanza the parser is inside.
enum Section {
    Top,
    Stage,
    Edge,
}

impl Topology {
    /// Parses the mini-TOML config format (see module docs).
    pub fn parse_toml(src: &str) -> Result<Topology, CoreError> {
        let mut t = Topology::parse_toml_raw(src)?;
        t.finish()?;
        Ok(t)
    }

    /// Parses the TOML without filling defaults or validating: the
    /// topology linter uses this so it can diagnose unknown
    /// accelerators, template mismatches and broken edge graphs (which
    /// `finish` would reject outright) with stanza line numbers.
    pub(crate) fn parse_toml_raw(src: &str) -> Result<Topology, CoreError> {
        let mut name = String::new();
        let mut stages: Vec<StageCfg> = Vec::new();
        let mut edges: Vec<EdgeCfg> = Vec::new();
        let mut stage_lines: Vec<usize> = Vec::new();
        let mut section = Section::Top;
        for (ln, raw) in src.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[stage]]" {
                stages.push(StageCfg::blank());
                stage_lines.push(ln + 1);
                section = Section::Stage;
                continue;
            }
            if line == "[[edge]]" {
                edges.push(EdgeCfg {
                    from: String::new(),
                    to: String::new(),
                    policy: None,
                    line: ln + 1,
                });
                section = Section::Edge;
                continue;
            }
            if line.starts_with('[') {
                return Err(err(
                    ln,
                    format!("unknown table `{line}`; only [[stage]] and [[edge]]"),
                ));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(ln, "expected `key = value`"))?;
            let key = key.trim();
            match section {
                Section::Top => match key {
                    "name" => name = parse_string(value, ln)?,
                    other => {
                        return Err(err(
                            ln,
                            format!("unknown top-level key `{other}` (before any [[stage]])"),
                        ))
                    }
                },
                Section::Stage => {
                    let st = stages.last_mut().expect("in a [[stage]] stanza");
                    match key {
                        "instance" => st.instance = parse_string(value, ln)?,
                        "accel" => st.accel = parse_string(value, ln)?,
                        "queue" => st.queue = parse_count(value, ln, "queue depth", 1, 65536)?,
                        "replicas" => {
                            st.replicas = parse_count(value, ln, "replicas", 1, MAX_REPLICAS)?
                        }
                        "kind" => st.kind = parse_string(value, ln)?,
                        "vary" => st.vary = parse_string(value, ln)?,
                        "fields" => st.fields = parse_inline_table(value, ln)?,
                        other => return Err(err(ln, format!("unknown stage key `{other}`"))),
                    }
                }
                Section::Edge => {
                    let e = edges.last_mut().expect("in an [[edge]] stanza");
                    match key {
                        "from" => e.from = parse_string(value, ln)?,
                        "to" => e.to = parse_string(value, ln)?,
                        "policy" => e.policy = Some(parse_policy(value, ln)?),
                        other => return Err(err(ln, format!("unknown edge key `{other}`"))),
                    }
                }
            }
        }
        for e in &edges {
            if e.from.is_empty() || e.to.is_empty() {
                return Err(err(
                    e.line.saturating_sub(1),
                    "edge needs both `from` and `to` instance names",
                ));
            }
        }
        Ok(Topology {
            name: if name.is_empty() {
                "pipeline".to_string()
            } else {
                name
            },
            stages,
            edges,
            stage_lines,
        })
    }

    /// Parses the one-line chain shorthand: `>`-separated segments,
    /// each a stage `accel[*replicas][:queue]` or a parallel group
    /// `(stage|stage|…)`. Consecutive segments connect all-to-all with
    /// round-robin fan-out; per-accelerator default workload templates
    /// fill the stage configs.
    pub fn parse_chain(chain: &str) -> Result<Topology, CoreError> {
        let bad = |msg: String| CoreError::Artifact(format!("{msg} in chain `{chain}`"));
        let mut stages: Vec<StageCfg> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for part in chain.split('>') {
            let part = part.trim();
            if part.is_empty() {
                return Err(bad("empty stage".to_string()));
            }
            let members: Vec<&str> = match part.strip_prefix('(') {
                Some(rest) => match rest.strip_suffix(')') {
                    Some(inner) => inner.split('|').collect(),
                    None => return Err(bad(format!("unclosed parallel group `{part}`"))),
                },
                None if part.contains('|') || part.contains(')') => {
                    return Err(bad(format!("malformed parallel group `{part}`")))
                }
                None => vec![part],
            };
            let mut group = Vec::new();
            for m in members {
                let m = m.trim();
                if m.is_empty() {
                    return Err(bad("empty stage in parallel group".to_string()));
                }
                let (head, queue) = match m.rsplit_once(':') {
                    Some((a, q)) => {
                        let depth = q
                            .trim()
                            .parse::<usize>()
                            .map_err(|_| bad(format!("bad queue depth `{q}`")))?;
                        if depth == 0 {
                            return Err(bad("queue depth must be ≥ 1".to_string()));
                        }
                        (a.trim(), depth)
                    }
                    None => (m, DEFAULT_QUEUE),
                };
                let (accel, replicas) = match head.split_once('*') {
                    Some((a, r)) => {
                        let r = r
                            .trim()
                            .parse::<usize>()
                            .map_err(|_| bad(format!("bad replica count `{r}`")))?;
                        if !(1..=MAX_REPLICAS).contains(&r) {
                            return Err(bad(format!("replicas must be in 1..={MAX_REPLICAS}")));
                        }
                        (a.trim(), r)
                    }
                    None => (head, 1),
                };
                let idx = stages.len();
                stages.push(StageCfg {
                    instance: format!("s{idx}_{}", accel.replace('-', "_")),
                    accel: accel.to_string(),
                    queue,
                    replicas,
                    ..StageCfg::blank()
                });
                group.push(idx);
            }
            groups.push(group);
        }
        if groups.len() == 1 && groups[0].len() > 1 {
            return Err(bad(
                "a parallel group needs an upstream or downstream segment".to_string(),
            ));
        }
        let mut edges = Vec::new();
        for w in groups.windows(2) {
            for &u in &w[0] {
                for &v in &w[1] {
                    edges.push(EdgeCfg {
                        from: stages[u].instance.clone(),
                        to: stages[v].instance.clone(),
                        policy: None,
                        line: 0,
                    });
                }
            }
        }
        let stage_lines = vec![0; stages.len()];
        let mut t = Topology {
            name: chain.trim().to_string(),
            stages,
            edges,
            stage_lines,
        };
        t.finish()?;
        Ok(t)
    }

    /// Fills defaults (instance names, workload templates, queue
    /// depths, implicit chain edges) without graph validation. The
    /// linter uses this directly so broken edge graphs surface as
    /// structured diagnostics instead of one opaque error.
    pub(crate) fn fill_defaults(&mut self) -> Result<(), CoreError> {
        if self.stages.is_empty() {
            return Err(CoreError::Artifact(
                "topology has no stages (need at least one [[stage]])".to_string(),
            ));
        }
        for (i, st) in self.stages.iter_mut().enumerate() {
            if st.accel.is_empty() {
                return Err(CoreError::Artifact(format!("stage {i} has no `accel` key")));
            }
            if st.instance.is_empty() {
                st.instance = format!("s{i}_{}", st.accel.replace('-', "_"));
            }
            if st.queue == 0 {
                st.queue = DEFAULT_QUEUE;
            }
            if st.replicas == 0 {
                st.replicas = 1;
            }
            if st.kind.is_empty() {
                let (kind, fields) = default_template(&st.accel).ok_or_else(|| {
                    CoreError::Artifact(format!(
                        "stage `{}`: no default workload template for accelerator `{}`; \
                         set `kind` and `fields` explicitly",
                        st.instance, st.accel
                    ))
                })?;
                st.kind = kind.to_string();
                if st.fields.is_empty() {
                    st.fields = fields;
                }
            }
            if st.vary.is_empty() {
                st.vary = "seed".to_string();
            }
        }
        if self.edges.is_empty() && self.stages.len() > 1 {
            // No [[edge]] tables: the stages chain in declaration
            // order, which is exactly the PR 7 linear format.
            self.edges = self
                .stages
                .windows(2)
                .map(|w| EdgeCfg {
                    from: w[0].instance.clone(),
                    to: w[1].instance.clone(),
                    policy: None,
                    line: 0,
                })
                .collect();
        }
        Ok(())
    }

    /// Fills defaults and validates the result.
    pub(crate) fn finish(&mut self) -> Result<(), CoreError> {
        self.fill_defaults()?;
        self.validate()
    }

    /// Structural checks: non-empty, unique instance names, sane queue
    /// depths and replica counts, and a well-formed edge graph (known
    /// endpoints, acyclic, one source, every stage reachable, uniform
    /// fan-out policies). Backend-dependent checks (does the
    /// accelerator accept this spec kind?) happen in `Composite::new`,
    /// which has the backends in hand.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.stages.is_empty() {
            return Err(CoreError::Artifact("topology has no stages".to_string()));
        }
        for (i, st) in self.stages.iter().enumerate() {
            if st.queue == 0 {
                return Err(CoreError::Artifact(format!(
                    "stage `{}` has queue depth 0",
                    st.instance
                )));
            }
            if !(1..=MAX_REPLICAS).contains(&st.replicas) {
                return Err(CoreError::Artifact(format!(
                    "stage `{}` has {} replicas (must be 1..={MAX_REPLICAS})",
                    st.instance, st.replicas
                )));
            }
            for other in &self.stages[..i] {
                if other.instance == st.instance {
                    return Err(CoreError::Artifact(format!(
                        "duplicate instance name `{}`",
                        st.instance
                    )));
                }
            }
        }
        if let Some(issue) = self.graph_issues().into_iter().next() {
            return Err(CoreError::Artifact(format!(
                "topology `{}`: {}",
                self.name,
                issue.render(self)
            )));
        }
        Ok(())
    }

    /// The index of the stage instance named `name`.
    pub fn stage_index(&self, name: &str) -> Option<usize> {
        self.stages.iter().position(|s| s.instance == name)
    }

    /// Indices of this stage's out-edges, in edge-declaration order —
    /// the order that defines round-robin rotation slots and the
    /// `out<slot>` Petri place numbering.
    pub fn out_edges(&self, stage: usize) -> Vec<usize> {
        let name = &self.stages[stage].instance;
        (0..self.edges.len())
            .filter(|&e| &self.edges[e].from == name)
            .collect()
    }

    /// Indices of this stage's in-edges, in edge-declaration order —
    /// the order that defines the merge interleave and the `in<slot>`
    /// Petri place numbering.
    pub fn in_edges(&self, stage: usize) -> Vec<usize> {
        let name = &self.stages[stage].instance;
        (0..self.edges.len())
            .filter(|&e| &self.edges[e].to == name)
            .collect()
    }

    /// The resolved fan-out policy of a stage: the policy its
    /// out-edges declare, defaulting to round-robin. Only meaningful
    /// after validation (which rejects mixed declarations).
    pub fn policy_of(&self, stage: usize) -> Policy {
        self.out_edges(stage)
            .into_iter()
            .find_map(|e| self.edges[e].policy)
            .unwrap_or(Policy::RoundRobin)
    }

    /// The unique source stage (no in-edges). Only meaningful after
    /// validation; defaults to stage 0 if the graph is broken.
    pub fn source(&self) -> usize {
        (0..self.stages.len())
            .find(|&i| self.in_edges(i).is_empty())
            .unwrap_or(0)
    }

    /// Stage indices in a topological order of the edge graph
    /// (smallest-index-first among ready stages, so the order is
    /// deterministic). Only meaningful after validation; on a cyclic
    /// graph the trapped stages are appended in index order.
    pub fn topo_order(&self) -> Vec<usize> {
        let k = self.stages.len();
        let mut indeg: Vec<usize> = (0..k).map(|i| self.in_edges(i).len()).collect();
        let mut order = Vec::with_capacity(k);
        let mut placed = vec![false; k];
        while let Some(u) = (0..k).find(|&i| !placed[i] && indeg[i] == 0) {
            placed[u] = true;
            order.push(u);
            for e in self.out_edges(u) {
                if let Some(v) = self.stage_index(&self.edges[e].to) {
                    indeg[v] = indeg[v].saturating_sub(1);
                }
            }
        }
        for (i, &p) in placed.iter().enumerate() {
            if !p {
                order.push(i);
            }
        }
        order
    }

    /// Whether this topology is the plain linear chain the PR 7 model
    /// paths were built for: the edges run through the stages in
    /// declaration order and no stage is replicated. Chain topologies
    /// keep the original single-pipeline simulation and recurrence
    /// code paths bit-for-bit.
    pub fn is_chain(&self) -> bool {
        let k = self.stages.len();
        if self.stages.iter().any(|s| s.replicas > 1) {
            return false;
        }
        if self.edges.len() + 1 != k {
            return k == 1 && self.edges.is_empty();
        }
        self.edges
            .iter()
            .enumerate()
            .all(|(i, e)| e.from == self.stages[i].instance && e.to == self.stages[i + 1].instance)
    }

    /// All structural problems with the edge graph (shared by
    /// `validate` and the `PC006`/`PC007`/`PC008` lints).
    pub(crate) fn graph_issues(&self) -> Vec<GraphIssue> {
        let mut issues = Vec::new();
        let k = self.stages.len();
        // Endpoint resolution, duplicates, self-loops.
        let mut resolved: Vec<Option<(usize, usize)>> = Vec::with_capacity(self.edges.len());
        for (ei, e) in self.edges.iter().enumerate() {
            let from = self.stage_index(&e.from);
            let to = self.stage_index(&e.to);
            if from.is_none() {
                issues.push(GraphIssue::UnknownEndpoint {
                    edge: ei,
                    name: e.from.clone(),
                });
            }
            if to.is_none() {
                issues.push(GraphIssue::UnknownEndpoint {
                    edge: ei,
                    name: e.to.clone(),
                });
            }
            let pair = match (from, to) {
                (Some(f), Some(t)) => Some((f, t)),
                _ => None,
            };
            if let Some((f, t)) = pair {
                if f == t {
                    issues.push(GraphIssue::SelfLoop { edge: ei });
                } else if resolved
                    .iter()
                    .flatten()
                    .any(|&(pf, pt)| pf == f && pt == t)
                {
                    issues.push(GraphIssue::DuplicateEdge { edge: ei });
                }
            }
            resolved.push(pair);
        }
        let edges: Vec<(usize, usize)> = resolved.iter().flatten().copied().collect();
        // Cycle detection (Kahn) over the resolvable part of the graph.
        let mut indeg = vec![0usize; k];
        for &(_, t) in &edges {
            indeg[t] += 1;
        }
        let mut placed = vec![false; k];
        let mut deg = indeg.clone();
        let mut done = 0;
        while let Some(u) = (0..k).find(|&i| !placed[i] && deg[i] == 0) {
            placed[u] = true;
            done += 1;
            for &(f, t) in &edges {
                if f == u {
                    deg[t] = deg[t].saturating_sub(1);
                }
            }
        }
        if done < k {
            let trapped: Vec<String> = (0..k)
                .filter(|&i| !placed[i])
                .map(|i| self.stages[i].instance.clone())
                .collect();
            issues.push(GraphIssue::Cycle { stages: trapped });
        }
        // Source multiplicity (skip when edges failed to resolve: the
        // spurious extra sources would just be noise).
        if resolved.iter().all(Option::is_some) {
            let sources: Vec<usize> = (0..k).filter(|&i| indeg[i] == 0).collect();
            match sources.len() {
                0 => issues.push(GraphIssue::NoSource),
                1 => {
                    // Reachability from the unique source.
                    let mut seen = vec![false; k];
                    let mut stack = vec![sources[0]];
                    while let Some(u) = stack.pop() {
                        if std::mem::replace(&mut seen[u], true) {
                            continue;
                        }
                        for &(f, t) in &edges {
                            if f == u && !seen[t] {
                                stack.push(t);
                            }
                        }
                    }
                    for (i, s) in seen.iter().enumerate() {
                        if !s {
                            issues.push(GraphIssue::Unreachable { stage: i });
                        }
                    }
                }
                _ => issues.push(GraphIssue::MultiSource {
                    stages: sources
                        .iter()
                        .map(|&i| self.stages[i].instance.clone())
                        .collect(),
                }),
            }
        }
        // Fan-out policy uniformity: undeclared edges inherit the
        // producer's declared policy, so a conflict is exactly two
        // *declared* policies that disagree.
        for u in 0..k {
            let declared: Vec<Policy> = self
                .out_edges(u)
                .into_iter()
                .filter_map(|e| self.edges[e].policy)
                .collect();
            if declared.windows(2).any(|w| w[0] != w[1]) {
                issues.push(GraphIssue::PolicyMismatch { stage: u });
            }
        }
        issues
    }

    /// The canonical one-line label: `accel:queue>…` for chains, with
    /// parallel groups rendered `(a:q|b:q)` and replicated stages
    /// `accel*R:q` when the DAG is layered (each layer fans out
    /// all-to-all, round-robin, into the next). Non-layered shapes —
    /// broadcast fan-out, skip edges — fall back to `dag:<name>`.
    /// Layered labels round-trip through [`Topology::parse_chain`].
    pub fn chain_label(&self) -> String {
        match self.layers() {
            Some(layers) => layers
                .iter()
                .map(|layer| {
                    let items: Vec<String> = layer
                        .iter()
                        .map(|&i| {
                            let s = &self.stages[i];
                            if s.replicas > 1 {
                                format!("{}*{}:{}", s.accel, s.replicas, s.queue)
                            } else {
                                format!("{}:{}", s.accel, s.queue)
                            }
                        })
                        .collect();
                    if items.len() == 1 {
                        items.into_iter().next().expect("one item")
                    } else {
                        format!("({})", items.join("|"))
                    }
                })
                .collect::<Vec<_>>()
                .join(">"),
            None => format!("dag:{}", self.name),
        }
    }

    /// Decomposes a layered DAG into its layers: layer 0 is the
    /// source; every stage in layer `l` must have round-robin
    /// out-edges to exactly the stages of layer `l+1`, whose in-edges
    /// come exactly from layer `l`. `None` for any other shape.
    fn layers(&self) -> Option<Vec<Vec<usize>>> {
        if self.stages.len() == 1 && self.edges.is_empty() {
            return Some(vec![vec![0]]);
        }
        let sources: Vec<usize> = (0..self.stages.len())
            .filter(|&i| self.in_edges(i).is_empty())
            .collect();
        let [source] = sources[..] else {
            return None;
        };
        let mut layers = vec![vec![source]];
        let mut covered = 1;
        loop {
            let cur = layers.last().expect("non-empty");
            let targets_of = |u: usize| -> Option<Vec<usize>> {
                self.out_edges(u)
                    .into_iter()
                    .map(|e| self.stage_index(&self.edges[e].to))
                    .collect()
            };
            let next = targets_of(cur[0])?;
            if next.is_empty() {
                // Every member of the last layer must be terminal.
                if cur.iter().any(|&u| !self.out_edges(u).is_empty()) {
                    return None;
                }
                break;
            }
            for &u in cur {
                if targets_of(u)? != next {
                    return None;
                }
                if self.out_edges(u).len() > 1 && self.policy_of(u) != Policy::RoundRobin {
                    return None;
                }
            }
            let mut sorted_cur = cur.clone();
            sorted_cur.sort_unstable();
            for &v in &next {
                let mut froms: Vec<usize> = self
                    .in_edges(v)
                    .into_iter()
                    .map(|e| self.stage_index(&self.edges[e].from))
                    .collect::<Option<Vec<usize>>>()?;
                froms.sort_unstable();
                if froms != sorted_cur {
                    return None;
                }
            }
            covered += next.len();
            layers.push(next);
            if layers.len() > self.stages.len() {
                return None; // cycle guard; validate rejects these anyway
            }
        }
        (covered == self.stages.len()).then_some(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_round_trips_and_defaults() {
        let t = Topology::parse_chain("jpeg-decoder:4>protoacc:8").unwrap();
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].instance, "s0_jpeg_decoder");
        assert_eq!(t.stages[0].kind, "random");
        assert_eq!(t.stages[1].queue, 8);
        assert_eq!(t.stages[1].kind, "format");
        assert_eq!(t.chain_label(), "jpeg-decoder:4>protoacc:8");
        assert!(t.is_chain());
        assert_eq!(t.edges.len(), 1);

        // No queue → default depth.
        let d = Topology::parse_chain("vta>bitcoin-miner").unwrap();
        assert_eq!(d.stages[0].queue, DEFAULT_QUEUE);
        assert_eq!(d.stages[1].kind, "scan");
    }

    #[test]
    fn chain_rejects_malformed_input() {
        assert!(Topology::parse_chain("").is_err());
        assert!(Topology::parse_chain("jpeg-decoder>>vta").is_err());
        assert!(Topology::parse_chain("jpeg-decoder:zero").is_err());
        assert!(Topology::parse_chain("jpeg-decoder:0").is_err());
        // Unknown accelerator has no template.
        assert!(Topology::parse_chain("warp-drive:4").is_err());
        // Malformed groups and replica counts.
        assert!(Topology::parse_chain("vta:2>(protoacc:2|vta:2").is_err());
        assert!(Topology::parse_chain("vta:2>protoacc|vta").is_err());
        assert!(Topology::parse_chain("vta*0:2>protoacc:2").is_err());
        assert!(Topology::parse_chain("vta*big:2>protoacc:2").is_err());
        // A lone parallel group has two sources — not a pipeline.
        assert!(Topology::parse_chain("(vta:2|protoacc:2)").is_err());
    }

    #[test]
    fn chain_groups_build_layered_dags() {
        let t = Topology::parse_chain("vta:2>(protoacc:2|bitcoin-miner:3)>protoacc:4").unwrap();
        assert_eq!(t.stages.len(), 4);
        assert_eq!(t.edges.len(), 4, "1→2 fan-out plus 2→1 fan-in");
        assert!(!t.is_chain());
        assert_eq!(t.source(), 0);
        assert_eq!(t.out_edges(0).len(), 2);
        assert_eq!(t.in_edges(3).len(), 2);
        assert_eq!(t.policy_of(0), Policy::RoundRobin);
        assert_eq!(t.topo_order(), vec![0, 1, 2, 3]);
        // The label round-trips through the parser.
        let label = t.chain_label();
        assert_eq!(label, "vta:2>(protoacc:2|bitcoin-miner:3)>protoacc:4");
        let back = Topology::parse_chain(&label).unwrap();
        assert_eq!(back.chain_label(), label);
    }

    #[test]
    fn chain_replicas_parse_and_label() {
        let t = Topology::parse_chain("vta:2>protoacc*3:4").unwrap();
        assert_eq!(t.stages[1].replicas, 3);
        assert!(!t.is_chain(), "replicated stages leave the chain path");
        assert_eq!(t.chain_label(), "vta:2>protoacc*3:4");
    }

    #[test]
    fn toml_full_form_parses() {
        let t = Topology::parse_toml(
            r#"
            # A decode -> serialize SoC pipeline.
            name = "decode-serialize"

            [[stage]]
            instance = "decode"
            accel = "jpeg-decoder"
            queue = 2
            kind = "random"
            fields = { seed = 7 }

            [[stage]]
            accel = "protoacc"
            queue = 8
            vary = "seed"
            "#,
        )
        .unwrap();
        assert_eq!(t.name, "decode-serialize");
        assert_eq!(t.stages[0].instance, "decode");
        assert_eq!(t.stages[0].fields, vec![("seed".to_string(), 7.0)]);
        assert_eq!(t.stages[1].instance, "s1_protoacc");
        assert_eq!(t.stages[1].kind, "format");
        // No [[edge]] tables → implicit chain.
        assert!(t.is_chain());
        assert_eq!(t.edges.len(), 1);
        assert_eq!(t.edges[0].from, "decode");
    }

    #[test]
    fn toml_edges_build_dags() {
        let t = Topology::parse_toml(
            r#"
            name = "fanout"
            [[stage]]
            instance = "dec"
            accel = "vta"
            [[stage]]
            instance = "a"
            accel = "protoacc"
            [[stage]]
            instance = "b"
            accel = "protoacc"
            [[edge]]
            from = "dec"
            to = "a"
            policy = "broadcast"
            [[edge]]
            from = "dec"
            to = "b"
            policy = "broadcast"
            "#,
        )
        .unwrap();
        assert!(!t.is_chain());
        assert_eq!(t.policy_of(0), Policy::Broadcast);
        assert_eq!(t.out_edges(0), vec![0, 1]);
        assert_eq!(t.edges[0].line, 12, "edge stanzas carry line numbers");
        assert_eq!(t.chain_label(), "dag:fanout", "broadcast has no shorthand");
    }

    #[test]
    fn toml_errors_carry_line_numbers() {
        let e = Topology::parse_toml("name = \"x\"\nbogus = 3\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(Topology::parse_toml("[[stage]]\nqueue = 0\n").is_err());
        assert!(Topology::parse_toml("[widget]\n").is_err());
        assert!(Topology::parse_toml("[[stage]]\naccel = unquoted\n").is_err());
        assert!(Topology::parse_toml("").is_err());
        // Duplicate instance names are rejected.
        let dup = "[[stage]]\naccel = \"vta\"\ninstance = \"x\"\n\
                   [[stage]]\naccel = \"vta\"\ninstance = \"x\"\n";
        assert!(Topology::parse_toml(dup).is_err());
    }

    #[test]
    fn fractional_queue_depth_is_rejected_not_truncated() {
        // `queue = 2.9` used to pass the range check and silently
        // truncate to a depth-2 queue.
        let e = Topology::parse_toml("[[stage]]\naccel = \"vta\"\nqueue = 2.9\n").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("topology line 3"), "{msg}");
        assert!(msg.contains("integer"), "{msg}");
        assert!(msg.contains("2.9"), "{msg}");
        // Same strictness for replicas.
        let e = Topology::parse_toml("[[stage]]\naccel = \"vta\"\nreplicas = 1.5\n").unwrap_err();
        assert!(e.to_string().contains("integer"), "{e}");
        // Integral floats are fine (TOML numbers are all f64 here).
        let t = Topology::parse_toml("[[stage]]\naccel = \"vta\"\nqueue = 3.0\n").unwrap();
        assert_eq!(t.stages[0].queue, 3);
    }

    #[test]
    fn graph_validation_rejects_broken_edge_graphs() {
        let base = "[[stage]]\ninstance = \"a\"\naccel = \"vta\"\n\
                    [[stage]]\ninstance = \"b\"\naccel = \"protoacc\"\n";
        let with = |edges: &str| format!("{base}{edges}");
        // Unknown endpoint.
        let e = Topology::parse_toml(&with("[[edge]]\nfrom = \"a\"\nto = \"nope\"\n")).unwrap_err();
        assert!(e.to_string().contains("nope"), "{e}");
        // Self loop.
        assert!(Topology::parse_toml(&with("[[edge]]\nfrom = \"a\"\nto = \"a\"\n")).is_err());
        // Duplicate edge.
        let dup = "[[edge]]\nfrom = \"a\"\nto = \"b\"\n[[edge]]\nfrom = \"a\"\nto = \"b\"\n";
        assert!(Topology::parse_toml(&with(dup)).is_err());
        // Cycle.
        let cyc = "[[edge]]\nfrom = \"a\"\nto = \"b\"\n[[edge]]\nfrom = \"b\"\nto = \"a\"\n";
        let e = Topology::parse_toml(&with(cyc)).unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");
        // Orphan stage (three stages, edges only touch two): the
        // orphan has no in-edges, so it reads as a second source.
        let three = format!(
            "{base}[[stage]]\ninstance = \"c\"\naccel = \"vta\"\n\
             [[edge]]\nfrom = \"a\"\nto = \"b\"\n"
        );
        let e = Topology::parse_toml(&three).unwrap_err();
        assert!(e.to_string().contains("injection point"), "{e}");
        // A cycle hanging off the reachable part: cycle + unreachable.
        let four = format!(
            "{base}[[stage]]\ninstance = \"c\"\naccel = \"vta\"\n\
             [[stage]]\ninstance = \"d\"\naccel = \"vta\"\n\
             [[edge]]\nfrom = \"a\"\nto = \"b\"\n\
             [[edge]]\nfrom = \"c\"\nto = \"d\"\n\
             [[edge]]\nfrom = \"d\"\nto = \"c\"\n"
        );
        let e = Topology::parse_toml(&four).unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");
        // Policy mismatch on one producer's out-edges.
        let three_mixed = format!(
            "{base}[[stage]]\ninstance = \"c\"\naccel = \"vta\"\n\
             [[edge]]\nfrom = \"a\"\nto = \"b\"\npolicy = \"broadcast\"\n\
             [[edge]]\nfrom = \"a\"\nto = \"c\"\npolicy = \"round-robin\"\n"
        );
        let e = Topology::parse_toml(&three_mixed).unwrap_err();
        assert!(e.to_string().contains("polic"), "{e}");
    }

    #[test]
    fn comments_respect_strings() {
        let t = Topology::parse_toml(
            "name = \"has#hash\" # trailing\n[[stage]]\naccel = \"vta\" # here too\n",
        )
        .unwrap();
        assert_eq!(t.name, "has#hash");
        assert_eq!(t.stages[0].accel, "vta");
    }
}
