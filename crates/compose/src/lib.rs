//! Config-driven composition of accelerator performance models into
//! SoC pipelines.
//!
//! The paper's pitch is that performance interfaces *compose*: if each
//! accelerator ships a formal summary of its performance, the
//! performance of a system built from them should follow from the
//! summaries plus the interconnect — without re-deriving a monolithic
//! model. This crate makes that concrete:
//!
//! 1. [`Topology`] — a tiny TOML config (or a `a:4>b:8` one-liner)
//!    naming accelerator instances, the bounded queues between them,
//!    and — via `[[edge]]` tables or `(a|b)` chain groups — fan-out/
//!    fan-in DAG shapes with round-robin or broadcast distribution and
//!    per-stage server replication.
//! 2. [`Composite`] — realizes a topology twice: a cycle-accurate
//!    system (`crates/sim` FIFO pipeline or DAG pipeline over
//!    per-stage measured costs) as ground truth, and a composite Petri
//!    net built by gluing per-stage component nets through
//!    [`perf_petri::compose`], where shared boundary places carry the
//!    queue capacities and backpressure is structural.
//! 3. [`PipelineBackend`] — the composite as a [`QueryBackend`], so
//!    the query service answers pipeline-level questions
//!    (`pipe:jpeg-decoder:4>protoacc:8`) through the same NL /
//!    program / Petri-net representation ladder as single
//!    accelerators.
//!
//! [`QueryBackend`]: perf_core::query::QueryBackend

#![deny(missing_docs)]

pub mod backend;
pub mod lint;
pub mod model;
pub mod topology;

pub use backend::PipelineBackend;
pub use model::{
    accel_backend, dag_makespan, pipeline_makespan, Composite, DagPlan, Job, StreamParams,
};
pub use topology::{EdgeCfg, Policy, StageCfg, Topology};
