//! Config-driven composition of accelerator performance models into
//! SoC pipelines.
//!
//! The paper's pitch is that performance interfaces *compose*: if each
//! accelerator ships a formal summary of its performance, the
//! performance of a system built from them should follow from the
//! summaries plus the interconnect — without re-deriving a monolithic
//! model. This crate makes that concrete:
//!
//! 1. [`Topology`] — a tiny TOML config (or a `a:4>b:8` one-liner)
//!    naming accelerator instances and the bounded queues between
//!    them.
//! 2. [`Composite`] — realizes a topology twice: a cycle-accurate
//!    chained system (`crates/sim` FIFO pipeline over per-stage
//!    measured costs) as ground truth, and a composite Petri net built
//!    by gluing per-stage component nets through
//!    [`perf_petri::compose`], where shared boundary places carry the
//!    queue capacities and backpressure is structural.
//! 3. [`PipelineBackend`] — the composite as a [`QueryBackend`], so
//!    the query service answers pipeline-level questions
//!    (`pipe:jpeg-decoder:4>protoacc:8`) through the same NL /
//!    program / Petri-net representation ladder as single
//!    accelerators.
//!
//! [`QueryBackend`]: perf_core::query::QueryBackend

#![deny(missing_docs)]

pub mod backend;
pub mod lint;
pub mod model;
pub mod topology;

pub use backend::PipelineBackend;
pub use model::{accel_backend, pipeline_makespan, Composite, StreamParams};
pub use topology::{StageCfg, Topology};
