//! The composite pipeline model.
//!
//! A [`Composite`] realizes a [`Topology`] on both substrates:
//!
//! * **Ground truth** — a cycle-accurate [`perf_sim::Pipeline`] whose
//!   per-stage, per-item cost is the stage accelerator's *measured*
//!   latency for that item's workload, chained through bounded FIFOs.
//!   This is "the SoC": independent accelerator models coupled only by
//!   queues and backpressure.
//! * **Composite Petri net** — per-stage component nets (`in` →
//!   `serve` → `out`) folded through [`perf_petri::compose`], gluing
//!   each stage's `out` sink onto the next stage's bounded `in` place.
//!   The fused place keeps the tighter capacity and loses sink-ness
//!   (only one side is a sink), so backpressure emerges from net
//!   structure rather than per-stage modeling — exactly the fused-place
//!   semantics `compose` guarantees.
//!
//! The Petri, program, and NL tiers all predict from the *stage
//! interfaces* (never from the composite simulator), composing
//! per-stage predictions structurally: the Petri tier runs the
//! composite net, the program tier evaluates a bounded-buffer schedule
//! recurrence, and the NL tier combines closed-form per-stage bounds.

use perf_core::iface::{InterfaceKind, Metric};
use perf_core::query::{EngineChoice, QueryBackend, WorkloadSpec};
use perf_core::units::{Cycles, Throughput};
use perf_core::{CoreError, Observation};
use perf_iface_lang::Value;
use perf_petri::lint::lint;
use perf_petri::{Net, NetBuilder, NetExec, Options, Token};
use perf_sim::{FaultPlan, Pipeline, StageSpec};
use std::collections::HashMap;

use crate::topology::{Topology, MAX_ITEMS};

use accel_bitcoin::interface::service::BitcoinService;
use accel_jpeg::interface::service::JpegService;
use accel_protoacc::interface::service::ProtoaccService;
use accel_vta::interface::service::VtaService;

/// Builds the query backend for one shipped accelerator on an explicit
/// evaluation substrate. This is the canonical constructor table —
/// `perf-service`'s registry delegates here (the dependency points this
/// way so composite backends never need the service crate).
pub fn accel_backend(
    accel: &str,
    engine: EngineChoice,
) -> Result<Box<dyn QueryBackend>, CoreError> {
    match accel {
        "jpeg-decoder" => Ok(Box::new(JpegService::with_engine(engine)?)),
        "bitcoin-miner" => Ok(Box::new(BitcoinService::with_engine(engine))),
        "protoacc" => Ok(Box::new(ProtoaccService::with_engine(engine))),
        "vta" => Ok(Box::new(VtaService::with_engine(engine))),
        other => Err(CoreError::Artifact(format!(
            "unknown accelerator `{other}` (have: jpeg-decoder, bitcoin-miner, protoacc, vta)"
        ))),
    }
}

/// Parameters of one `stream` workload: `items` independent workloads
/// flowing through the pipeline, derived from `seed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamParams {
    /// Number of items pushed through the pipeline.
    pub items: usize,
    /// Base seed; each item and stage derives its own spec from it.
    pub seed: u64,
}

impl StreamParams {
    /// Extracts stream parameters from a `stream` workload spec.
    pub fn from_spec(spec: &WorkloadSpec) -> Result<StreamParams, CoreError> {
        if spec.kind != "stream" {
            return Err(CoreError::Artifact(format!(
                "composite pipelines accept spec kind `stream`, got `{}`",
                spec.kind
            )));
        }
        let items = spec.get_or("items", 8.0);
        if !items.is_finite() || items < 1.0 {
            return Err(CoreError::Artifact(format!(
                "stream `items` must be ≥ 1, got {items}"
            )));
        }
        Ok(StreamParams {
            items: (items as usize).min(MAX_ITEMS),
            seed: spec.get_or("seed", 1.0) as u64,
        })
    }
}

/// Per-item, per-stage cost bounds: `costs[item][stage] = (lo, hi)`.
/// Point predictions collapse to `lo == hi`.
type CostBounds = Vec<Vec<(f64, f64)>>;

/// A topology realized against live accelerator backends.
pub struct Composite {
    topo: Topology,
    engine: EngineChoice,
    backends: Vec<Box<dyn QueryBackend>>,
    /// Fault injection for ground-truth measurement: the plan applies
    /// to one stage of the composite pipeline (`set_fault`).
    fault: Option<(usize, FaultPlan)>,
    /// Predicted cost matrices keyed by (repr, items, seed); per-stage
    /// predictions are deterministic so this never goes stale.
    pred_cache: HashMap<(u8, usize, u64), CostBounds>,
    /// Measured (clean) cost matrices keyed by (items, seed). Faults
    /// are injected at the composite level, not into per-item costs,
    /// so the cache stays valid across `set_fault`.
    meas_cache: HashMap<(usize, u64), Vec<Vec<f64>>>,
}

impl Composite {
    /// Realizes `topo`: constructs each stage's backend and checks the
    /// stage templates against what the backends accept.
    pub fn new(topo: Topology, engine: EngineChoice) -> Result<Composite, CoreError> {
        topo.validate()?;
        let mut backends = Vec::new();
        for st in &topo.stages {
            let b = accel_backend(&st.accel, engine)?;
            if !b.spec_kinds().contains(&st.kind.as_str()) {
                return Err(CoreError::Artifact(format!(
                    "stage `{}`: accelerator `{}` does not accept spec kind `{}` (accepts: {})",
                    st.instance,
                    st.accel,
                    st.kind,
                    b.spec_kinds().join(", ")
                )));
            }
            backends.push(b);
        }
        Ok(Composite {
            topo,
            engine,
            backends,
            fault: None,
            pred_cache: HashMap::new(),
            meas_cache: HashMap::new(),
        })
    }

    /// The realized topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The evaluation substrate the stage backends run on.
    pub fn engine(&self) -> EngineChoice {
        self.engine
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.topo.stages.len()
    }

    /// Arms (or disarms) fault injection on one stage of the composite
    /// ground-truth pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn set_fault(&mut self, stage: usize, plan: Option<FaultPlan>) {
        assert!(stage < self.stages(), "fault stage out of range");
        self.fault = plan.map(|p| (stage, p));
    }

    /// The workload spec submitted to `stage` for stream item `item`:
    /// the stage template with its `vary` field perturbed by the stream
    /// seed and item index (deterministic, collision-spread).
    pub fn item_spec(&self, stage: usize, stream: &StreamParams, item: usize) -> WorkloadSpec {
        let st = &self.topo.stages[stage];
        let mut spec = WorkloadSpec::new(st.kind.clone());
        for (k, v) in &st.fields {
            spec = spec.with(k.clone(), *v);
        }
        let base = spec.get_or(&st.vary, 1.0);
        spec.with(
            st.vary.clone(),
            base + (stream.seed % 1024) as f64 + (item as f64) * 7.0,
        )
    }

    /// Ground-truth per-item, per-stage latency matrix: each stage's
    /// cycle-accurate simulator measured on that item's workload.
    fn measured_costs(&mut self, stream: &StreamParams) -> Result<Vec<Vec<f64>>, CoreError> {
        let key = (stream.items, stream.seed);
        if let Some(m) = self.meas_cache.get(&key) {
            return Ok(m.clone());
        }
        let specs = self.all_item_specs(stream);
        let mut m = vec![vec![0.0; self.stages()]; stream.items];
        for (j, backend) in self.backends.iter_mut().enumerate() {
            for (i, row) in specs.iter().enumerate() {
                let obs = backend.measure(&row[j])?;
                m[i][j] = Metric::Latency.of(&obs);
            }
        }
        self.meas_cache.insert(key, m.clone());
        Ok(m)
    }

    /// Per-item, per-stage predicted latency bounds from one interface
    /// representation of each stage.
    pub fn predicted_costs(
        &mut self,
        stream: &StreamParams,
        repr: InterfaceKind,
    ) -> Result<CostBounds, CoreError> {
        let key = (repr as u8, stream.items, stream.seed);
        if let Some(m) = self.pred_cache.get(&key) {
            return Ok(m.clone());
        }
        let specs = self.all_item_specs(stream);
        let mut m = vec![vec![(0.0, 0.0); self.stages()]; stream.items];
        for (j, backend) in self.backends.iter_mut().enumerate() {
            for (i, row) in specs.iter().enumerate() {
                let p = backend.predict(&row[j], repr, Metric::Latency)?;
                m[i][j] = match p {
                    perf_core::Prediction::Point(v) => (v, v),
                    perf_core::Prediction::Bounds { min, max } => (min, max),
                };
            }
        }
        self.pred_cache.insert(key, m.clone());
        Ok(m)
    }

    fn all_item_specs(&self, stream: &StreamParams) -> Vec<Vec<WorkloadSpec>> {
        (0..stream.items)
            .map(|i| {
                (0..self.stages())
                    .map(|j| self.item_spec(j, stream, i))
                    .collect()
            })
            .collect()
    }

    /// Inter-stage buffer capacities as seen by the schedule
    /// recurrence: `buffers[j]` bounds the queue *after* stage `j`
    /// (the last stage drains into an unbounded output).
    fn buffers(&self) -> Vec<usize> {
        let k = self.stages();
        (0..k)
            .map(|j| {
                if j + 1 < k {
                    self.topo.stages[j + 1].queue
                } else {
                    usize::MAX
                }
            })
            .collect()
    }

    /// Runs the composite cycle-accurate system on a stream and
    /// returns the ground-truth observation (latency = stream
    /// makespan, throughput = items per cycle). Applies the armed
    /// fault plan to its target stage.
    pub fn measure_stream(&mut self, stream: &StreamParams) -> Result<Observation, CoreError> {
        let costs = self.measured_costs(stream)?;
        let makespan = self.simulate(&costs);
        Ok(observation(makespan, stream.items))
    }

    /// Chains `crates/sim` FIFO stages with the topology's queue depths
    /// and the given per-item costs; returns the elapsed cycles.
    fn simulate(&self, costs: &[Vec<f64>]) -> u64 {
        let k = self.stages();
        let n = costs.len();
        let specs: Vec<StageSpec<usize>> = (0..k)
            .map(|j| {
                let col: Vec<u64> = costs.iter().map(|row| row[j].max(1.0) as u64).collect();
                let out_cap = if j + 1 < k {
                    self.topo.stages[j + 1].queue
                } else {
                    n.max(1)
                };
                StageSpec::new(
                    self.topo.stages[j].instance.clone(),
                    out_cap,
                    move |i: &usize| col[*i],
                )
            })
            .collect();
        let mut pipe = Pipeline::new(self.topo.stages[0].queue, specs);
        if let Some((stage, plan)) = self.fault {
            pipe.set_fault_on(stage, Some(plan));
        }
        let (elapsed, out) = pipe.run_to_completion((0..n).collect());
        debug_assert_eq!(out.len(), n, "composite pipeline dropped items");
        elapsed
    }

    /// Builds the composite Petri net by folding per-stage component
    /// nets through [`perf_petri::compose`]. Structure only — token
    /// payloads carry the per-item costs (see [`Self::stream_tokens`]).
    ///
    /// Stage `j`'s component is `in ──serve──▶ out` where `out` is that
    /// component's sink; gluing `out` onto stage `j+1`'s bounded `in`
    /// yields one shared place per boundary that (a) keeps the
    /// downstream queue depth as its capacity and (b) stops being a
    /// sink — tokens flow on, and a full boundary place blocks the
    /// upstream `serve`, which is backpressure by construction.
    pub fn build_net(&self) -> Result<Net, CoreError> {
        let k = self.stages();
        let mut net = self.stage_net(0)?;
        // The boundary place's name in the accumulated net: stage 0's
        // own `out` keeps its unprefixed name; later stages' out places
        // are prefixed by their component (instance) name.
        let mut boundary = "out".to_string();
        for j in 1..k {
            let part = self.stage_net(j)?;
            let name = self.topo.name.clone();
            net = perf_petri::compose::compose(net, part, &[(boundary.as_str(), "in")], &name)?;
            boundary = format!("{}.out", self.topo.stages[j].instance);
        }
        Ok(net)
    }

    /// One stage as a standalone component net.
    fn stage_net(&self, j: usize) -> Result<Net, CoreError> {
        let st = &self.topo.stages[j];
        let mut b = NetBuilder::new(st.instance.clone());
        // Stage 0's input is the injection point and stays unbounded
        // (the workload is fully known up front); later stages bound
        // their input to the configured queue depth.
        let cap = if j == 0 { None } else { Some(st.queue) };
        let inp = b.place("in", cap);
        let out = b.sink("out");
        let key = format!("c{j}");
        b.transition(
            "serve",
            &[inp],
            &[out],
            move |ts: &[Token]| {
                ts[0]
                    .data
                    .field(&key)
                    .and_then(Value::as_num)
                    .map(|c| c.max(1.0) as u64)
                    .unwrap_or(1)
            },
            |ts| vec![ts[0].data.clone()],
        );
        Ok(b.build()?)
    }

    /// The stream's tokens for the composite net: one record per item
    /// carrying every stage's Petri-tier predicted cost (`c0..ck`), all
    /// available at time 0.
    pub fn stream_tokens(&mut self, stream: &StreamParams) -> Result<Vec<Token>, CoreError> {
        let costs = self.predicted_costs(stream, InterfaceKind::PetriNet)?;
        Ok(costs
            .iter()
            .map(|row| {
                let fields = row
                    .iter()
                    .enumerate()
                    .map(|(j, &(lo, hi))| (format!("c{j}"), Value::num((lo + hi) / 2.0)));
                Token::at(Value::record_owned(fields), 0)
            })
            .collect())
    }

    /// Runs the composite net on one engine and returns its makespan.
    fn run_net(&self, net: Net, tokens: &[Token], engine: EngineChoice) -> Result<u64, CoreError> {
        let entry = net
            .place_id("in")
            .ok_or_else(|| CoreError::Artifact("composite net lost its `in` place".into()))?;
        let exec = match engine {
            EngineChoice::Interpreted => NetExec::interpreted(net),
            EngineChoice::Compiled => NetExec::compiled(net),
        };
        let mut session = exec.session(Options::default());
        for t in tokens {
            session.inject(entry, t.clone());
        }
        let res = session.run()?;
        if !res.stranded.is_empty() {
            return Err(CoreError::Artifact(format!(
                "composite net stranded tokens: {:?}",
                res.stranded
            )));
        }
        Ok(res.makespan)
    }

    /// Petri-tier composite prediction: the net's makespan under this
    /// composite's configured engine.
    pub fn petri_makespan(&mut self, stream: &StreamParams) -> Result<u64, CoreError> {
        let tokens = self.stream_tokens(stream)?;
        let net = self.build_net()?;
        self.run_net(net, &tokens, self.engine)
    }

    /// Runs the composite net on *both* engines (incremental
    /// interpreter and `CompiledNet` stepper) and returns both
    /// makespans; the differential harness asserts they agree.
    pub fn petri_makespan_both(&mut self, stream: &StreamParams) -> Result<(u64, u64), CoreError> {
        let tokens = self.stream_tokens(stream)?;
        let interpreted = self.run_net(self.build_net()?, &tokens, EngineChoice::Interpreted)?;
        let compiled = self.run_net(self.build_net()?, &tokens, EngineChoice::Compiled)?;
        Ok((interpreted, compiled))
    }

    /// Lints the composite net structure (entry = the stream injection
    /// place), as `pnet lint` would.
    pub fn lint_net(&self) -> Result<perf_core::diag::Diagnostics, CoreError> {
        let net = self.build_net()?;
        let entry = net
            .place_id("in")
            .ok_or_else(|| CoreError::Artifact("composite net lost its `in` place".into()))?;
        Ok(lint(&net, Some(&[entry])))
    }

    /// Program-tier composite prediction: bounded-buffer schedule
    /// recurrence over per-stage program-tier cost midpoints.
    pub fn program_makespan(&mut self, stream: &StreamParams) -> Result<f64, CoreError> {
        let bounds = self.predicted_costs(stream, InterfaceKind::Program)?;
        let costs: Vec<Vec<f64>> = bounds
            .iter()
            .map(|row| row.iter().map(|&(lo, hi)| (lo + hi) / 2.0).collect())
            .collect();
        Ok(pipeline_makespan(&costs, &self.buffers()))
    }

    /// NL-tier composite bounds on stream makespan, composed from the
    /// per-stage NL bounds: the pipeline can go no faster than its
    /// busiest stage or its slowest item's serial path, and no slower
    /// than full serialization (plus one hand-off cycle per item-stage).
    pub fn nl_bounds(&mut self, stream: &StreamParams) -> Result<(f64, f64), CoreError> {
        let bounds = self.predicted_costs(stream, InterfaceKind::NaturalLanguage)?;
        let n = stream.items;
        let k = self.stages();
        let mut stage_lo = vec![0.0; k];
        let mut item_lo = vec![0.0; n];
        let mut total_hi = 0.0;
        for (i, row) in bounds.iter().enumerate() {
            for (j, &(lo, hi)) in row.iter().enumerate() {
                stage_lo[j] += lo;
                item_lo[i] += lo;
                total_hi += hi;
            }
        }
        let lower = stage_lo
            .iter()
            .chain(item_lo.iter())
            .fold(0.0_f64, |a, &b| a.max(b));
        let upper = total_hi + (n * k + n + k) as f64;
        Ok((lower, upper.max(lower)))
    }
}

/// Bounded-buffer pipeline schedule: the earliest feasible start/exit
/// times of each (item, stage) under single-server stages and finite
/// inter-stage buffers, O(items × stages).
///
/// `buffers[j]` is the capacity of the buffer after stage `j`
/// (`usize::MAX` = unbounded). Item `i` may leave stage `j` only once
/// item `i - buffers[j]` has *started* stage `j+1` (freeing a slot);
/// until then it blocks the stage — the recurrence form of the
/// simulator's "finished item keeps occupying its stage".
pub fn pipeline_makespan(costs: &[Vec<f64>], buffers: &[usize]) -> f64 {
    let n = costs.len();
    if n == 0 {
        return 0.0;
    }
    let k = costs[0].len();
    let mut start = vec![vec![0.0_f64; k]; n];
    let mut exit = vec![vec![0.0_f64; k]; n];
    for i in 0..n {
        for j in 0..k {
            let ready = if j == 0 { 0.0 } else { exit[i][j - 1] };
            let free = if i == 0 { 0.0 } else { exit[i - 1][j] };
            start[i][j] = ready.max(free);
            let finish = start[i][j] + costs[i][j].max(1.0);
            exit[i][j] = if j + 1 < k && buffers[j] != usize::MAX && i >= buffers[j] {
                finish.max(start[i - buffers[j]][j + 1])
            } else {
                finish
            };
        }
    }
    exit[n - 1][k - 1]
}

/// Packages a composite makespan as an [`Observation`].
pub fn observation(makespan: u64, items: usize) -> Observation {
    let cycles = Cycles(makespan.max(1));
    Observation::new(cycles, Throughput::of(items as u64, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(c: &str) -> Composite {
        Composite::new(Topology::parse_chain(c).unwrap(), EngineChoice::Compiled).unwrap()
    }

    const STREAM: StreamParams = StreamParams { items: 6, seed: 3 };

    #[test]
    fn composite_net_round_trips_both_engines_and_lints() {
        let mut c = chain("jpeg-decoder:2>protoacc:4");
        let (interp, comp) = c.petri_makespan_both(&STREAM).unwrap();
        assert_eq!(interp, comp, "engines must agree on the composite net");
        assert!(interp > 0);
        let diags = c.lint_net().unwrap();
        assert!(!diags.has_errors(), "{}", diags.render());
    }

    #[test]
    fn boundary_places_keep_queue_capacity_and_lose_sinkness() {
        let c = chain("vta:2>bitcoin-miner:3>protoacc:5");
        let net = c.build_net().unwrap();
        // Boundaries: stage0.out ∪ stage1.in (cap 3), stage1.out ∪
        // stage2.in (cap 5); only the final out remains a sink.
        let places = net.places();
        let find = |name: &str| {
            places
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("no place `{name}` in {places:?}"))
        };
        assert_eq!(find("in").capacity, None);
        assert_eq!(find("out").capacity, Some(3));
        assert!(!find("out").is_sink);
        let mid = find("s1_bitcoin_miner.out");
        assert_eq!(mid.capacity, Some(5));
        assert!(!mid.is_sink);
        let last = find("s2_protoacc.out");
        assert_eq!(last.capacity, None);
        assert!(last.is_sink);
    }

    #[test]
    fn measure_matches_program_recurrence_shape() {
        // The analytic recurrence on the *measured* costs must track
        // the tick simulator closely (they model the same blocking
        // law; the sim adds ~1 hand-off cycle per hop).
        let mut c = chain("vta:2>protoacc:2");
        let costs = c.measured_costs(&STREAM).unwrap();
        let sim = c.simulate(&costs) as f64;
        let analytic = pipeline_makespan(&costs, &c.buffers());
        let slack = (STREAM.items * c.stages() + 8) as f64;
        assert!(
            (sim - analytic).abs() <= slack,
            "sim {sim} vs recurrence {analytic} (slack {slack})"
        );
    }

    #[test]
    fn recurrence_respects_buffer_blocking() {
        // Fast stage feeding a slow stage through a 1-deep buffer: the
        // fast stage must block, so makespan ≈ n * slow.
        let n = 10;
        let costs: Vec<Vec<f64>> = (0..n).map(|_| vec![1.0, 100.0]).collect();
        let bounded = pipeline_makespan(&costs, &[1, usize::MAX]);
        assert!(bounded >= 1000.0, "bounded {bounded}");
        // Unbounded buffers don't change the bottleneck here (stage 2
        // is the bottleneck either way), but the first stage finishes
        // early; makespan identical.
        let unbounded = pipeline_makespan(&costs, &[usize::MAX, usize::MAX]);
        assert!((bounded - unbounded).abs() < 1e-9);
        // Single stage degenerates to a serial sum.
        let serial: Vec<Vec<f64>> = (0..4).map(|_| vec![3.0]).collect();
        assert_eq!(pipeline_makespan(&serial, &[usize::MAX]), 12.0);
        assert_eq!(pipeline_makespan(&[], &[]), 0.0);
    }

    #[test]
    fn nl_bounds_contain_ground_truth() {
        let mut c = chain("vta:2>protoacc:4");
        let (lo, hi) = c.nl_bounds(&STREAM).unwrap();
        let obs = c.measure_stream(&STREAM).unwrap();
        let actual = Metric::Latency.of(&obs);
        assert!(lo <= hi);
        assert!(
            actual <= hi * 1.05,
            "actual {actual} should be ≤ NL upper {hi}"
        );
        assert!(lo > 0.0);
    }

    #[test]
    fn fault_on_one_stage_slows_the_stream() {
        let mut c = chain("vta:2>protoacc:2");
        let clean = Metric::Latency.of(&c.measure_stream(&STREAM).unwrap());
        c.set_fault(1, Some(FaultPlan::backpressure(3, 900, 500)));
        let faulted = Metric::Latency.of(&c.measure_stream(&STREAM).unwrap());
        assert!(
            faulted > clean,
            "faulted {faulted} should exceed clean {clean}"
        );
        c.set_fault(1, None);
        let back = Metric::Latency.of(&c.measure_stream(&STREAM).unwrap());
        assert_eq!(back, clean, "disarming restores the clean measurement");
    }

    #[test]
    fn unknown_spec_kind_is_rejected_at_construction() {
        let mut topo = Topology::parse_chain("vta:2>protoacc:2").unwrap();
        topo.stages[0].kind = "no-such-kind".to_string();
        let err = match Composite::new(topo, EngineChoice::Compiled) {
            Err(e) => e,
            Ok(_) => panic!("bad spec kind must be rejected"),
        };
        assert!(err.to_string().contains("no-such-kind"), "{err}");
    }
}
