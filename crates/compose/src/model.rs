//! The composite pipeline model.
//!
//! A [`Composite`] realizes a [`Topology`] — a linear chain or a
//! fan-out/fan-in DAG — on both substrates:
//!
//! * **Ground truth** — cycle-accurate simulation whose per-stage,
//!   per-item cost is the stage accelerator's *measured* latency for
//!   that item's workload, coupled through bounded FIFOs: a
//!   [`perf_sim::Pipeline`] for chains, a [`perf_sim::DagPipeline`]
//!   for branched topologies. This is "the SoC": independent
//!   accelerator models coupled only by queues and backpressure.
//! * **Composite Petri net** — per-stage component nets folded through
//!   [`perf_petri::compose`] in topological order, gluing each
//!   producer's `out` sink onto its consumer's bounded `in` place. The
//!   fused place keeps the tighter capacity and loses sink-ness (only
//!   one side is a sink), so backpressure emerges from net structure
//!   rather than per-stage modeling — exactly the fused-place
//!   semantics `compose` guarantees. Fan-out and fan-in are explicit
//!   structure, never place aliasing (which [`perf_petri::compose`]
//!   rejects): round-robin fan-out is a guarded router transition per
//!   out-edge reading the token's precomputed route field, broadcast
//!   is one serve transition with an output arc per out-edge, and
//!   fan-in is a capacity-1 latch place per in-edge merged into the
//!   stage's bounded input queue by zero-delay transitions.
//!
//! The Petri, program, and NL tiers all predict from the *stage
//! interfaces* (never from the composite simulator), composing
//! per-stage predictions structurally: the Petri tier runs the
//! composite net, the program tier evaluates a bounded-buffer schedule
//! recurrence ([`pipeline_makespan`] on chains, [`dag_makespan`] on
//! DAGs), and the NL tier combines closed-form per-stage bounds
//! (busiest-stage / longest-path lower, serialization upper).
//!
//! Routing is *static*: a [`DagPlan`] computed once per stream decides
//! which out-edge every item takes at every round-robin fan-out
//! (by the item's rank among that stage's visitors, modulo fan-out) and
//! what jobs each stage therefore processes. All three predictive tiers
//! and the ground truth share that plan, so they predict the same
//! traffic rather than guessing at each other's arbitration.

use perf_core::iface::{InterfaceKind, Metric};
use perf_core::query::{EngineChoice, QueryBackend, WorkloadSpec};
use perf_core::units::{Cycles, Throughput};
use perf_core::{CoreError, Observation};
use perf_iface_lang::Value;
use perf_petri::behavior::Behavior;
use perf_petri::lint::lint;
use perf_petri::net::Transition;
use perf_petri::{Engine, Net, NetBuilder, NetExec, Options, SimResult, Token};
use perf_sim::{DagNodeSpec, DagPipeline, FaultPlan, Pipeline, Route, StageSpec};
use std::collections::HashMap;

use crate::topology::{Policy, Topology, MAX_ITEMS};

use accel_bitcoin::interface::service::BitcoinService;
use accel_jpeg::interface::service::JpegService;
use accel_protoacc::interface::service::ProtoaccService;
use accel_vta::interface::service::VtaService;

/// Builds the query backend for one shipped accelerator on an explicit
/// evaluation substrate. This is the canonical constructor table —
/// `perf-service`'s registry delegates here (the dependency points this
/// way so composite backends never need the service crate).
pub fn accel_backend(
    accel: &str,
    engine: EngineChoice,
) -> Result<Box<dyn QueryBackend>, CoreError> {
    match accel {
        "jpeg-decoder" => Ok(Box::new(JpegService::with_engine(engine)?)),
        "bitcoin-miner" => Ok(Box::new(BitcoinService::with_engine(engine))),
        "protoacc" => Ok(Box::new(ProtoaccService::with_engine(engine))),
        "vta" => Ok(Box::new(VtaService::with_engine(engine))),
        other => Err(CoreError::Artifact(format!(
            "unknown accelerator `{other}` (have: jpeg-decoder, bitcoin-miner, protoacc, vta)"
        ))),
    }
}

/// Parameters of one `stream` workload: `items` independent workloads
/// flowing through the pipeline, derived from `seed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamParams {
    /// Number of items pushed through the pipeline.
    pub items: usize,
    /// Base seed; each item and stage derives its own spec from it.
    pub seed: u64,
}

impl StreamParams {
    /// Extracts stream parameters from a `stream` workload spec.
    pub fn from_spec(spec: &WorkloadSpec) -> Result<StreamParams, CoreError> {
        if spec.kind != "stream" {
            return Err(CoreError::Artifact(format!(
                "composite pipelines accept spec kind `stream`, got `{}`",
                spec.kind
            )));
        }
        let items = spec.get_or("items", 8.0);
        if !items.is_finite() || items < 1.0 {
            return Err(CoreError::Artifact(format!(
                "stream `items` must be ≥ 1, got {items}"
            )));
        }
        // Reject oversize streams instead of silently clamping: a
        // caller asking for 10k items used to get a 4096-item answer
        // labeled as if it covered the full request.
        if items > MAX_ITEMS as f64 {
            return Err(CoreError::Artifact(format!(
                "stream `items` must be ≤ {MAX_ITEMS}, got {items}"
            )));
        }
        Ok(StreamParams {
            items: items as usize,
            seed: spec.get_or("seed", 1.0) as u64,
        })
    }
}

/// Per-item, per-stage cost bounds: `costs[item][stage] = (lo, hi)`.
/// Point predictions collapse to `lo == hi`.
type CostBounds = Vec<Vec<(f64, f64)>>;

/// A topology realized against live accelerator backends.
pub struct Composite {
    topo: Topology,
    engine: EngineChoice,
    backends: Vec<Box<dyn QueryBackend>>,
    /// Fault injection for ground-truth measurement: the plan applies
    /// to one stage of the composite pipeline (`set_fault`).
    fault: Option<(usize, FaultPlan)>,
    /// Predicted cost matrices keyed by (repr, items, seed); per-stage
    /// predictions are deterministic so this never goes stale.
    pred_cache: HashMap<(u8, usize, u64), CostBounds>,
    /// Measured (clean) cost matrices keyed by (items, seed). Faults
    /// are injected at the composite level, not into per-item costs,
    /// so the cache stays valid across `set_fault`.
    meas_cache: HashMap<(usize, u64), Vec<Vec<f64>>>,
}

impl Composite {
    /// Realizes `topo`: constructs each stage's backend and checks the
    /// stage templates against what the backends accept.
    pub fn new(topo: Topology, engine: EngineChoice) -> Result<Composite, CoreError> {
        topo.validate()?;
        let mut backends = Vec::new();
        for st in &topo.stages {
            let b = accel_backend(&st.accel, engine)?;
            if !b.spec_kinds().contains(&st.kind.as_str()) {
                return Err(CoreError::Artifact(format!(
                    "stage `{}`: accelerator `{}` does not accept spec kind `{}` (accepts: {})",
                    st.instance,
                    st.accel,
                    st.kind,
                    b.spec_kinds().join(", ")
                )));
            }
            backends.push(b);
        }
        Ok(Composite {
            topo,
            engine,
            backends,
            fault: None,
            pred_cache: HashMap::new(),
            meas_cache: HashMap::new(),
        })
    }

    /// The realized topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The evaluation substrate the stage backends run on.
    pub fn engine(&self) -> EngineChoice {
        self.engine
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.topo.stages.len()
    }

    /// Arms (or disarms) fault injection on one stage of the composite
    /// ground-truth pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn set_fault(&mut self, stage: usize, plan: Option<FaultPlan>) {
        assert!(stage < self.stages(), "fault stage out of range");
        self.fault = plan.map(|p| (stage, p));
    }

    /// The workload spec submitted to `stage` for stream item `item`:
    /// the stage template with its `vary` field perturbed by the stream
    /// seed and item index (deterministic, collision-spread).
    pub fn item_spec(&self, stage: usize, stream: &StreamParams, item: usize) -> WorkloadSpec {
        let st = &self.topo.stages[stage];
        let mut spec = WorkloadSpec::new(st.kind.clone());
        for (k, v) in &st.fields {
            spec = spec.with(k.clone(), *v);
        }
        let base = spec.get_or(&st.vary, 1.0);
        spec.with(
            st.vary.clone(),
            base + (stream.seed % 1024) as f64 + (item as f64) * 7.0,
        )
    }

    /// Ground-truth per-item, per-stage latency matrix: each stage's
    /// cycle-accurate simulator measured on that item's workload.
    fn measured_costs(&mut self, stream: &StreamParams) -> Result<Vec<Vec<f64>>, CoreError> {
        let key = (stream.items, stream.seed);
        if let Some(m) = self.meas_cache.get(&key) {
            return Ok(m.clone());
        }
        let specs = self.all_item_specs(stream);
        let mut m = vec![vec![0.0; self.stages()]; stream.items];
        for (j, backend) in self.backends.iter_mut().enumerate() {
            for (i, row) in specs.iter().enumerate() {
                let obs = backend.measure(&row[j])?;
                m[i][j] = Metric::Latency.of(&obs);
            }
        }
        self.meas_cache.insert(key, m.clone());
        Ok(m)
    }

    /// Per-item, per-stage predicted latency bounds from one interface
    /// representation of each stage.
    pub fn predicted_costs(
        &mut self,
        stream: &StreamParams,
        repr: InterfaceKind,
    ) -> Result<CostBounds, CoreError> {
        let key = (repr as u8, stream.items, stream.seed);
        if let Some(m) = self.pred_cache.get(&key) {
            return Ok(m.clone());
        }
        let specs = self.all_item_specs(stream);
        let mut m = vec![vec![(0.0, 0.0); self.stages()]; stream.items];
        for (j, backend) in self.backends.iter_mut().enumerate() {
            for (i, row) in specs.iter().enumerate() {
                let p = backend.predict(&row[j], repr, Metric::Latency)?;
                m[i][j] = match p {
                    perf_core::Prediction::Point(v) => (v, v),
                    perf_core::Prediction::Bounds { min, max } => (min, max),
                };
            }
        }
        self.pred_cache.insert(key, m.clone());
        Ok(m)
    }

    fn all_item_specs(&self, stream: &StreamParams) -> Vec<Vec<WorkloadSpec>> {
        (0..stream.items)
            .map(|i| {
                (0..self.stages())
                    .map(|j| self.item_spec(j, stream, i))
                    .collect()
            })
            .collect()
    }

    /// Inter-stage buffer capacities as seen by the schedule
    /// recurrence: `buffers[j]` bounds the queue *after* stage `j`
    /// (the last stage drains into an unbounded output).
    fn buffers(&self) -> Vec<usize> {
        let k = self.stages();
        (0..k)
            .map(|j| {
                if j + 1 < k {
                    self.topo.stages[j + 1].queue
                } else {
                    usize::MAX
                }
            })
            .collect()
    }

    /// Runs the composite cycle-accurate system on a stream and
    /// returns the ground-truth observation (latency = stream
    /// makespan, throughput = items per cycle). Applies the armed
    /// fault plan to its target stage.
    pub fn measure_stream(&mut self, stream: &StreamParams) -> Result<Observation, CoreError> {
        let costs = self.measured_costs(stream)?;
        let makespan = self.simulate(&costs);
        Ok(observation(makespan, stream.items))
    }

    /// Runs `crates/sim` FIFO stages with the topology's queue depths
    /// and the given per-item costs; returns the elapsed cycles. Chains
    /// keep the original single-pipeline model; branched or replicated
    /// topologies run the DAG pipeline with the shared route plan.
    fn simulate(&self, costs: &[Vec<f64>]) -> u64 {
        if !self.topo.is_chain() {
            return self.simulate_dag(costs);
        }
        let k = self.stages();
        let n = costs.len();
        let specs: Vec<StageSpec<usize>> = (0..k)
            .map(|j| {
                let col: Vec<u64> = costs.iter().map(|row| row[j].max(1.0) as u64).collect();
                let out_cap = if j + 1 < k {
                    self.topo.stages[j + 1].queue
                } else {
                    n.max(1)
                };
                StageSpec::new(
                    self.topo.stages[j].instance.clone(),
                    out_cap,
                    move |i: &usize| col[*i],
                )
            })
            .collect();
        let mut pipe = Pipeline::new(self.topo.stages[0].queue, specs);
        if let Some((stage, plan)) = self.fault {
            pipe.set_fault_on(stage, Some(plan));
        }
        let (elapsed, out) = pipe.run_to_completion((0..n).collect());
        debug_assert_eq!(out.len(), n, "composite pipeline dropped items");
        elapsed
    }

    /// Ground truth for branched/replicated topologies: a
    /// [`perf_sim::DagPipeline`] wired per the edge graph, routing by
    /// the stream's static [`DagPlan`].
    fn simulate_dag(&self, costs: &[Vec<f64>]) -> u64 {
        let n = costs.len();
        let plan = DagPlan::new(&self.topo, n);
        let specs: Vec<DagNodeSpec<usize>> = (0..self.stages())
            .map(|u| {
                let st = &self.topo.stages[u];
                let col: Vec<u64> = costs.iter().map(|row| row[u].max(1.0) as u64).collect();
                let mut spec =
                    DagNodeSpec::new(st.instance.clone(), st.queue, move |i: &usize| col[*i])
                        .replicas(st.replicas);
                let outs = self.topo.out_edges(u);
                if !outs.is_empty() {
                    let targets: Vec<usize> = outs
                        .iter()
                        .map(|&e| {
                            self.topo
                                .stage_index(&self.topo.edges[e].to)
                                .expect("validated topology")
                        })
                        .collect();
                    let route = if outs.len() > 1 && self.topo.policy_of(u) == Policy::Broadcast {
                        Route::Broadcast
                    } else {
                        let slots: Vec<usize> =
                            (0..n).map(|i| plan.route[u][i].unwrap_or(0)).collect();
                        Route::Pick(Box::new(move |i: &usize| slots[*i]))
                    };
                    spec = spec.targets(targets, route);
                }
                spec
            })
            .collect();
        let mut pipe = DagPipeline::new(specs);
        if let Some((stage, fault)) = self.fault {
            pipe.set_fault_on(stage, Some(fault));
        }
        let terminal_jobs: usize = (0..self.stages())
            .filter(|&u| self.topo.out_edges(u).is_empty())
            .map(|u| plan.jobs[u].len())
            .sum();
        let (elapsed, out) = pipe.run_to_completion((0..n).collect());
        debug_assert_eq!(out.len(), terminal_jobs, "composite DAG dropped items");
        elapsed
    }

    /// Builds the composite Petri net by folding per-stage component
    /// nets through [`perf_petri::compose`]. Structure only — token
    /// payloads carry the per-item costs (see [`Self::stream_tokens`]).
    ///
    /// Stage `j`'s component is `in ──serve──▶ out` where `out` is that
    /// component's sink; gluing `out` onto stage `j+1`'s bounded `in`
    /// yields one shared place per boundary that (a) keeps the
    /// downstream queue depth as its capacity and (b) stops being a
    /// sink — tokens flow on, and a full boundary place blocks the
    /// upstream `serve`, which is backpressure by construction.
    pub fn build_net(&self) -> Result<Net, CoreError> {
        if !self.topo.is_chain() {
            return self.build_dag_net();
        }
        let k = self.stages();
        let mut net = self.stage_net(0)?;
        // The boundary place's name in the accumulated net: stage 0's
        // own `out` keeps its unprefixed name; later stages' out places
        // are prefixed by their component (instance) name.
        let mut boundary = "out".to_string();
        for j in 1..k {
            let part = self.stage_net(j)?;
            let name = self.topo.name.clone();
            net = perf_petri::compose::compose(net, part, &[(boundary.as_str(), "in")], &name)?;
            boundary = format!("{}.out", self.topo.stages[j].instance);
        }
        Ok(net)
    }

    /// Folds per-stage component nets into the composite DAG net, in
    /// topological order so every producer's boundary place exists
    /// (with a known name) before its consumer is glued on.
    ///
    /// Per-stage shape: a fan-out of one is the chain's
    /// `in → serve → out`; a round-robin fan-out of `k` serves into a
    /// `mid` place drained by `k` zero-delay router transitions (one
    /// per out-edge, guarded on the token's `r<stage>` route field, so
    /// routing is deterministic head-of-line); a broadcast fan-out
    /// gives `serve` one output arc per out-edge, cloning the payload.
    /// A fan-in of `m` presents `m` capacity-1 latch places (`in0…`),
    /// each merged into the stage's bounded `in` queue by a zero-delay
    /// transition — every glue pair stays a distinct 1-to-1 fusion,
    /// which is exactly what [`perf_petri::compose`]'s aliasing checks
    /// require of well-formed composition.
    fn build_dag_net(&self) -> Result<Net, CoreError> {
        let order = self.topo.topo_order();
        let source = self.topo.source();
        debug_assert_eq!(order[0], source, "validated topology starts at its source");
        // The boundary-place name of (stage, out-slot) in the
        // accumulated net: the first-folded component keeps unprefixed
        // names, later ones are prefixed by instance.
        let out_name = |u: usize, slot: usize| -> String {
            let base = if self.topo.out_edges(u).len() <= 1 {
                "out".to_string()
            } else {
                format!("out{slot}")
            };
            if u == source {
                base
            } else {
                format!("{}.{base}", self.topo.stages[u].instance)
            }
        };
        let mut net = self.dag_stage_net(source)?;
        for &v in &order[1..] {
            let part = self.dag_stage_net(v)?;
            let ins = self.topo.in_edges(v);
            let pairs: Vec<(String, String)> = ins
                .iter()
                .enumerate()
                .map(|(slot, &e)| {
                    let u = self
                        .topo
                        .stage_index(&self.topo.edges[e].from)
                        .expect("validated topology");
                    let uslot = self
                        .topo
                        .out_edges(u)
                        .iter()
                        .position(|&x| x == e)
                        .expect("edge is an out-edge of its producer");
                    let b_name = if ins.len() == 1 {
                        "in".to_string()
                    } else {
                        format!("in{slot}")
                    };
                    (out_name(u, uslot), b_name)
                })
                .collect();
            let refs: Vec<(&str, &str)> = pairs
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            net = perf_petri::compose::compose(net, part, &refs, &self.topo.name)?;
        }
        Ok(net)
    }

    /// One DAG stage as a standalone component net (see
    /// [`Self::build_dag_net`] for the shapes).
    fn dag_stage_net(&self, u: usize) -> Result<Net, CoreError> {
        let st = &self.topo.stages[u];
        let mut b = NetBuilder::new(st.instance.clone());
        let m = self.topo.in_edges(u).len();
        let inp = if m == 0 {
            // The source's input is the injection point and stays
            // unbounded (the workload is fully known up front).
            b.place("in", None)
        } else {
            let inp = b.place("in", Some(st.queue));
            if m > 1 {
                for slot in 0..m {
                    let latch = b.place(format!("in{slot}"), Some(1));
                    b.transition(
                        format!("merge{slot}"),
                        &[latch],
                        &[inp],
                        |_| 0,
                        |ts| vec![ts[0].data.clone()],
                    );
                }
            }
            inp
        };
        let key = format!("c{u}");
        let delay: perf_petri::behavior::DelayFn = Box::new(move |ts: &[Token]| {
            ts[0]
                .data
                .field(&key)
                .and_then(Value::as_num)
                .map(|c| c.max(1.0) as u64)
                .unwrap_or(1)
        });
        let outs = self.topo.out_edges(u);
        let fan = outs.len();
        if fan <= 1 {
            let out = b.sink("out");
            b.add_transition(Transition {
                name: "serve".to_string(),
                inputs: vec![(inp, 1)],
                outputs: vec![(out, 1)],
                behavior: Behavior::Native {
                    guard: None,
                    delay,
                    transform: Box::new(|ts| vec![ts[0].data.clone()]),
                },
                servers: st.replicas.max(1),
                priority: 0,
            });
        } else if self.topo.policy_of(u) == Policy::Broadcast {
            let out_ids: Vec<_> = (0..fan).map(|s| b.sink(format!("out{s}"))).collect();
            b.add_transition(Transition {
                name: "serve".to_string(),
                inputs: vec![(inp, 1)],
                outputs: out_ids.iter().map(|&o| (o, 1)).collect(),
                behavior: Behavior::Native {
                    guard: None,
                    delay,
                    transform: Box::new(move |ts| vec![ts[0].data.clone(); fan]),
                },
                servers: st.replicas.max(1),
                priority: 0,
            });
        } else {
            // Round-robin: serve lands in `mid` (capacity = replicas,
            // so the output-capacity reservation never throttles the
            // servers), then one guarded zero-delay router per
            // out-edge moves the token to its planned branch.
            let mid = b.place("mid", Some(st.replicas.max(1)));
            b.add_transition(Transition {
                name: "serve".to_string(),
                inputs: vec![(inp, 1)],
                outputs: vec![(mid, 1)],
                behavior: Behavior::Native {
                    guard: None,
                    delay,
                    transform: Box::new(|ts| vec![ts[0].data.clone()]),
                },
                servers: st.replicas.max(1),
                priority: 0,
            });
            let rkey = format!("r{u}");
            for s in 0..fan {
                let out = b.sink(format!("out{s}"));
                let rk = rkey.clone();
                b.add_transition(Transition {
                    name: format!("route{s}"),
                    inputs: vec![(mid, 1)],
                    outputs: vec![(out, 1)],
                    behavior: Behavior::Native {
                        guard: Some(Box::new(move |ts: &[Token]| {
                            ts[0]
                                .data
                                .field(&rk)
                                .and_then(Value::as_num)
                                .map(|v| v as usize == s)
                                .unwrap_or(false)
                        })),
                        delay: Box::new(|_| 0),
                        transform: Box::new(|ts| vec![ts[0].data.clone()]),
                    },
                    servers: 1,
                    priority: 0,
                });
            }
        }
        Ok(b.build()?)
    }

    /// One stage as a standalone component net.
    fn stage_net(&self, j: usize) -> Result<Net, CoreError> {
        let st = &self.topo.stages[j];
        let mut b = NetBuilder::new(st.instance.clone());
        // Stage 0's input is the injection point and stays unbounded
        // (the workload is fully known up front); later stages bound
        // their input to the configured queue depth.
        let cap = if j == 0 { None } else { Some(st.queue) };
        let inp = b.place("in", cap);
        let out = b.sink("out");
        let key = format!("c{j}");
        b.transition(
            "serve",
            &[inp],
            &[out],
            move |ts: &[Token]| {
                ts[0]
                    .data
                    .field(&key)
                    .and_then(Value::as_num)
                    .map(|c| c.max(1.0) as u64)
                    .unwrap_or(1)
            },
            |ts| vec![ts[0].data.clone()],
        );
        Ok(b.build()?)
    }

    /// The stream's tokens for the composite net: one record per item
    /// carrying every stage's Petri-tier predicted cost (`c0..ck`), all
    /// available at time 0. On DAG topologies each token also carries
    /// its planned route slot `r<stage>` for every round-robin fan-out
    /// stage — the router transitions' guards read these fields.
    pub fn stream_tokens(&mut self, stream: &StreamParams) -> Result<Vec<Token>, CoreError> {
        let costs = self.predicted_costs(stream, InterfaceKind::PetriNet)?;
        let routes: Vec<(usize, Vec<Option<usize>>)> = if self.topo.is_chain() {
            Vec::new()
        } else {
            let plan = DagPlan::new(&self.topo, stream.items);
            (0..self.stages())
                .filter(|&u| {
                    self.topo.out_edges(u).len() > 1 && self.topo.policy_of(u) == Policy::RoundRobin
                })
                .map(|u| (u, plan.route[u].clone()))
                .collect()
        };
        Ok(costs
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let cost_fields = row
                    .iter()
                    .enumerate()
                    .map(|(j, &(lo, hi))| (format!("c{j}"), Value::num((lo + hi) / 2.0)));
                let route_fields = routes
                    .iter()
                    .map(|(u, slots)| (format!("r{u}"), Value::num(slots[i].unwrap_or(0) as f64)));
                Token::at(Value::record_owned(cost_fields.chain(route_fields)), 0)
            })
            .collect())
    }

    /// Runs the composite net on one engine and returns its makespan.
    fn run_net(&self, net: Net, tokens: &[Token], engine: EngineChoice) -> Result<u64, CoreError> {
        let entry = net
            .place_id("in")
            .ok_or_else(|| CoreError::Artifact("composite net lost its `in` place".into()))?;
        let exec = match engine {
            EngineChoice::Interpreted => NetExec::interpreted(net),
            EngineChoice::Compiled => NetExec::compiled(net),
        };
        let mut session = exec.session(Options::default());
        for t in tokens {
            session.inject(entry, t.clone());
        }
        let res = session.run()?;
        if !res.stranded.is_empty() {
            return Err(CoreError::Artifact(format!(
                "composite net stranded tokens: {:?}",
                res.stranded
            )));
        }
        Ok(res.makespan)
    }

    /// Petri-tier composite prediction: the net's makespan under this
    /// composite's configured engine.
    pub fn petri_makespan(&mut self, stream: &StreamParams) -> Result<u64, CoreError> {
        let tokens = self.stream_tokens(stream)?;
        let net = self.build_net()?;
        self.run_net(net, &tokens, self.engine)
    }

    /// Runs the composite net with firing-trace recording enabled and
    /// returns the net together with the traced [`SimResult`] — the
    /// input to [`perf_petri::critical_path`] and the Chrome-trace
    /// exporter. Always uses the incremental interpreter (the compiled
    /// stepper does not record traces).
    pub fn petri_traced(&mut self, stream: &StreamParams) -> Result<(Net, SimResult), CoreError> {
        let tokens = self.stream_tokens(stream)?;
        let net = self.build_net()?;
        let entry = net
            .place_id("in")
            .ok_or_else(|| CoreError::Artifact("composite net lost its `in` place".into()))?;
        let mut engine = Engine::new(
            &net,
            Options {
                trace: Some(perf_petri::trace::DEFAULT_TRACE_CAPACITY),
                ..Options::default()
            },
        );
        for t in &tokens {
            engine.inject(entry, t.clone());
        }
        let res = engine.run()?;
        if !res.stranded.is_empty() {
            return Err(CoreError::Artifact(format!(
                "composite net stranded tokens: {:?}",
                res.stranded
            )));
        }
        Ok((net, res))
    }

    /// Runs the composite net on *both* engines (incremental
    /// interpreter and `CompiledNet` stepper) and returns both
    /// makespans; the differential harness asserts they agree.
    pub fn petri_makespan_both(&mut self, stream: &StreamParams) -> Result<(u64, u64), CoreError> {
        let tokens = self.stream_tokens(stream)?;
        let interpreted = self.run_net(self.build_net()?, &tokens, EngineChoice::Interpreted)?;
        let compiled = self.run_net(self.build_net()?, &tokens, EngineChoice::Compiled)?;
        Ok((interpreted, compiled))
    }

    /// Lints the composite net structure (entry = the stream injection
    /// place), as `pnet lint` would.
    pub fn lint_net(&self) -> Result<perf_core::diag::Diagnostics, CoreError> {
        let net = self.build_net()?;
        let entry = net
            .place_id("in")
            .ok_or_else(|| CoreError::Artifact("composite net lost its `in` place".into()))?;
        Ok(lint(&net, Some(&[entry])))
    }

    /// Program-tier composite prediction: bounded-buffer schedule
    /// recurrence over per-stage program-tier cost midpoints —
    /// [`pipeline_makespan`] on chains, [`dag_makespan`] on DAGs.
    pub fn program_makespan(&mut self, stream: &StreamParams) -> Result<f64, CoreError> {
        let bounds = self.predicted_costs(stream, InterfaceKind::Program)?;
        let costs: Vec<Vec<f64>> = bounds
            .iter()
            .map(|row| row.iter().map(|&(lo, hi)| (lo + hi) / 2.0).collect())
            .collect();
        if self.topo.is_chain() {
            return Ok(pipeline_makespan(&costs, &self.buffers()));
        }
        let plan = DagPlan::new(&self.topo, stream.items);
        let replicas: Vec<usize> = self.topo.stages.iter().map(|s| s.replicas).collect();
        let queues: Vec<usize> = self.topo.stages.iter().map(|s| s.queue).collect();
        Ok(dag_makespan(&costs, &plan, &replicas, &queues))
    }

    /// NL-tier composite bounds on stream makespan, composed from the
    /// per-stage NL bounds over the stream's job plan: the pipeline can
    /// go no faster than its busiest stage (that stage's job-cost sum
    /// spread over its replicas) or any single job's critical path
    /// through the DAG, and no slower than full serialization of every
    /// job (plus one hand-off cycle per job, item and stage). On a
    /// chain — one job per item per stage, one server each — this is
    /// exactly the busiest-stage / slowest-item formula the linear
    /// composition used.
    pub fn nl_bounds(&mut self, stream: &StreamParams) -> Result<(f64, f64), CoreError> {
        let bounds = self.predicted_costs(stream, InterfaceKind::NaturalLanguage)?;
        let n = stream.items;
        let k = self.stages();
        let plan = DagPlan::new(&self.topo, n);
        let mut lower = 0.0_f64;
        let mut total_hi = 0.0_f64;
        // path[u][p]: longest lower-bound path ending at job p of
        // stage u, swept in topological order.
        let mut path: Vec<Vec<f64>> = plan.jobs.iter().map(|j| vec![0.0; j.len()]).collect();
        for &u in &plan.order {
            let mut stage_lo = 0.0;
            for p in 0..plan.jobs[u].len() {
                let job = plan.jobs[u][p];
                let (lo, hi) = bounds[job.item][u];
                stage_lo += lo;
                total_hi += hi;
                let upstream = match job.src {
                    None => 0.0,
                    Some((su, sp)) => path[su][sp],
                };
                path[u][p] = upstream + lo;
                lower = lower.max(path[u][p]);
            }
            lower = lower.max(stage_lo / self.topo.stages[u].replicas.max(1) as f64);
        }
        let upper = total_hi + (plan.total_jobs() + n + k) as f64;
        Ok((lower, upper.max(lower)))
    }
}

/// Bounded-buffer pipeline schedule: the earliest feasible start/exit
/// times of each (item, stage) under single-server stages and finite
/// inter-stage buffers, O(items × stages).
///
/// `buffers[j]` is the capacity of the buffer after stage `j`
/// (`usize::MAX` = unbounded). Item `i` may leave stage `j` only once
/// item `i - buffers[j]` has *started* stage `j+1` (freeing a slot);
/// until then it blocks the stage — the recurrence form of the
/// simulator's "finished item keeps occupying its stage".
pub fn pipeline_makespan(costs: &[Vec<f64>], buffers: &[usize]) -> f64 {
    let n = costs.len();
    if n == 0 {
        return 0.0;
    }
    let k = costs[0].len();
    let mut start = vec![vec![0.0_f64; k]; n];
    let mut exit = vec![vec![0.0_f64; k]; n];
    for i in 0..n {
        for j in 0..k {
            let ready = if j == 0 { 0.0 } else { exit[i][j - 1] };
            let free = if i == 0 { 0.0 } else { exit[i - 1][j] };
            start[i][j] = ready.max(free);
            let finish = start[i][j] + costs[i][j].max(1.0);
            exit[i][j] = if j + 1 < k && buffers[j] != usize::MAX && i >= buffers[j] {
                finish.max(start[i - buffers[j]][j + 1])
            } else {
                finish
            };
        }
    }
    exit[n - 1][k - 1]
}

/// One unit of work at one stage: which stream item it carries and
/// which upstream job produced it (`None` at the source). Broadcast
/// fan-in means a stage can process several jobs for the same item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Stream item index.
    pub item: usize,
    /// Producing `(stage, job index)`; `None` for source injections.
    pub src: Option<(usize, usize)>,
}

/// The static routing and job plan of an `n`-item stream through a
/// topology: which out-edge each item takes at every round-robin
/// fan-out, and consequently which jobs every stage processes, in
/// assumed FIFO order (by item, then by in-edge slot).
///
/// The plan is shared by the ground-truth simulator, the composite
/// Petri net (as token route fields guarded by router transitions),
/// the schedule recurrence and the NL bound algebra, so every tier
/// predicts the same traffic.
pub struct DagPlan {
    /// Stage indices in topological order.
    pub order: Vec<usize>,
    /// `route[u][i]`: the out-edge *slot* (index into
    /// `Topology::out_edges(u)`) item `i` takes leaving stage `u`.
    /// `None` when the item never visits `u` or `u` does not
    /// round-robin (single out-edge, broadcast, or terminal).
    pub route: Vec<Vec<Option<usize>>>,
    /// `jobs[v]`: the jobs stage `v` processes, in FIFO order.
    pub jobs: Vec<Vec<Job>>,
}

impl DagPlan {
    /// Plans an `n`-item stream through a validated topology.
    ///
    /// Round-robin slots rotate by each item's *rank* among the
    /// distinct items visiting that stage (not the raw item index), so
    /// nested fan-outs keep balancing instead of aliasing onto one
    /// edge. Broadcast copies of an item inherit the item's route at
    /// every later fan-out (item-affinity): copies take the same path.
    pub fn new(topo: &Topology, n: usize) -> DagPlan {
        let k = topo.stages.len();
        let order = topo.topo_order();
        let source = topo.source();
        let mut route: Vec<Vec<Option<usize>>> = vec![vec![None; n]; k];
        let mut jobs: Vec<Vec<Job>> = vec![Vec::new(); k];
        // (item, in_slot, src_stage, src_job) deliveries, per consumer.
        let mut deliveries: Vec<Vec<(usize, usize, usize, usize)>> = vec![Vec::new(); k];
        for &u in &order {
            if u == source {
                jobs[u] = (0..n).map(|item| Job { item, src: None }).collect();
            } else {
                deliveries[u].sort_by_key(|&(item, slot, _, _)| (item, slot));
                jobs[u] = deliveries[u]
                    .iter()
                    .map(|&(item, _, su, sp)| Job {
                        item,
                        src: Some((su, sp)),
                    })
                    .collect();
            }
            let outs = topo.out_edges(u);
            if outs.is_empty() {
                continue;
            }
            let round_robin = outs.len() > 1 && topo.policy_of(u) == Policy::RoundRobin;
            if round_robin {
                let mut visitors: Vec<usize> = jobs[u].iter().map(|j| j.item).collect();
                visitors.sort_unstable();
                visitors.dedup();
                for (rank, &i) in visitors.iter().enumerate() {
                    route[u][i] = Some(rank % outs.len());
                }
            }
            for (p, job) in jobs[u].iter().enumerate() {
                for (s, &e) in outs.iter().enumerate() {
                    if round_robin && route[u][job.item] != Some(s) {
                        continue;
                    }
                    let v = topo
                        .stage_index(&topo.edges[e].to)
                        .expect("validated topology");
                    let slot = topo
                        .in_edges(v)
                        .iter()
                        .position(|&x| x == e)
                        .expect("edge is an in-edge of its consumer");
                    deliveries[v].push((job.item, slot, u, p));
                }
            }
        }
        DagPlan { order, route, jobs }
    }

    /// Total jobs across all stages (`items × stages` on a chain;
    /// broadcast fan-out adds copies).
    pub fn total_jobs(&self) -> usize {
        self.jobs.iter().map(Vec::len).sum()
    }
}

/// Bounded-buffer schedule recurrence generalized to DAG topologies:
/// the earliest feasible start/departure of every [`Job`] under
/// `replicas[u]`-server stages and finite per-stage input queues
/// (`queues[v]` slots ahead of stage `v`; the source's own queue never
/// binds because its items are all available at time 0).
///
/// The laws mirror [`pipeline_makespan`], per job instead of per item:
/// a job starts once it has arrived (its producer *departed*), its
/// stage's queue discipline admits it (FIFO by plan order), and a
/// server is free (the `replicas`-th previous job departed). It
/// departs when finished *and* its consumer's queue has a slot — a
/// job may leave only once the job `queues[w]` positions ahead of its
/// delivery has started at `w`, the recurrence form of "a finished
/// item keeps occupying its server while downstream is full". Credits
/// against jobs not yet scheduled (same-item positions later in the
/// topological sweep) are skipped optimistically. On a chain this
/// reduces exactly to [`pipeline_makespan`].
///
/// `costs[i][u]` is item `i`'s cost at stage `u`; every job of an item
/// at a stage costs the same. Returns the latest departure.
pub fn dag_makespan(
    costs: &[Vec<f64>],
    plan: &DagPlan,
    replicas: &[usize],
    queues: &[usize],
) -> f64 {
    let n = costs.len();
    if n == 0 {
        return 0.0;
    }
    let k = plan.jobs.len();
    // Reverse map: consumers[u][p] = the (stage, job) deliveries fed by
    // job p of stage u.
    let mut consumers: Vec<Vec<Vec<(usize, usize)>>> = plan
        .jobs
        .iter()
        .map(|j| vec![Vec::new(); j.len()])
        .collect();
    for (w, jobs) in plan.jobs.iter().enumerate() {
        for (q, job) in jobs.iter().enumerate() {
            if let Some((u, p)) = job.src {
                consumers[u][p].push((w, q));
            }
        }
    }
    let mut start: Vec<Vec<f64>> = plan.jobs.iter().map(|j| vec![0.0; j.len()]).collect();
    let mut dep: Vec<Vec<f64>> = start.clone();
    let mut done: Vec<Vec<bool>> = plan.jobs.iter().map(|j| vec![false; j.len()]).collect();
    let mut ptr = vec![0usize; k];
    let mut makespan = 0.0_f64;
    for (i, item_costs) in costs.iter().enumerate() {
        for &u in &plan.order {
            while ptr[u] < plan.jobs[u].len() && plan.jobs[u][ptr[u]].item == i {
                let p = ptr[u];
                ptr[u] += 1;
                let job = plan.jobs[u][p];
                let arrival = match job.src {
                    None => 0.0,
                    Some((su, sp)) => dep[su][sp],
                };
                let fifo = if p == 0 { 0.0 } else { start[u][p - 1] };
                let r = replicas[u].max(1);
                let server = if p >= r { dep[u][p - r] } else { 0.0 };
                start[u][p] = arrival.max(fifo).max(server);
                let finish = start[u][p] + item_costs[u].max(1.0);
                let mut d = finish;
                for &(w, q) in &consumers[u][p] {
                    let cap = queues[w];
                    if cap != usize::MAX && q >= cap && done[w][q - cap] {
                        d = d.max(start[w][q - cap]);
                    }
                }
                dep[u][p] = d;
                done[u][p] = true;
                makespan = makespan.max(d);
            }
        }
    }
    makespan
}

/// Packages a composite makespan as an [`Observation`].
pub fn observation(makespan: u64, items: usize) -> Observation {
    let cycles = Cycles(makespan.max(1));
    Observation::new(cycles, Throughput::of(items as u64, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(c: &str) -> Composite {
        Composite::new(Topology::parse_chain(c).unwrap(), EngineChoice::Compiled).unwrap()
    }

    const STREAM: StreamParams = StreamParams { items: 6, seed: 3 };

    #[test]
    fn composite_net_round_trips_both_engines_and_lints() {
        let mut c = chain("jpeg-decoder:2>protoacc:4");
        let (interp, comp) = c.petri_makespan_both(&STREAM).unwrap();
        assert_eq!(interp, comp, "engines must agree on the composite net");
        assert!(interp > 0);
        let diags = c.lint_net().unwrap();
        assert!(!diags.has_errors(), "{}", diags.render());
    }

    #[test]
    fn boundary_places_keep_queue_capacity_and_lose_sinkness() {
        let c = chain("vta:2>bitcoin-miner:3>protoacc:5");
        let net = c.build_net().unwrap();
        // Boundaries: stage0.out ∪ stage1.in (cap 3), stage1.out ∪
        // stage2.in (cap 5); only the final out remains a sink.
        let places = net.places();
        let find = |name: &str| {
            places
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("no place `{name}` in {places:?}"))
        };
        assert_eq!(find("in").capacity, None);
        assert_eq!(find("out").capacity, Some(3));
        assert!(!find("out").is_sink);
        let mid = find("s1_bitcoin_miner.out");
        assert_eq!(mid.capacity, Some(5));
        assert!(!mid.is_sink);
        let last = find("s2_protoacc.out");
        assert_eq!(last.capacity, None);
        assert!(last.is_sink);
    }

    #[test]
    fn measure_matches_program_recurrence_shape() {
        // The analytic recurrence on the *measured* costs must track
        // the tick simulator closely (they model the same blocking
        // law; the sim adds ~1 hand-off cycle per hop).
        let mut c = chain("vta:2>protoacc:2");
        let costs = c.measured_costs(&STREAM).unwrap();
        let sim = c.simulate(&costs) as f64;
        let analytic = pipeline_makespan(&costs, &c.buffers());
        let slack = (STREAM.items * c.stages() + 8) as f64;
        assert!(
            (sim - analytic).abs() <= slack,
            "sim {sim} vs recurrence {analytic} (slack {slack})"
        );
    }

    #[test]
    fn recurrence_respects_buffer_blocking() {
        // Fast stage feeding a slow stage through a 1-deep buffer: the
        // fast stage must block, so makespan ≈ n * slow.
        let n = 10;
        let costs: Vec<Vec<f64>> = (0..n).map(|_| vec![1.0, 100.0]).collect();
        let bounded = pipeline_makespan(&costs, &[1, usize::MAX]);
        assert!(bounded >= 1000.0, "bounded {bounded}");
        // Unbounded buffers don't change the bottleneck here (stage 2
        // is the bottleneck either way), but the first stage finishes
        // early; makespan identical.
        let unbounded = pipeline_makespan(&costs, &[usize::MAX, usize::MAX]);
        assert!((bounded - unbounded).abs() < 1e-9);
        // Single stage degenerates to a serial sum.
        let serial: Vec<Vec<f64>> = (0..4).map(|_| vec![3.0]).collect();
        assert_eq!(pipeline_makespan(&serial, &[usize::MAX]), 12.0);
        assert_eq!(pipeline_makespan(&[], &[]), 0.0);
    }

    #[test]
    fn nl_bounds_contain_ground_truth() {
        let mut c = chain("vta:2>protoacc:4");
        let (lo, hi) = c.nl_bounds(&STREAM).unwrap();
        let obs = c.measure_stream(&STREAM).unwrap();
        let actual = Metric::Latency.of(&obs);
        assert!(lo <= hi);
        assert!(
            actual <= hi * 1.05,
            "actual {actual} should be ≤ NL upper {hi}"
        );
        assert!(lo > 0.0);
    }

    #[test]
    fn fault_on_one_stage_slows_the_stream() {
        let mut c = chain("vta:2>protoacc:2");
        let clean = Metric::Latency.of(&c.measure_stream(&STREAM).unwrap());
        c.set_fault(1, Some(FaultPlan::backpressure(3, 900, 500)));
        let faulted = Metric::Latency.of(&c.measure_stream(&STREAM).unwrap());
        assert!(
            faulted > clean,
            "faulted {faulted} should exceed clean {clean}"
        );
        c.set_fault(1, None);
        let back = Metric::Latency.of(&c.measure_stream(&STREAM).unwrap());
        assert_eq!(back, clean, "disarming restores the clean measurement");
    }

    #[test]
    fn oversize_streams_are_rejected_not_clamped() {
        // `items = 10000` used to be silently clamped to MAX_ITEMS and
        // answered as if the full stream had been modeled.
        let spec = WorkloadSpec::new("stream").with("items", 10_000.0);
        let err = StreamParams::from_spec(&spec).unwrap_err();
        assert!(err.to_string().contains("4096"), "{err}");
        assert!(err.to_string().contains("10000"), "{err}");
        // The boundary itself is accepted.
        let spec = WorkloadSpec::new("stream").with("items", 4096.0);
        assert_eq!(StreamParams::from_spec(&spec).unwrap().items, 4096);
    }

    #[test]
    fn dag_plan_round_robins_by_rank_with_item_affinity() {
        let topo = Topology::parse_chain("vta:2>(protoacc:2|bitcoin-miner:2)>protoacc:3").unwrap();
        let plan = DagPlan::new(&topo, 6);
        // Items alternate between the two middle stages…
        for i in 0..6 {
            assert_eq!(plan.route[0][i], Some(i % 2));
        }
        // …so each branch serves half the stream, and the join sees
        // every item exactly once.
        assert_eq!(plan.jobs[1].len(), 3);
        assert_eq!(plan.jobs[2].len(), 3);
        assert_eq!(plan.jobs[3].len(), 6);
        assert_eq!(plan.total_jobs(), 6 + 3 + 3 + 6);
        // Join jobs arrive in item order.
        let items: Vec<usize> = plan.jobs[3].iter().map(|j| j.item).collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dag_makespan_reduces_to_pipeline_makespan_on_chains() {
        let topo = Topology::parse_chain("vta:2>protoacc:3>bitcoin-miner:2").unwrap();
        let n = 9;
        let costs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i * 7 % 13 + 1) as f64, (i * 5 % 11 + 2) as f64, 4.0])
            .collect();
        let buffers = [3usize, 2, usize::MAX];
        let chain = pipeline_makespan(&costs, &buffers);
        let plan = DagPlan::new(&topo, n);
        let dag = dag_makespan(&costs, &plan, &[1, 1, 1], &[2, 3, 2]);
        assert_eq!(chain, dag, "DAG recurrence must reduce exactly on chains");
    }

    #[test]
    fn dag_composite_round_trips_both_engines_and_lints() {
        let topo = Topology::parse_chain("vta:2>(protoacc:2|bitcoin-miner:2)>protoacc:3").unwrap();
        let mut c = Composite::new(topo, EngineChoice::Compiled).unwrap();
        let (interp, comp) = c.petri_makespan_both(&STREAM).unwrap();
        assert_eq!(interp, comp, "engines must agree on the branched net");
        assert!(interp > 0);
        let diags = c.lint_net().unwrap();
        assert!(!diags.has_errors(), "{}", diags.render());
    }

    #[test]
    fn dag_tiers_track_ground_truth() {
        let topo = Topology::parse_chain("vta:2>(protoacc:2|bitcoin-miner:2)>protoacc:3").unwrap();
        let mut c = Composite::new(topo, EngineChoice::Compiled).unwrap();
        let actual = Metric::Latency.of(&c.measure_stream(&STREAM).unwrap());
        assert!(actual > 0.0);
        // NL bounds contain the measurement (same tolerance as the
        // chain test: the upper bound is intentionally loose).
        let (lo, hi) = c.nl_bounds(&STREAM).unwrap();
        assert!(lo <= hi);
        assert!(lo > 0.0);
        assert!(actual <= hi * 1.05, "actual {actual} vs NL upper {hi}");
        // The program recurrence models the same blocking law as the
        // DAG simulator; allow hand-off slack per job plus headroom for
        // merge arbitration differences.
        let costs = c.measured_costs(&STREAM).unwrap();
        let sim = c.simulate(&costs) as f64;
        let plan = DagPlan::new(c.topology(), STREAM.items);
        let replicas: Vec<usize> = c.topology().stages.iter().map(|s| s.replicas).collect();
        let queues: Vec<usize> = c.topology().stages.iter().map(|s| s.queue).collect();
        let analytic = dag_makespan(&costs, &plan, &replicas, &queues);
        let slack = (plan.total_jobs() * 4 + 64) as f64;
        assert!(
            (sim - analytic).abs() <= slack,
            "sim {sim} vs recurrence {analytic} (slack {slack})"
        );
    }

    #[test]
    fn broadcast_topology_copies_the_stream() {
        let toml = r#"
            name = "bcast"
            [[stage]]
            instance = "dec"
            accel = "vta"
            queue = 2
            [[stage]]
            instance = "a"
            accel = "protoacc"
            queue = 2
            [[stage]]
            instance = "b"
            accel = "protoacc"
            queue = 2
            [[edge]]
            from = "dec"
            to = "a"
            policy = "broadcast"
            [[edge]]
            from = "dec"
            to = "b"
            policy = "broadcast"
        "#;
        let topo = Topology::parse_toml(toml).unwrap();
        let plan = DagPlan::new(&topo, 4);
        assert_eq!(plan.jobs[1].len(), 4, "each branch sees every item");
        assert_eq!(plan.jobs[2].len(), 4);
        let mut c = Composite::new(topo, EngineChoice::Compiled).unwrap();
        let stream = StreamParams { items: 4, seed: 1 };
        let actual = Metric::Latency.of(&c.measure_stream(&stream).unwrap());
        assert!(actual > 0.0);
        let (interp, comp) = c.petri_makespan_both(&stream).unwrap();
        assert_eq!(interp, comp);
        let (lo, hi) = c.nl_bounds(&stream).unwrap();
        assert!(lo > 0.0 && actual <= hi * 1.05, "{lo}..{hi} vs {actual}");
    }

    #[test]
    fn replicas_speed_up_the_bottleneck_stage() {
        // vta dominates this chain by ~2 orders of magnitude, so
        // doubling *its* servers must show up in every tier.
        let single = Topology::parse_chain("vta:2>bitcoin-miner:4>protoacc:2").unwrap();
        let doubled = Topology::parse_chain("vta*2:2>bitcoin-miner:4>protoacc:2").unwrap();
        let stream = StreamParams { items: 8, seed: 3 };
        let mut c1 = Composite::new(single, EngineChoice::Compiled).unwrap();
        let mut c2 = Composite::new(doubled, EngineChoice::Compiled).unwrap();
        let t1 = Metric::Latency.of(&c1.measure_stream(&stream).unwrap());
        let t2 = Metric::Latency.of(&c2.measure_stream(&stream).unwrap());
        assert!(
            t2 < t1,
            "doubling the bottleneck's servers must cut the makespan ({t2} vs {t1})"
        );
        // The Petri realization agrees (serve transition gets the
        // replica count as its server count).
        let p1 = c1.petri_makespan(&stream).unwrap();
        let p2 = c2.petri_makespan(&stream).unwrap();
        assert!(p2 < p1, "petri replicas must help too ({p2} vs {p1})");
        // And the recurrence's lower tiers see the speedup as well.
        let g1 = c1.program_makespan(&stream).unwrap();
        let g2 = c2.program_makespan(&stream).unwrap();
        assert!(g2 < g1, "recurrence replicas must help ({g2} vs {g1})");
    }

    #[test]
    fn fault_on_a_dag_stage_slows_the_stream() {
        let topo = Topology::parse_chain("vta:2>(protoacc:2|bitcoin-miner:2)>protoacc:3").unwrap();
        let mut c = Composite::new(topo, EngineChoice::Compiled).unwrap();
        let clean = Metric::Latency.of(&c.measure_stream(&STREAM).unwrap());
        c.set_fault(3, Some(FaultPlan::backpressure(2, 900, 500)));
        let faulted = Metric::Latency.of(&c.measure_stream(&STREAM).unwrap());
        assert!(faulted > clean, "faulted {faulted} vs clean {clean}");
        c.set_fault(3, None);
        assert_eq!(
            Metric::Latency.of(&c.measure_stream(&STREAM).unwrap()),
            clean
        );
    }

    #[test]
    fn unknown_spec_kind_is_rejected_at_construction() {
        let mut topo = Topology::parse_chain("vta:2>protoacc:2").unwrap();
        topo.stages[0].kind = "no-such-kind".to_string();
        let err = match Composite::new(topo, EngineChoice::Compiled) {
            Err(e) => e,
            Ok(_) => panic!("bad spec kind must be rejected"),
        };
        assert!(err.to_string().contains("no-such-kind"), "{err}");
    }
}
