//! Example #2: which serialization backend for my RPC stack?
//!
//! The paper's claims to reproduce (§2 Example #2 and §4):
//!
//! * the Optimus-Prime-style engine wins for small objects (≤ ~300 B),
//! * Protoacc wins for large objects (≥ ~4 KB),
//! * Protoacc can *lose to the plain CPU* on small-object workloads,
//! * a datasheet's peak throughput exceeds realistic throughput by a
//!   large factor (the paper quotes 33 Gb/s → 14 Gb/s).

use accel_protoacc::baselines::{
    cpu_serialize_cycles, optimus_effective_bytes_per_cycle, optimus_peak_bytes_per_cycle,
    optimus_serialize_cycles,
};
use accel_protoacc::descriptor::{FieldDesc, FieldKind, Message, MessageDesc};
use accel_protoacc::simx::{ProtoWorkload, ProtoaccSim};
use accel_protoacc::wire;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// System-level cost of one Protoacc invocation: doorbell write,
/// descriptor DMA, completion signal. Charged per message on top of
/// the accelerator's own cycles — this, not the datapath, is why a
/// co-processor loses on small objects (§2 Example #2).
pub const PA_INVOCATION_CYCLES: f64 = 700.0;

/// Per-backend cost of serializing one message, in cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackendCosts {
    /// Wire bytes of the message.
    pub bytes: u64,
    /// Software (Xeon-style) serializer.
    pub cpu: f64,
    /// Optimus-Prime-style engine.
    pub optimus: f64,
    /// Protoacc (measured on the cycle simulator, steady state).
    pub protoacc: f64,
}

impl BackendCosts {
    /// The cheapest backend's name.
    pub fn winner(&self) -> &'static str {
        if self.cpu <= self.optimus && self.cpu <= self.protoacc {
            "cpu"
        } else if self.optimus <= self.protoacc {
            "optimus"
        } else {
            "protoacc"
        }
    }
}

/// Builds a blob message of roughly `payload` bytes (an RPC body).
pub fn blob_message(payload: usize, seed: u64) -> Message {
    MessageDesc::new(
        "rpc_blob",
        vec![
            FieldDesc::single(1, FieldKind::Uint64),
            FieldDesc::single(2, FieldKind::Bytes(payload..payload + 1)),
        ],
    )
    .instantiate(seed)
}

/// Measures all three backends on messages of the given payload size.
pub fn measure_size(payload: usize, seed: u64) -> BackendCosts {
    let msg = blob_message(payload, seed);
    let bytes = wire::encoded_len(&msg) as u64;
    // Protoacc steady state: amortize over a stream of instances.
    let desc = MessageDesc::new(
        "rpc_blob",
        vec![
            FieldDesc::single(1, FieldKind::Uint64),
            FieldDesc::single(2, FieldKind::Bytes(payload..payload + 1)),
        ],
    );
    let mut sim = ProtoaccSim::default();
    let w = ProtoWorkload::of_format(&desc, 24, seed);
    let res = sim.serialize_stream(&w.messages);
    let protoacc = res.total_cycles as f64 / 24.0 + PA_INVOCATION_CYCLES;
    BackendCosts {
        bytes,
        cpu: cpu_serialize_cycles(&msg) as f64,
        optimus: optimus_serialize_cycles(&msg) as f64,
        protoacc,
    }
}

/// Sweeps payload sizes and returns per-size backend costs.
pub fn crossover_sweep(seed: u64) -> Vec<BackendCosts> {
    [
        16usize, 32, 64, 128, 256, 300, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
    ]
    .iter()
    .map(|&p| measure_size(p, seed))
    .collect()
}

/// The §4 gap: the Optimus-Prime-style engine's datasheet peak versus
/// its effective throughput on a realistic small-object RPC mix.
/// Returns `(peak_bytes_per_cycle, effective_bytes_per_cycle)`.
pub fn peak_vs_realistic(seed: u64, samples: usize) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total_bytes = 0.0;
    let mut total_cycles = 0.0;
    for i in 0..samples {
        // Log-normal-ish object sizes centered near ~100 B: mostly
        // small metadata-heavy RPCs, occasionally a bigger blob.
        let exp = rng.gen_range(3.0..9.0f64);
        let payload = crate::pow2_bytes(exp);
        let msg = blob_message(payload, seed ^ (i as u64) << 13);
        total_bytes += wire::encoded_len(&msg) as f64;
        total_cycles += optimus_serialize_cycles(&msg) as f64;
        let _ = optimus_effective_bytes_per_cycle(&msg);
    }
    (optimus_peak_bytes_per_cycle(), total_bytes / total_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_crossover_shape_holds() {
        let sweep = crossover_sweep(42);
        let at = |bytes_at_least: u64| {
            sweep
                .iter()
                .find(|c| c.bytes >= bytes_at_least)
                .expect("sweep covers size")
        };
        // Small objects: Optimus-Prime-style engine beats Protoacc.
        let small = at(100);
        assert_eq!(small.winner(), "optimus", "{small:?}");
        assert!(
            small.protoacc > small.cpu,
            "Protoacc must lose to CPU on small objects"
        );
        // Large objects: Protoacc wins outright.
        let large = at(8192);
        assert_eq!(large.winner(), "protoacc", "{large:?}");
    }

    #[test]
    fn tiny_objects_stay_on_cpu() {
        let sweep = crossover_sweep(7);
        let tiny = &sweep[0];
        assert!(tiny.bytes < 40);
        assert_eq!(tiny.winner(), "cpu", "{tiny:?}");
    }

    #[test]
    fn peak_exceeds_realistic_substantially() {
        let (peak, eff) = peak_vs_realistic(3, 200);
        assert!(
            peak / eff > 1.5,
            "datasheet peak {peak:.3} should exceed realistic {eff:.3}"
        );
        assert!(peak / eff < 10.0, "gap should stay plausible");
    }

    #[test]
    fn winner_logic() {
        let c = BackendCosts {
            bytes: 1,
            cpu: 1.0,
            optimus: 2.0,
            protoacc: 3.0,
        };
        assert_eq!(c.winner(), "cpu");
        let c = BackendCosts {
            bytes: 1,
            cpu: 3.0,
            optimus: 2.0,
            protoacc: 2.5,
        };
        assert_eq!(c.winner(), "optimus");
    }
}
