//! Example #1: SoC design from interfaces alone.
//!
//! The SoC designer has an area budget and a latency (or throughput)
//! requirement for a Bitcoin-miner IP block. With only the vendor's
//! performance interface — no RTL, no simulation — she can enumerate
//! `Loop` configurations, read off area and latency, and pick the
//! smallest block meeting the requirement. The study then *validates*
//! that choice against the cycle-accurate model: the interface's
//! claims are exact, so the design decision is safe.

use accel_bitcoin::interface::program::BitcoinProgramInterface;
use accel_bitcoin::miner::{MineJob, MinerConfig, MinerCycleSim};
use perf_core::CoreError;
use perf_core::GroundTruth;

/// One candidate design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignPoint {
    /// The `Loop` configuration parameter.
    pub loop_: u64,
    /// Area from the interface (kGE).
    pub area_kge: f64,
    /// Per-hash latency from the interface (cycles).
    pub latency: f64,
    /// Hash throughput from the interface (hashes/cycle).
    pub throughput: f64,
}

/// Enumerates all design points via the program interface.
pub fn design_space() -> Result<Vec<DesignPoint>, CoreError> {
    let mut out = Vec::new();
    for l in [1u64, 2, 4, 8, 16, 32, 64, 128] {
        let cfg = MinerConfig::with_loop(l)?;
        let iface = BitcoinProgramInterface::new(cfg)?;
        out.push(DesignPoint {
            loop_: l,
            area_kge: iface.area_kge()?,
            latency: iface.hash_latency()?,
            throughput: 1.0 / iface.hash_latency()?,
        });
    }
    Ok(out)
}

/// Picks the highest-throughput configuration within an area budget,
/// using interface information only.
pub fn pick_within_area(budget_kge: f64) -> Result<Option<DesignPoint>, CoreError> {
    Ok(design_space()?
        .into_iter()
        .filter(|d| d.area_kge <= budget_kge)
        .max_by(|a, b| {
            a.throughput
                .partial_cmp(&b.throughput)
                .unwrap_or(core::cmp::Ordering::Equal)
        }))
}

/// Validates a design point against the cycle-accurate model: returns
/// `(interface_latency, measured_latency)` per hash.
pub fn validate_point(point: &DesignPoint) -> Result<(f64, f64), CoreError> {
    let cfg = MinerConfig::with_loop(point.loop_)?;
    let mut sim = MinerCycleSim::new(cfg);
    // Exhaustive scan of n nonces: per-hash latency = cycles / n.
    let n = 512u32;
    let job = MineJob::random(9, n, 256);
    let obs = sim.measure(&job)?;
    Ok((point.latency, obs.latency.as_f64() / n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_space_is_a_pareto_curve() {
        let space = design_space().unwrap();
        assert_eq!(space.len(), 8);
        for w in space.windows(2) {
            // Larger Loop: less area, more latency.
            assert!(w[1].area_kge < w[0].area_kge);
            assert!(w[1].latency > w[0].latency);
        }
    }

    #[test]
    fn budget_selection_picks_fastest_fitting_block() {
        // Tight budget: only high-Loop (small) blocks fit.
        let small = pick_within_area(120.0).unwrap().expect("some block fits");
        assert!(small.area_kge <= 120.0);
        // Everything fits under a huge budget: pick Loop = 1.
        let big = pick_within_area(1e9).unwrap().unwrap();
        assert_eq!(big.loop_, 1);
        // Impossible budget.
        assert!(pick_within_area(10.0).unwrap().is_none());
    }

    #[test]
    fn interface_claims_validated_by_cycle_model() {
        for point in design_space().unwrap().iter().take(4) {
            let (claimed, measured) = validate_point(point).unwrap();
            // The exhaustive scan amortizes the constant report cost.
            let rel = (claimed - measured).abs() / measured;
            assert!(
                rel < 0.02,
                "Loop {}: claimed {claimed} vs measured {measured}",
                point.loop_
            );
        }
    }
}

// ---------------------------------------------------------------------
// Multi-IP SoC configuration (the full Example #1 question: "which
// accelerator implementations should my SoC include and how big must
// each be?").
// ---------------------------------------------------------------------

/// A candidate IP block: a named implementation with an area cost and
/// an interface-predicted throughput for the SoC's reference workload
/// (jobs per kilocycle; a job is one hash / one image / one message).
#[derive(Clone, Debug, PartialEq)]
pub struct IpBlock {
    /// Implementation name (e.g. `"miner(loop=8)"`).
    pub name: String,
    /// Silicon area in kGE.
    pub area_kge: f64,
    /// Interface-predicted throughput on the reference workload, in
    /// jobs per 1000 cycles.
    pub jobs_per_kcycle: f64,
}

/// The workload mix the SoC must serve: relative demand per function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SocMix {
    /// Share of hashing work.
    pub hash: f64,
    /// Share of image-decode work.
    pub decode: f64,
    /// Share of serialization work.
    pub serialize: f64,
}

/// Candidate implementations per function, all sized from interfaces
/// alone. Lane-scaled variants model "how big must each be": doubling
/// the lanes doubles area and throughput.
pub fn ip_menu() -> Result<[Vec<IpBlock>; 3], CoreError> {
    // Miners: one block per Loop configuration.
    let miners = design_space()?
        .into_iter()
        .map(|d| IpBlock {
            name: format!("miner(loop={})", d.loop_),
            area_kge: d.area_kge,
            jobs_per_kcycle: d.throughput * 1000.0,
        })
        .collect::<Vec<_>>();

    // JPEG decoders: 1/2/4-lane variants; throughput for a reference
    // 128x128 q60 image read off the *program interface*.
    let iface = accel_jpeg::interface::program::JpegProgramInterface::new()?;
    let mut gen = accel_jpeg::ImageGen::new(515);
    let img = gen.gen_sized(128, 128, 60);
    let tput = match perf_core::iface::PerfInterface::predict(
        &iface,
        &img,
        perf_core::iface::Metric::Throughput,
    )? {
        perf_core::Prediction::Point(v) => v,
        perf_core::Prediction::Bounds { min, max } => 0.5 * (min + max),
    };
    let jpeg_blocks = [1u32, 2, 4]
        .iter()
        .map(|&lanes| IpBlock {
            name: format!("jpeg(lanes={lanes})"),
            area_kge: 180.0 * lanes as f64,
            jobs_per_kcycle: tput * 1000.0 * lanes as f64,
        })
        .collect::<Vec<_>>();

    // Serializers: Protoacc-style 1/2-lane variants; throughput for a
    // reference RPC message from its program interface.
    let piface = accel_protoacc::interface::program::ProtoaccProgramInterface::new()?;
    let desc = &accel_protoacc::suite::formats()[26]; // rpc_small.
    let w = accel_protoacc::simx::ProtoWorkload::of_format(desc, 4, 3);
    let ptput = match perf_core::iface::PerfInterface::predict(
        &piface,
        &w,
        perf_core::iface::Metric::Throughput,
    )? {
        perf_core::Prediction::Point(v) => v,
        perf_core::Prediction::Bounds { min, max } => 0.5 * (min + max),
    };
    let ser_blocks = [1u32, 2]
        .iter()
        .map(|&lanes| IpBlock {
            name: format!("protoacc(lanes={lanes})"),
            area_kge: 320.0 * lanes as f64,
            jobs_per_kcycle: ptput * 1000.0 * lanes as f64,
        })
        .collect::<Vec<_>>();

    Ok([miners, jpeg_blocks, ser_blocks])
}

/// A chosen SoC configuration: one block per function.
#[derive(Clone, Debug, PartialEq)]
pub struct SocConfig {
    /// Selected blocks `(miner, jpeg, serializer)`.
    pub blocks: [IpBlock; 3],
}

impl SocConfig {
    /// Total silicon area.
    pub fn area_kge(&self) -> f64 {
        self.blocks.iter().map(|b| b.area_kge).sum()
    }

    /// The mix-weighted service score: the workload's bottleneck
    /// function dominates (a SoC is only as good as its most
    /// oversubscribed block).
    pub fn score(&self, mix: &SocMix) -> f64 {
        let shares = [mix.hash, mix.decode, mix.serialize];
        self.blocks
            .iter()
            .zip(shares)
            .map(|(b, s)| {
                if s == 0.0 {
                    f64::INFINITY
                } else {
                    b.jobs_per_kcycle / s
                }
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// Exhaustively picks the best SoC configuration under an area budget,
/// using interface information only.
pub fn configure_soc(budget_kge: f64, mix: &SocMix) -> Result<Option<SocConfig>, CoreError> {
    let [miners, jpegs, sers] = ip_menu()?;
    let mut best: Option<SocConfig> = None;
    for m in &miners {
        for j in &jpegs {
            for s in &sers {
                let cfg = SocConfig {
                    blocks: [m.clone(), j.clone(), s.clone()],
                };
                if cfg.area_kge() > budget_kge {
                    continue;
                }
                if best.as_ref().is_none_or(|b| cfg.score(mix) > b.score(mix)) {
                    best = Some(cfg);
                }
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod soc_config_tests {
    use super::*;

    fn mix() -> SocMix {
        SocMix {
            hash: 0.2,
            decode: 0.5,
            serialize: 0.3,
        }
    }

    #[test]
    fn menu_built_from_interfaces() {
        let [miners, jpegs, sers] = ip_menu().unwrap();
        assert_eq!(miners.len(), 8);
        assert_eq!(jpegs.len(), 3);
        assert_eq!(sers.len(), 2);
        // Lane scaling: double area, double throughput.
        assert!((jpegs[1].area_kge / jpegs[0].area_kge - 2.0).abs() < 1e-9);
        assert!((jpegs[1].jobs_per_kcycle / jpegs[0].jobs_per_kcycle - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_budgets_never_score_worse() {
        let mut last = 0.0;
        for budget in [700.0, 1000.0, 1500.0, 3000.0] {
            let cfg = configure_soc(budget, &mix())
                .unwrap()
                .unwrap_or_else(|| panic!("budget {budget} should be feasible"));
            assert!(cfg.area_kge() <= budget);
            let score = cfg.score(&mix());
            assert!(
                score >= last,
                "budget {budget}: score {score} regressed below {last}"
            );
            last = score;
        }
    }

    #[test]
    fn infeasible_budget_reports_none() {
        assert!(configure_soc(100.0, &mix()).unwrap().is_none());
    }

    #[test]
    fn mix_shifts_the_allocation() {
        // A hash-heavy mix should spend more area on the miner than a
        // decode-heavy mix does, under the same budget.
        let hash_heavy = SocMix {
            hash: 0.8,
            decode: 0.1,
            serialize: 0.1,
        };
        let decode_heavy = SocMix {
            hash: 0.05,
            decode: 0.9,
            serialize: 0.05,
        };
        let budget = 1500.0;
        let a = configure_soc(budget, &hash_heavy).unwrap().unwrap();
        let b = configure_soc(budget, &decode_heavy).unwrap().unwrap();
        assert!(
            a.blocks[0].area_kge >= b.blocks[0].area_kge,
            "hash-heavy miner {} vs decode-heavy miner {}",
            a.blocks[0].name,
            b.blocks[0].name
        );
        assert!(
            a.blocks[1].area_kge <= b.blocks[1].area_kge,
            "hash-heavy jpeg {} vs decode-heavy jpeg {}",
            a.blocks[1].name,
            b.blocks[1].name
        );
    }
}
