//! Cross-accelerator workload scenarios.
//!
//! The paper motivates performance interfaces with three developer
//! stories; this crate turns each into a runnable study:
//!
//! * [`rpc`] — Example #2: choosing a serialization backend. Sweeps
//!   RPC object sizes across the CPU baseline, the Optimus-Prime-style
//!   engine and Protoacc, locating the crossover points and the
//!   datasheet-peak vs realistic-throughput gap (§4).
//! * [`soc`] — Example #1: an SoC designer sizing a Bitcoin-miner IP
//!   block purely from its interface (area/latency trade), validated
//!   against the cycle model.
//! * [`offload`] — the §5 strawman: predicting end-to-end application
//!   performance by replaying recorded responses with
//!   interface-predicted latencies.
//! * [`smartnic`] — §5's composition case: an accelerator net fused
//!   with a reusable interconnect component, exposing the
//!   bandwidth-bound regime the engine-only net cannot see.

pub mod offload;
pub mod rpc;
pub mod smartnic;
pub mod soc;

/// `2^exp` as a byte count, rounding to the nearest integer before the
/// cast.
///
/// Payload sweeps draw `exp` from a continuous range; a plain
/// `powf(exp) as usize` truncates, so an `exp` that is mathematically
/// integral but lands at `1023.999…` in floating point yields 1023
/// instead of 1024 and the sweep misses its power-of-two sizes.
pub fn pow2_bytes(exp: f64) -> usize {
    2.0f64.powf(exp).round() as usize
}

#[cfg(test)]
mod tests {
    use super::pow2_bytes;

    #[test]
    fn integral_exponents_yield_exact_powers_of_two() {
        for k in 0..=20u32 {
            let got = pow2_bytes(k as f64);
            assert_eq!(got, 1usize << k, "2^{k}");
            assert!(got.is_power_of_two());
        }
        // A value representable only approximately must still round to
        // the true power of two, not truncate below it.
        let nearly_ten = (1024.0f64).log2(); // 10.0 up to rounding error
        assert_eq!(pow2_bytes(nearly_ten), 1024);
    }

    #[test]
    fn fractional_exponents_round_to_nearest() {
        assert_eq!(pow2_bytes(7.3), 158); // 2^7.3 = 157.58…
        assert_eq!(pow2_bytes(0.0), 1);
    }
}
