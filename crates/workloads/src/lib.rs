//! Cross-accelerator workload scenarios.
//!
//! The paper motivates performance interfaces with three developer
//! stories; this crate turns each into a runnable study:
//!
//! * [`rpc`] — Example #2: choosing a serialization backend. Sweeps
//!   RPC object sizes across the CPU baseline, the Optimus-Prime-style
//!   engine and Protoacc, locating the crossover points and the
//!   datasheet-peak vs realistic-throughput gap (§4).
//! * [`soc`] — Example #1: an SoC designer sizing a Bitcoin-miner IP
//!   block purely from its interface (area/latency trade), validated
//!   against the cycle model.
//! * [`offload`] — the §5 strawman: predicting end-to-end application
//!   performance by replaying recorded responses with
//!   interface-predicted latencies.
//! * [`smartnic`] — §5's composition case: an accelerator net fused
//!   with a reusable interconnect component, exposing the
//!   bandwidth-bound regime the engine-only net cannot see.

pub mod offload;
pub mod rpc;
pub mod smartnic;
pub mod soc;
