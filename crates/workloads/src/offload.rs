//! The §5 strawman: end-to-end offload prediction by record/replay.
//!
//! "The application is first run with a software implementation of the
//! accelerator's API and all requests and responses are saved. The
//! application is then re-run with a simple simulator that spins idly
//! for the latency computed by the interface for the input request and
//! then returns the correct, saved response."
//!
//! The application here is an RPC server loop: per request it does some
//! application work, then serializes a response. The study runs it
//! three ways — software serializer (record), interface-predicted
//! replay, and accelerator-simulated replay (truth) — and reports how
//! close the interface's end-to-end prediction lands.

use accel_protoacc::baselines::cpu_serialize_cycles;
use accel_protoacc::descriptor::{FieldDesc, FieldKind, Message, MessageDesc};
use accel_protoacc::interface::program::ProtoaccProgramInterface;
use accel_protoacc::simx::{ProtoWorkload, ProtoaccSim};
use perf_core::iface::{Metric, PerfInterface};
use perf_core::{CoreError, GroundTruth, Prediction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One recorded request: application work plus the response message.
#[derive(Clone, Debug)]
pub struct Request {
    /// Application cycles before serialization.
    pub app_cycles: u64,
    /// The response to serialize.
    pub response: Message,
}

/// Generates a request trace with a mixed response-size distribution.
pub fn record_trace(n: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let exp = rng.gen_range(5.0..12.0f64);
            let payload = crate::pow2_bytes(exp);
            let desc = MessageDesc::new(
                "resp",
                vec![
                    FieldDesc::single(1, FieldKind::Uint64),
                    FieldDesc::single(2, FieldKind::Str(8..24)),
                    FieldDesc::single(3, FieldKind::Bytes(payload..payload + 1)),
                ],
            );
            Request {
                app_cycles: rng.gen_range(500..5_000),
                response: desc.instantiate(seed ^ (i as u64) << 9),
            }
        })
        .collect()
}

/// End-to-end totals of the three runs, in cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OffloadStudy {
    /// Software serializer baseline (the recorded run).
    pub software: u64,
    /// Replay with interface-predicted serialization latencies.
    pub predicted_offload: f64,
    /// Replay against the accelerator's cycle model (ground truth).
    pub actual_offload: u64,
}

impl OffloadStudy {
    /// Relative error of the end-to-end prediction.
    pub fn prediction_error(&self) -> f64 {
        (self.predicted_offload - self.actual_offload as f64).abs() / self.actual_offload as f64
    }

    /// The answer the developer wanted: end-to-end speedup from
    /// offloading, as predicted and as measured.
    pub fn speedups(&self) -> (f64, f64) {
        (
            self.software as f64 / self.predicted_offload,
            self.software as f64 / self.actual_offload as f64,
        )
    }
}

/// Fixed per-invocation cost of crossing to the accelerator
/// (doorbell + descriptor ring).
pub const OFFLOAD_OVERHEAD: u64 = 180;

/// Runs the three-way study on a trace.
pub fn run_study(trace: &[Request]) -> Result<OffloadStudy, CoreError> {
    let iface = ProtoaccProgramInterface::new()?;
    let mut sim = ProtoaccSim::default();

    let mut software = 0u64;
    let mut predicted = 0.0f64;
    let mut actual = 0u64;
    for req in trace {
        software += req.app_cycles + cpu_serialize_cycles(&req.response);

        let w = ProtoWorkload {
            messages: vec![req.response.clone()],
            name: "req".into(),
        };
        // Interface: latency bounds midpoint stands in for the
        // expected value, as the strawman prescribes.
        let pred = match iface.predict(&w, Metric::Latency)? {
            Prediction::Point(v) => v,
            Prediction::Bounds { min, max } => 0.5 * (min + max),
        };
        predicted += req.app_cycles as f64 + OFFLOAD_OVERHEAD as f64 + pred;

        let obs = sim.measure(&w)?;
        actual += req.app_cycles + OFFLOAD_OVERHEAD + obs.latency.get();
    }
    Ok(OffloadStudy {
        software,
        predicted_offload: predicted,
        actual_offload: actual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_runs_and_prediction_is_usable() {
        let trace = record_trace(60, 11);
        let s = run_study(&trace).unwrap();
        assert!(s.software > 0);
        assert!(s.actual_offload > 0);
        // The strawman is approximate (bounds midpoint), but must land
        // within a factor usable for design decisions.
        assert!(
            s.prediction_error() < 0.5,
            "end-to-end prediction error {:.3}",
            s.prediction_error()
        );
    }

    #[test]
    fn offload_pays_off_for_large_responses() {
        // Heavy payloads: accelerator should beat the CPU serializer.
        let mut trace = record_trace(150, 12);
        // Keep only requests with big responses.
        trace.retain(|r| accel_protoacc::wire::encoded_len(&r.response) > 1024);
        assert!(
            trace.len() >= 5,
            "trace retains {} big requests",
            trace.len()
        );
        let s = run_study(&trace).unwrap();
        let (pred_speedup, actual_speedup) = s.speedups();
        assert!(actual_speedup > 1.0, "actual speedup {actual_speedup:.2}");
        // Predicted and measured speedups agree directionally.
        assert!((pred_speedup > 1.0) == (actual_speedup > 1.0));
    }

    #[test]
    fn trace_is_deterministic() {
        let a = record_trace(5, 3);
        let b = record_trace(5, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app_cycles, y.app_cycles);
            assert_eq!(x.response, y.response);
        }
    }
}
