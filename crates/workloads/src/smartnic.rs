//! §5: composing an accelerator's net with a shared-interconnect
//! component (the SmartNIC case).
//!
//! "A Petri net for a SmartNIC will likely need to include a model of
//! the interconnect, since it can have a significant impact on
//! performance." This study builds a serialization engine's net, then
//! composes it with the reusable interconnect component from
//! `perf_petri::components`. For small messages the engine is the
//! bottleneck and both nets agree; for large messages the interconnect
//! saturates first — a regime the engine-only net cannot see and the
//! composed net predicts.

use perf_core::CoreError;
use perf_iface_lang::Value;
use perf_petri::components;
use perf_petri::compose::compose;
use perf_petri::engine::{Engine, Options};
use perf_petri::net::Net;
use perf_petri::text;
use perf_petri::token::Token;

/// Per-message engine cost: setup plus per-byte work.
const ENGINE_SETUP: u64 = 40;
/// Engine processing bandwidth, bytes per cycle.
const ENGINE_BYTES_PER_CYCLE: u64 = 32;
/// Interconnect flit size in bytes.
pub const NOC_FLIT_BYTES: u64 = 16;
/// Interconnect cycles per flit (shared channel).
pub const NOC_FLIT_CYCLES: u64 = 2;

/// The serialization engine's own net (no interconnect).
pub fn engine_net() -> Result<Net, CoreError> {
    let src = format!(
        "net ser_engine\n\
         place msgs\n\
         sink out\n\
         trans serialize\n\
         \x20 in msgs\n\
         \x20 out out\n\
         \x20 delay {ENGINE_SETUP} + t.bytes / {ENGINE_BYTES_PER_CYCLE}\n\
         \x20 emit out {{ bytes: t.bytes, miss: 0 }}\n"
    );
    Ok(text::parse(&src)?)
}

/// The engine composed with the shared interconnect component.
pub fn smartnic_net() -> Result<Net, CoreError> {
    let engine = engine_net()?;
    let noc = components::interconnect(NOC_FLIT_BYTES, NOC_FLIT_CYCLES)?;
    Ok(compose(engine, noc, &[("out", "req")], "smartnic")?)
}

/// Steady-state cycles per message predicted by `net` for a stream of
/// `n` messages of `bytes` wire bytes.
pub fn cycles_per_message(net: &Net, bytes: u64, n: usize) -> Result<f64, CoreError> {
    let src = net
        .place_id("msgs")
        .ok_or_else(|| CoreError::Artifact("net lacks msgs".into()))?;
    let mut e = Engine::new(net, Options::default());
    for _ in 0..n {
        e.inject(
            src,
            Token::at(
                Value::record([("bytes", Value::from(bytes)), ("miss", Value::num(0.0))]),
                0,
            ),
        );
    }
    let res = e.run().map_err(CoreError::from)?;
    Ok(res.makespan as f64 / n as f64)
}

/// One row of the study: message size, engine-only prediction, and the
/// composed (engine + interconnect) prediction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NocStudyRow {
    /// Wire bytes per message.
    pub bytes: u64,
    /// Cycles/message predicted by the engine-only net.
    pub engine_only: f64,
    /// Cycles/message predicted by the composed net.
    pub composed: f64,
}

impl NocStudyRow {
    /// How much performance the engine-only net over-promises.
    pub fn optimism(&self) -> f64 {
        self.composed / self.engine_only
    }
}

/// Sweeps message sizes through both nets.
pub fn sweep(n_msgs: usize) -> Result<Vec<NocStudyRow>, CoreError> {
    let engine = engine_net()?;
    let nic = smartnic_net()?;
    [64u64, 128, 256, 512, 1024, 2048, 4096]
        .iter()
        .map(|&bytes| {
            Ok(NocStudyRow {
                bytes,
                engine_only: cycles_per_message(&engine, bytes, n_msgs)?,
                composed: cycles_per_message(&nic, bytes, n_msgs)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interconnect_invisible_for_small_messages() {
        let rows = sweep(40).unwrap();
        let small = rows.first().unwrap();
        // 64 B: engine needs 40+2 cycles, NoC 8 cycles, fully
        // overlapped across messages -> engine-bound, nets agree.
        assert!(
            small.optimism() < 1.1,
            "small messages should agree: {small:?}"
        );
    }

    #[test]
    fn interconnect_dominates_large_messages() {
        let rows = sweep(40).unwrap();
        let large = rows.last().unwrap();
        // 4096 B: engine 40+128 cycles vs NoC 512 cycles/message — the
        // engine-only net over-promises by ~3x.
        assert!(
            large.optimism() > 2.0,
            "large messages must be NoC-bound: {large:?}"
        );
    }

    #[test]
    fn crossover_is_monotone() {
        let rows = sweep(30).unwrap();
        for w in rows.windows(2) {
            assert!(
                w[1].optimism() >= w[0].optimism() * 0.95,
                "optimism should grow with size: {w:?}"
            );
        }
    }
}
