//! Service counters and latency histograms.
//!
//! One [`ServiceMetrics`] instance lives behind the server's shared
//! state; workers record into it under a short lock, and observers
//! take [`MetricsSnapshot`]s for reports, the `svcbench` JSON, or a
//! [`TraceSink`] export.

use perf_core::iface::InterfaceKind;
use perf_core::stats;
use perf_core::trace::{json_escape, TraceSink};

/// Index of a representation in the per-representation arrays.
fn ridx(kind: InterfaceKind) -> usize {
    match kind {
        InterfaceKind::NaturalLanguage => 0,
        InterfaceKind::Program => 1,
        InterfaceKind::PetriNet => 2,
    }
}

const REPR_NAMES: [&str; 3] = ["nl", "program", "petri"];

/// Mutable counter state (kept behind the server's mutex).
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    /// Requests offered to admission.
    pub submitted: u64,
    /// Requests dropped because the queue was full.
    pub rejected: u64,
    /// Requests whose deadline expired in the queue.
    pub expired: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that failed in a backend.
    pub errors: u64,
    /// Answers served from the result cache.
    pub cache_hits: u64,
    /// Answers served from a representation below the requested
    /// ceiling.
    pub degraded: u64,
    /// Highest queue depth observed at admission.
    pub queue_high_water: usize,
    /// Times a worker returned from the admission condvar wait.
    pub worker_wakes: u64,
    /// Wakes that found the queue empty and re-parked — thundering-
    /// herd evidence (more workers woken than there were bursts).
    pub spurious_wakes: u64,
    /// Bursts of jobs claimed from the queue.
    pub bursts: u64,
    /// Total time workers spent acquiring the queue lock,
    /// microseconds — lock-hold / lock-contention evidence.
    pub lock_wait_us: f64,
    /// Per-representation evaluation times in microseconds (cache
    /// misses only; hits cost no evaluation).
    pub service_us: [Vec<f64>; 3],
    /// Queueing delays in microseconds.
    pub queue_us: Vec<f64>,
}

impl ServiceMetrics {
    /// Records one served answer.
    pub fn record_answer(
        &mut self,
        repr: InterfaceKind,
        degraded: bool,
        cache_hit: bool,
        queue_us: f64,
        service_us: f64,
    ) {
        self.completed += 1;
        if degraded {
            self.degraded += 1;
        }
        if cache_hit {
            self.cache_hits += 1;
        } else {
            self.service_us[ridx(repr)].push(service_us);
        }
        self.queue_us.push(queue_us);
    }

    /// Merges a burst-local accumulator into this one. Workers record
    /// into a thread-local `ServiceMetrics` while serving a burst and
    /// merge once at the end, so the shared instance costs one lock
    /// per burst instead of per query. Admission-side counters
    /// (`submitted`, `rejected`, `queue_high_water`) are maintained by
    /// the submitting thread and summed/maxed here for completeness.
    pub fn merge(&mut self, other: &ServiceMetrics) {
        self.submitted += other.submitted;
        self.rejected += other.rejected;
        self.expired += other.expired;
        self.completed += other.completed;
        self.errors += other.errors;
        self.cache_hits += other.cache_hits;
        self.degraded += other.degraded;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.worker_wakes += other.worker_wakes;
        self.spurious_wakes += other.spurious_wakes;
        self.bursts += other.bursts;
        self.lock_wait_us += other.lock_wait_us;
        for (mine, theirs) in self.service_us.iter_mut().zip(&other.service_us) {
            mine.extend_from_slice(theirs);
        }
        self.queue_us.extend_from_slice(&other.queue_us);
    }

    /// Takes an immutable summary of the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let per_repr = std::array::from_fn(|i| {
            let xs = &self.service_us[i];
            ReprStats {
                count: xs.len() as u64,
                mean_us: stats::mean(xs),
                p50_us: stats::percentile(xs, 50.0),
                p99_us: stats::percentile(xs, 99.0),
            }
        });
        MetricsSnapshot {
            submitted: self.submitted,
            rejected: self.rejected,
            expired: self.expired,
            completed: self.completed,
            errors: self.errors,
            cache_hits: self.cache_hits,
            degraded: self.degraded,
            queue_high_water: self.queue_high_water,
            worker_wakes: self.worker_wakes,
            spurious_wakes: self.spurious_wakes,
            bursts: self.bursts,
            lock_wait_us: self.lock_wait_us,
            queue_p50_us: stats::percentile(&self.queue_us, 50.0),
            queue_p99_us: stats::percentile(&self.queue_us, 99.0),
            per_repr,
        }
    }
}

/// Latency summary for one representation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReprStats {
    /// Evaluations (cache misses) recorded.
    pub count: u64,
    /// Mean evaluation time, microseconds.
    pub mean_us: f64,
    /// Median evaluation time, microseconds.
    pub p50_us: f64,
    /// 99th-percentile evaluation time, microseconds.
    pub p99_us: f64,
}

/// An immutable summary of the service counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests offered to admission.
    pub submitted: u64,
    /// Admission rejects (queue full).
    pub rejected: u64,
    /// Queue-deadline expiries.
    pub expired: u64,
    /// Successful answers.
    pub completed: u64,
    /// Backend errors.
    pub errors: u64,
    /// Cache hits among answers.
    pub cache_hits: u64,
    /// Degraded answers.
    pub degraded: u64,
    /// Highest observed queue depth.
    pub queue_high_water: usize,
    /// Worker condvar wakes.
    pub worker_wakes: u64,
    /// Wakes that found the queue empty (herd evidence).
    pub spurious_wakes: u64,
    /// Bursts claimed from the queue.
    pub bursts: u64,
    /// Total worker time spent acquiring the queue lock, microseconds.
    pub lock_wait_us: f64,
    /// Median queueing delay, microseconds.
    pub queue_p50_us: f64,
    /// 99th-percentile queueing delay, microseconds.
    pub queue_p99_us: f64,
    /// Per-representation evaluation-latency summaries, indexed
    /// nl / program / petri.
    pub per_repr: [ReprStats; 3],
}

impl MetricsSnapshot {
    /// Cache hit rate among completed answers (0 when none completed).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.completed as f64
        }
    }

    /// Renders the snapshot as a JSON object (used by `svcbench` and
    /// `repro --serve` stats lines).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"submitted\":{},\"rejected\":{},\"expired\":{},\"completed\":{},\
             \"errors\":{},\"cache_hits\":{},\"degraded\":{},\"queue_high_water\":{},\
             \"worker_wakes\":{},\"spurious_wakes\":{},\"bursts\":{},\"lock_wait_us\":{:.1},\
             \"queue_p50_us\":{:.1},\"queue_p99_us\":{:.1},\"per_repr\":{{",
            self.submitted,
            self.rejected,
            self.expired,
            self.completed,
            self.errors,
            self.cache_hits,
            self.degraded,
            self.queue_high_water,
            self.worker_wakes,
            self.spurious_wakes,
            self.bursts,
            self.lock_wait_us,
            self.queue_p50_us,
            self.queue_p99_us,
        );
        for (i, name) in REPR_NAMES.iter().enumerate() {
            let r = &self.per_repr[i];
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{{\"count\":{},\"mean_us\":{:.1},\"p50_us\":{:.1},\"p99_us\":{:.1}}}",
                json_escape(name),
                r.count,
                r.mean_us,
                r.p50_us,
                r.p99_us
            ));
        }
        s.push_str("}}");
        s
    }

    /// Exports the snapshot into a [`TraceSink`] as one span per
    /// representation plus counter events.
    pub fn trace_into(&self, sink: &mut dyn TraceSink) {
        if !sink.is_enabled() {
            return;
        }
        for (i, name) in REPR_NAMES.iter().enumerate() {
            let r = &self.per_repr[i];
            sink.span(
                "service",
                name,
                &format!(
                    "count={} p50_us={:.1} p99_us={:.1}",
                    r.count, r.p50_us, r.p99_us
                ),
                (r.mean_us * 1_000.0) as u64,
            );
        }
        sink.event(0, "service", &format!("completed={}", self.completed));
        sink.event(0, "service", &format!("rejected={}", self.rejected));
        sink.event(0, "service", &format!("expired={}", self.expired));
        sink.event(
            0,
            "service",
            &format!("cache_hit_rate={:.3}", self.cache_hit_rate()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::trace::MemorySink;

    #[test]
    fn snapshot_aggregates_and_renders() {
        let mut m = ServiceMetrics {
            submitted: 10,
            ..Default::default()
        };
        m.record_answer(InterfaceKind::PetriNet, false, false, 5.0, 100.0);
        m.record_answer(InterfaceKind::PetriNet, false, true, 2.0, 0.0);
        m.record_answer(InterfaceKind::NaturalLanguage, true, false, 1.0, 2.0);
        let s = m.snapshot();
        assert_eq!(s.completed, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.per_repr[2].count, 1);
        assert!((s.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        let json = s.to_json();
        assert!(json.contains("\"petri\""));
        assert!(crate::json::Json::parse(&json).is_ok());
        let mut sink = MemorySink::new();
        s.trace_into(&mut sink);
        assert!(sink.len() >= 4);
    }
}
