//! Wire types of the query protocol.
//!
//! One JSON value per line in each direction. A request line is either
//! a single request object or an array of them (a batch); every
//! request produces exactly one response line. Requests look like:
//!
//! ```json
//! {"id": 1, "accel": "jpeg-decoder", "metric": "latency",
//!  "repr": "auto", "deadline_us": 2000,
//!  "spec": {"kind": "sized", "width": 128, "height": 64, "quality": 60}}
//! ```
//!
//! and responses like:
//!
//! ```json
//! {"id": 1, "accel": "jpeg-decoder", "metric": "latency", "status": "ok",
//!  "repr_used": "petri", "degraded": false, "cache_hit": false,
//!  "engine": "compiled",
//!  "prediction": {"lo": 12733.0, "hi": 12733.0},
//!  "budget": {"avg": 0.01, "max": 0.05, "atol": 8.0},
//!  "queue_us": 13.0, "service_us": 480.0}
//! ```
//!
//! Every `spec` key other than `"kind"` is a numeric workload field,
//! passed through verbatim to the accelerator backend.

use crate::json::Json;
use perf_core::iface::{InterfaceKind, Metric};
use perf_core::query::{EngineChoice, WorkloadSpec};
use perf_core::trace::json_escape;
use perf_core::{Budget, Prediction};

/// Which representation the client wants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReprChoice {
    /// Most precise representation the deadline affords (the service
    /// may degrade down the ladder).
    Auto,
    /// Exactly this representation — still subject to degradation
    /// below it when the deadline is short.
    Ceiling(InterfaceKind),
}

/// One performance query.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Accelerator name (see [`crate::registry::accelerators`]).
    pub accel: String,
    /// The workload description.
    pub spec: WorkloadSpec,
    /// Which metric to predict.
    pub metric: Metric,
    /// Representation ceiling.
    pub repr: ReprChoice,
    /// Per-request deadline in microseconds from admission, if any.
    pub deadline_us: Option<u64>,
}

/// What happened to one request.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Answered.
    Answer {
        /// The predicted value or interval.
        prediction: Prediction,
        /// The representation that actually produced the answer.
        repr_used: InterfaceKind,
        /// Whether the service degraded below the requested ceiling.
        degraded: bool,
        /// The conformance budget the answer is accountable to.
        budget: Budget,
        /// Whether the answer came from the result cache.
        cache_hit: bool,
        /// Which evaluation substrate the serving backend runs on
        /// (also reported for cache hits: the cached entry was
        /// produced by a backend of this service's configured
        /// engine).
        engine: EngineChoice,
        /// Microseconds spent queued before a worker picked it up.
        queue_us: f64,
        /// Microseconds of evaluation (0 for cache hits).
        service_us: f64,
    },
    /// Dropped at admission: the queue was full.
    Rejected,
    /// The deadline expired before a worker could serve it.
    Expired,
    /// The backend failed (unknown accelerator, malformed spec, ...).
    Error(String),
}

/// One response, correlated to its request by `id`.
#[derive(Clone, Debug)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the accelerator name.
    pub accel: String,
    /// Echo of the metric.
    pub metric: Metric,
    /// The result.
    pub outcome: Outcome,
}

/// Short wire name of a representation.
pub fn repr_name(kind: InterfaceKind) -> &'static str {
    match kind {
        InterfaceKind::NaturalLanguage => "nl",
        InterfaceKind::Program => "program",
        InterfaceKind::PetriNet => "petri",
    }
}

fn parse_repr(s: &str) -> Result<ReprChoice, String> {
    match s {
        "auto" => Ok(ReprChoice::Auto),
        "nl" => Ok(ReprChoice::Ceiling(InterfaceKind::NaturalLanguage)),
        "program" => Ok(ReprChoice::Ceiling(InterfaceKind::Program)),
        "petri" => Ok(ReprChoice::Ceiling(InterfaceKind::PetriNet)),
        other => Err(format!(
            "unknown repr `{other}` (expected auto|nl|program|petri)"
        )),
    }
}

fn parse_metric(s: &str) -> Result<Metric, String> {
    match s {
        "latency" => Ok(Metric::Latency),
        "throughput" => Ok(Metric::Throughput),
        other => Err(format!(
            "unknown metric `{other}` (expected latency|throughput)"
        )),
    }
}

impl Request {
    /// Decodes one request from a parsed JSON object.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let obj = v.as_obj().ok_or("request must be a JSON object")?;
        let id = v.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let accel = v
            .get("accel")
            .and_then(Json::as_str)
            .ok_or("missing string field `accel`")?
            .to_string();
        let metric = parse_metric(
            v.get("metric")
                .and_then(Json::as_str)
                .ok_or("missing string field `metric`")?,
        )?;
        let repr = match v.get("repr").and_then(Json::as_str) {
            Some(s) => parse_repr(s)?,
            None => ReprChoice::Auto,
        };
        let deadline_us = v.get("deadline_us").and_then(Json::as_f64).map(|d| {
            if d.is_finite() && d > 0.0 {
                d as u64
            } else {
                0
            }
        });
        let spec_v = v.get("spec").ok_or("missing object field `spec`")?;
        let spec_obj = spec_v.as_obj().ok_or("`spec` must be a JSON object")?;
        let kind = spec_v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("`spec` lacks string field `kind`")?;
        let mut spec = WorkloadSpec::new(kind);
        for (k, val) in spec_obj {
            if k == "kind" {
                continue;
            }
            let n = val
                .as_f64()
                .ok_or_else(|| format!("spec field `{k}` must be a number"))?;
            spec = spec.with(k.clone(), n);
        }
        let _ = obj;
        Ok(Request {
            id,
            accel,
            spec,
            metric,
            repr,
            deadline_us,
        })
    }

    /// Decodes a request line: a single object or an array (batch).
    pub fn batch_from_line(line: &str) -> Result<Vec<Request>, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        match &v {
            Json::Arr(items) => items.iter().map(Request::from_json).collect(),
            _ => Ok(vec![Request::from_json(&v)?]),
        }
    }

    /// Encodes the request as one JSON line (used by the load
    /// generator and the protocol doc-tests).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"id\":{},\"accel\":\"{}\",\"metric\":\"{}\",\"repr\":\"{}\"",
            self.id,
            json_escape(&self.accel),
            match self.metric {
                Metric::Latency => "latency",
                Metric::Throughput => "throughput",
            },
            match self.repr {
                ReprChoice::Auto => "auto",
                ReprChoice::Ceiling(k) => repr_name(k),
            }
        );
        if let Some(d) = self.deadline_us {
            s.push_str(&format!(",\"deadline_us\":{d}"));
        }
        s.push_str(&format!(
            ",\"spec\":{{\"kind\":\"{}\"",
            json_escape(&self.spec.kind)
        ));
        for (name, value) in &self.spec.fields {
            s.push_str(&format!(",\"{}\":{}", json_escape(name), fmt_f64(*value)));
        }
        s.push_str("}}");
        s
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl Response {
    /// Encodes the response as one JSON line.
    pub fn to_json(&self) -> String {
        let metric = match self.metric {
            Metric::Latency => "latency",
            Metric::Throughput => "throughput",
        };
        let head = format!(
            "{{\"id\":{},\"accel\":\"{}\",\"metric\":\"{metric}\"",
            self.id,
            json_escape(&self.accel)
        );
        match &self.outcome {
            Outcome::Answer {
                prediction,
                repr_used,
                degraded,
                budget,
                cache_hit,
                engine,
                queue_us,
                service_us,
            } => {
                let (lo, hi) = match prediction {
                    Prediction::Point(v) => (*v, *v),
                    Prediction::Bounds { min, max } => (*min, *max),
                };
                format!(
                    "{head},\"status\":\"ok\",\"repr_used\":\"{}\",\"degraded\":{degraded},\
                     \"cache_hit\":{cache_hit},\"engine\":\"{}\",\
                     \"prediction\":{{\"lo\":{lo},\"hi\":{hi}}},\
                     \"budget\":{{\"avg\":{},\"max\":{},\"atol\":{}}},\
                     \"queue_us\":{queue_us:.1},\"service_us\":{service_us:.1}}}",
                    repr_name(*repr_used),
                    engine.name(),
                    budget.avg,
                    budget.max,
                    budget.atol,
                )
            }
            Outcome::Rejected => format!("{head},\"status\":\"rejected\"}}"),
            Outcome::Expired => format!("{head},\"status\":\"expired\"}}"),
            Outcome::Error(msg) => format!(
                "{head},\"status\":\"error\",\"message\":\"{}\"}}",
                json_escape(msg)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let line = r#"{"id": 3, "accel": "vta", "metric": "throughput", "repr": "petri",
                       "deadline_us": 1500, "spec": {"kind": "random", "seed": 4, "max_blocks": 24}}"#;
        let reqs = Request::batch_from_line(line).unwrap();
        assert_eq!(reqs.len(), 1);
        let r = &reqs[0];
        assert_eq!(r.id, 3);
        assert_eq!(r.accel, "vta");
        assert_eq!(r.metric, Metric::Throughput);
        assert_eq!(r.repr, ReprChoice::Ceiling(InterfaceKind::PetriNet));
        assert_eq!(r.deadline_us, Some(1500));
        assert_eq!(r.spec.get("seed"), Some(4.0));
        // Re-encode and re-parse: same content.
        let again = Request::batch_from_line(&r.to_json()).unwrap();
        assert_eq!(again[0].spec.fingerprint(), r.spec.fingerprint());
    }

    #[test]
    fn batch_lines_parse_to_many_requests() {
        let line = r#"[{"id":1,"accel":"vta","metric":"latency","spec":{"kind":"finish_only"}},
                      {"id":2,"accel":"vta","metric":"latency","spec":{"kind":"single","seed":1}}]"#;
        let reqs = Request::batch_from_line(line).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].id, 2);
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        assert!(Request::batch_from_line("{}").is_err());
        assert!(
            Request::batch_from_line(r#"{"accel":"vta","metric":"nope","spec":{"kind":"x"}}"#)
                .is_err()
        );
        assert!(Request::batch_from_line(
            r#"{"accel":"vta","metric":"latency","spec":{"kind":"x","bad":"str"}}"#
        )
        .is_err());
    }

    #[test]
    fn response_json_mentions_budget_and_repr() {
        let r = Response {
            id: 9,
            accel: "jpeg-decoder".into(),
            metric: Metric::Latency,
            outcome: Outcome::Answer {
                prediction: Prediction::bounds(10.0, 20.0),
                repr_used: InterfaceKind::NaturalLanguage,
                degraded: true,
                budget: Budget::new(0.8, 3.0).with_atol(32.0),
                cache_hit: false,
                engine: EngineChoice::Compiled,
                queue_us: 5.0,
                service_us: 1.0,
            },
        };
        let s = r.to_json();
        assert!(s.contains("\"repr_used\":\"nl\""));
        assert!(s.contains("\"engine\":\"compiled\""));
        assert!(s.contains("\"degraded\":true"));
        assert!(s.contains("\"atol\":32"));
        // The line must itself be valid JSON.
        assert!(crate::json::Json::parse(&s).is_ok());
    }
}
