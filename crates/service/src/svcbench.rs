//! The `svcbench` load generator.
//!
//! Measures end-to-end service throughput — submission, queueing,
//! evaluation, response delivery — across a sweep of worker counts and
//! client batch sizes, and writes the `BENCH_service.json` artifact
//! (see `EXPERIMENTS.md`, experiment E13).
//!
//! The workload is a fixed corpus of light-to-moderate specs over all
//! four accelerators, cycled so each distinct query repeats — the
//! design-space-exploration shape the serving layer exists for, where
//! neighboring probes re-ask earlier points and the fingerprint cache
//! converts the repeats into lookups. Every sweep point runs the same
//! request sequence against a fresh service, so points differ only in
//! worker count, batch size, and whether the cache was pre-warmed.
//!
//! The headline number compares steady-state batched serving (warm
//! cache, batch ≥ 64) against the cold single-query baseline (one
//! worker, one request in flight, empty cache — the one-shot CLI
//! regime the service replaces): the speedup from batch-amortizing
//! the per-query round-trip and serving repeated probes from the
//! fingerprint cache instead of re-evaluating. Both phases appear
//! labeled in the output so the comparison is explicit.

use crate::protocol::{Outcome, ReprChoice, Request, Response};
use crate::server::{Service, ServiceConfig};
use perf_core::iface::Metric;
use perf_core::query::{EngineChoice, WorkloadSpec};
use std::sync::mpsc;
use std::time::Instant;

/// One measured sweep point.
#[derive(Clone, Debug)]
pub struct BenchPoint {
    /// Worker threads serving this point.
    pub workers: usize,
    /// Client batch size (requests in flight per submission round).
    pub batch: usize,
    /// Whether the service was warmed with one unmeasured pass over
    /// the request sequence first (steady-state serving) or started
    /// cold (every query pays full evaluation, like the one-shot CLI
    /// regime the service replaces).
    pub warm: bool,
    /// Which evaluation substrate the point's workers ran on.
    pub engine: EngineChoice,
    /// Which workload topology the point drove: `"mixed-4"` for the
    /// standard four-accelerator corpus, or a pipeline chain spec
    /// (e.g. `"jpeg-decoder:4>protoacc:8"`) for composite rows.
    pub topology: String,
    /// Requests offered.
    pub offered: u64,
    /// Requests answered.
    pub completed: u64,
    /// Cache hits among the answers.
    pub cache_hits: u64,
    /// Wall-clock time for the whole point, microseconds.
    pub wall_us: f64,
    /// End-to-end throughput, queries per second.
    pub qps: f64,
    /// Median queueing delay, microseconds.
    pub queue_p50_us: f64,
    /// 99th-percentile queueing delay, microseconds.
    pub queue_p99_us: f64,
    /// Median evaluation time across representations, microseconds
    /// (cache misses only).
    pub service_p50_us: f64,
    /// 99th-percentile evaluation time, microseconds.
    pub service_p99_us: f64,
    /// Worker condvar wakes during the measured pass.
    pub worker_wakes: u64,
    /// Wakes that found the queue empty (thundering-herd evidence).
    pub spurious_wakes: u64,
    /// Total worker time spent acquiring the queue lock, microseconds
    /// (lock-hold evidence, summed across workers).
    pub lock_wait_us: f64,
}

impl BenchPoint {
    /// Renders the point as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"batch\":{},\"warm\":{},\"engine\":\"{}\",\
             \"topology\":\"{}\",\
             \"offered\":{},\"completed\":{},\
             \"cache_hits\":{},\"wall_us\":{:.1},\"qps\":{:.1},\
             \"queue_p50_us\":{:.1},\"queue_p99_us\":{:.1},\
             \"service_p50_us\":{:.1},\"service_p99_us\":{:.1},\
             \"worker_wakes\":{},\"spurious_wakes\":{},\"lock_wait_us\":{:.1}}}",
            self.workers,
            self.batch,
            self.warm,
            self.engine.name(),
            perf_core::trace::json_escape(&self.topology),
            self.offered,
            self.completed,
            self.cache_hits,
            self.wall_us,
            self.qps,
            self.queue_p50_us,
            self.queue_p99_us,
            self.service_p50_us,
            self.service_p99_us,
            self.worker_wakes,
            self.spurious_wakes,
            self.lock_wait_us,
        )
    }
}

/// The full sweep report behind `BENCH_service.json`.
#[derive(Clone, Debug)]
pub struct ServiceBenchReport {
    /// Every measured point.
    pub points: Vec<BenchPoint>,
    /// The warm batched worker-scaling curve: `(workers, qps)` at
    /// batch 64, ascending worker count. Warm throughput must not
    /// *fall* as workers are added (the single-map cache write lock
    /// once made 8 workers slower than 2); [`ServiceBenchReport::pass`]
    /// enforces that.
    pub worker_scaling: Vec<(usize, f64)>,
    /// Hardware threads available when the sweep ran. Worker counts
    /// beyond this oversubscribe the machine, so the scaling gate in
    /// [`ServiceBenchReport::pass`] ignores those points (on a 1-core
    /// CI box, 8 workers *must* lose throughput to context switching
    /// — that is the scheduler's doing, not a cache-contention bug).
    pub parallelism: usize,
    /// Single-query throughput: one worker, batch 1, cold cache — the
    /// one-shot-CLI regime the service replaces, where every query
    /// pays a full evaluation plus a round trip.
    pub baseline_qps: f64,
    /// Best steady-state batched throughput at batch ≥ 64 (warmed
    /// service).
    pub best_batched_qps: f64,
    /// `best_batched_qps / baseline_qps`.
    pub speedup: f64,
    /// Dequeue-path diagnosis for the widest warm batched point:
    /// names whether worker scaling was limited by a condvar
    /// thundering herd (spurious wakes), by queue-lock hold time
    /// (workers blocked acquiring the mutex), or neither
    /// (`"healthy"` / `"oversubscribed"`). Reported alongside the
    /// scaling gate so a failure says *which* pathology regressed.
    pub scaling_diagnosis: String,
}

/// Classifies the dequeue path of one measured point. Herd: a large
/// share of condvar wakes found no work (more workers woken than
/// bursts available). Lock-hold: workers spent a meaningful share of
/// the point's wall time blocked acquiring the queue mutex.
pub fn diagnose_point(p: &BenchPoint, parallelism: usize) -> String {
    if p.workers > parallelism {
        return format!(
            "oversubscribed: {} workers on {} hw thread(s); scheduler, not the dequeue path",
            p.workers, parallelism
        );
    }
    let wakes = p.worker_wakes.max(1);
    let spurious_share = p.spurious_wakes as f64 / wakes as f64;
    let per_worker_lock_share = (p.lock_wait_us / p.workers.max(1) as f64) / p.wall_us.max(1.0);
    if spurious_share > 0.3 && p.spurious_wakes > 16 {
        format!(
            "condvar-herd: {}/{} wakes found an empty queue",
            p.spurious_wakes, p.worker_wakes
        )
    } else if per_worker_lock_share > 0.2 {
        format!(
            "lock-hold: workers spent {:.0}% of wall time acquiring the queue lock",
            per_worker_lock_share * 100.0
        )
    } else {
        format!(
            "healthy: {:.0}% spurious wakes, {:.0}% of wall in queue-lock waits",
            spurious_share * 100.0,
            per_worker_lock_share * 100.0
        )
    }
}

impl ServiceBenchReport {
    /// Whether the sweep met the serving-layer scaling target:
    /// ≥ 10x single-query throughput when batched across workers, and
    /// a warm scaling curve where the widest configuration *that fits
    /// the machine* (workers ≤ [`parallelism`](Self::parallelism)) is
    /// no slower than the narrowest (adding workers the hardware can
    /// actually run must never cost warm throughput — the single-map
    /// cache write lock once made 8 workers slower than 2; a generous
    /// 0.9 factor absorbs run-to-run noise). Oversubscribed points
    /// stay in the artifact but do not gate.
    pub fn pass(&self) -> bool {
        self.speedup >= 10.0 && self.scaling_ok()
    }

    /// The scaling half of [`pass`](Self::pass), split out so the
    /// rendered verdict can name which gate failed.
    pub fn scaling_ok(&self) -> bool {
        let within: Vec<f64> = self
            .worker_scaling
            .iter()
            .filter(|&&(w, _)| w <= self.parallelism.max(1))
            .map(|&(_, qps)| qps)
            .collect();
        match (within.first(), within.last()) {
            (Some(&first_qps), Some(&last_qps)) => last_qps >= 0.9 * first_qps,
            _ => true,
        }
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&p.to_json());
        }
        s.push_str("],\"worker_scaling\":[");
        for (i, (w, qps)) in self.worker_scaling.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"workers\":{w},\"qps\":{qps:.1}}}"));
        }
        s.push_str(&format!(
            "],\"parallelism\":{},\"baseline_qps\":{:.1},\"best_batched_qps\":{:.1},\
             \"speedup\":{:.2},\"scaling_diagnosis\":\"{}\",\"pass\":{}}}",
            self.parallelism,
            self.baseline_qps,
            self.best_batched_qps,
            self.speedup,
            perf_core::trace::json_escape(&self.scaling_diagnosis),
            self.pass()
        ));
        s
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "service load sweep (identical request sequence per point)\n\
             phase  engine       topology                 workers  batch  offered     qps  cache_hits  queue_p99_us  service_p99_us\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "{:5}  {:11}  {:23}  {:7}  {:5}  {:7}  {:6.0}  {:10}  {:12.1}  {:14.1}\n",
                if p.warm { "warm" } else { "cold" },
                p.engine.name(),
                p.topology,
                p.workers,
                p.batch,
                p.offered,
                p.qps,
                p.cache_hits,
                p.queue_p99_us,
                p.service_p99_us
            ));
        }
        if !self.worker_scaling.is_empty() {
            s.push_str("warm batched scaling:");
            for (w, qps) in &self.worker_scaling {
                s.push_str(&format!("  {w}w={qps:.0}qps"));
            }
            s.push_str(&format!("  ({} hw thread(s))\n", self.parallelism));
        }
        s.push_str(&format!("dequeue path: {}\n", self.scaling_diagnosis));
        let verdict = match (self.speedup >= 10.0, self.scaling_ok()) {
            (true, true) => "pass: >= 10x, scaling ok".to_string(),
            (false, _) => "FAIL: speedup < 10x".to_string(),
            (true, false) => format!(
                "FAIL: warm throughput fell while adding workers within {} hw thread(s) — {}",
                self.parallelism, self.scaling_diagnosis
            ),
        };
        s.push_str(&format!(
            "baseline (cold, 1 worker, unbatched):  {:.0} qps\n\
             best batched (warm, batch >= 64):      {:.0} qps\n\
             speedup: {:.1}x ({verdict})\n",
            self.baseline_qps, self.best_batched_qps, self.speedup,
        ));
        s
    }
}

/// One fresh spec for corpus position `i`: light-to-moderate
/// workloads across all four accelerators, parameterized by `i` so the
/// working set far exceeds the cache on cold runs — the
/// design-space-exploration regime where most probes are new points.
fn fresh_spec(i: u64) -> (&'static str, WorkloadSpec) {
    let seed = i as f64;
    match i % 4 {
        0 => (
            "vta",
            WorkloadSpec::new("random")
                .with("seed", seed)
                .with("max_blocks", 4.0 + (i % 3) as f64),
        ),
        1 => (
            "jpeg-decoder",
            WorkloadSpec::new("flat")
                .with("blocks", 4.0 + (i % 24) as f64)
                .with("bits", 48.0 + (i % 7) as f64 * 16.0)
                .with("nonzero", 4.0 + (i % 9) as f64),
        ),
        2 => (
            "bitcoin-miner",
            WorkloadSpec::new("scan")
                .with("loop", (1u64 << (i % 4)) as f64)
                .with("seed", seed)
                .with("nonce_count", 8.0 + (i % 16) as f64)
                .with("difficulty", 4096.0),
        ),
        _ => (
            "protoacc",
            WorkloadSpec::new("format")
                .with("idx", (i % 3) as f64)
                .with("n", 2.0 + (i % 12) as f64)
                .with("seed", seed),
        ),
    }
}

/// Every `REVISIT`-th request re-asks an earlier point (a cache hit
/// once that point has been served), modeling an explorer circling
/// back to known-good neighbors.
const REVISIT: u64 = 4;

/// Builds the benchmark request sequence: `total` requests, mostly
/// fresh specs with a deterministic fraction of revisits, alternating
/// latency and throughput queries.
pub fn corpus(total: u64) -> Vec<Request> {
    (0..total)
        .map(|i| {
            let key = if i > REVISIT && i % REVISIT == 0 {
                // Revisit a recent earlier point (same metric parity
                // so the cache key matches).
                i - REVISIT * 2
            } else {
                i
            };
            let (accel, spec) = fresh_spec(key);
            Request {
                id: i,
                accel: accel.into(),
                spec,
                metric: if key % 2 == 0 {
                    Metric::Latency
                } else {
                    Metric::Throughput
                },
                repr: ReprChoice::Auto,
                deadline_us: None,
            }
        })
        .collect()
}

/// The composite chain svcbench drives for its pipeline-tagged rows:
/// cheap stages so the cold pass stays CI-friendly while still
/// exercising the `pipe:` registry path end to end.
pub const PIPELINE_CHAIN: &str = "vta:2>protoacc:4";

/// The branched composite svcbench drives for its DAG-tagged rows: a
/// round-robin fan-out across two parallel serializer branches merged
/// back into one, so the benchmark covers router/merge composition and
/// the DAG recurrence through the same `pipe:` path.
pub const PIPELINE_DAG: &str = "vta:2>(protoacc:2|bitcoin-miner:2)>protoacc:3";

/// Builds a pipeline-query sequence: `stream` specs against one
/// composite topology, with the same revisit structure as [`corpus`]
/// so warm passes measure the cache path for composite answers too.
pub fn pipeline_corpus(total: u64, chain: &str) -> Vec<Request> {
    (0..total)
        .map(|i| {
            let key = if i > REVISIT && i % REVISIT == 0 {
                i - REVISIT * 2
            } else {
                i
            };
            Request {
                id: i,
                accel: format!("pipe:{chain}"),
                spec: WorkloadSpec::new("stream")
                    .with("items", 2.0 + (key % 6) as f64)
                    .with("seed", (key % 16) as f64),
                metric: if key % 2 == 0 {
                    Metric::Latency
                } else {
                    Metric::Throughput
                },
                repr: ReprChoice::Auto,
                deadline_us: None,
            }
        })
        .collect()
}

/// Submits the whole request sequence `batch` at a time (each round
/// waits for all of its responses before the next — batch 1 is the
/// single-query round-trip regime) and asserts every response is an
/// answer.
fn drive(svc: &Service, batch: usize, reqs: &[Request]) {
    let (tx, rx) = mpsc::channel::<Response>();
    for chunk in reqs.chunks(batch.max(1)) {
        if chunk.len() == 1 {
            svc.submit(chunk[0].clone(), tx.clone());
        } else {
            svc.submit_batch(chunk.to_vec(), &tx);
        }
        for _ in 0..chunk.len() {
            let resp = rx.recv().expect("service dropped a response");
            assert!(
                matches!(resp.outcome, Outcome::Answer { .. }),
                "svcbench request failed: {:?}",
                resp.outcome
            );
        }
    }
}

/// Runs one sweep point against a fresh service with `workers`
/// threads. With `warm`, the request sequence is driven once
/// unmeasured first so the measured pass sees a populated cache —
/// steady-state serving; cold points start empty, the one-shot-CLI
/// regime where each distinct query pays a full evaluation.
pub fn run_point(workers: usize, batch: usize, warm: bool, reqs: &[Request]) -> BenchPoint {
    run_point_on(workers, batch, warm, reqs, "mixed-4")
}

/// [`run_point`] with an explicit topology tag for the row (the
/// standard corpus is `"mixed-4"`; pipeline rows carry their chain).
pub fn run_point_on(
    workers: usize,
    batch: usize,
    warm: bool,
    reqs: &[Request],
    topology: &str,
) -> BenchPoint {
    let cfg = ServiceConfig {
        workers,
        queue_cap: batch.max(64) * 2,
        // Hold the whole working set so warm points measure the hit
        // path, not eviction churn.
        cache_cap: reqs.len().max(64) * 2,
        ..Default::default()
    };
    let engine = cfg.engine;
    let svc = Service::start(cfg);
    if warm {
        drive(&svc, batch.max(64), reqs);
        // Workers merge burst-local counters after sending the burst's
        // responses, so wait for the warm-up's accounting to settle
        // before resetting. Counters and percentiles should describe
        // the measured pass only; the populated cache is the warm-up's
        // entire legacy.
        while svc.metrics().completed < reqs.len() as u64 {
            std::thread::yield_now();
        }
        svc.reset_metrics();
    }
    let t0 = Instant::now();
    drive(&svc, batch, reqs);
    let wall_us = t0.elapsed().as_micros() as f64;
    let snap = svc.shutdown();
    // Evaluation-latency percentiles pooled across representations.
    let (mut p50, mut p99, mut evals) = (0.0f64, 0.0f64, 0u64);
    for r in &snap.per_repr {
        if r.count > evals {
            evals = r.count;
            p50 = r.p50_us;
            p99 = r.p99_us;
        }
    }
    BenchPoint {
        workers,
        batch,
        warm,
        engine,
        topology: topology.to_string(),
        offered: reqs.len() as u64,
        completed: snap.completed,
        cache_hits: snap.cache_hits,
        wall_us,
        qps: snap.completed as f64 / (wall_us / 1e6),
        queue_p50_us: snap.queue_p50_us,
        queue_p99_us: snap.queue_p99_us,
        service_p50_us: p50,
        service_p99_us: p99,
        worker_wakes: snap.worker_wakes,
        spurious_wakes: snap.spurious_wakes,
        lock_wait_us: snap.lock_wait_us,
    }
}

/// Runs the full sweep. `quick` shrinks the request count for CI.
///
/// Cold points model the pre-service regime: every probe launched
/// fresh, paying full evaluation. Warm points model the steady state
/// the server exists to reach — a long-lived process whose cache
/// already holds the explorer's neighborhood. The headline speedup is
/// warm batched serving over the cold unbatched baseline; both phases
/// are labeled in the table and the JSON so the comparison is
/// explicit.
pub fn run(quick: bool) -> ServiceBenchReport {
    let total = if quick { 1_024 } else { 8_192 };
    let reqs = corpus(total);
    let sweep: &[(usize, usize, bool)] = &[
        (1, 1, false),
        (8, 64, false),
        (1, 1, true),
        (1, 64, true),
        (2, 64, true),
        (4, 64, true),
        (8, 64, true),
        (8, 256, true),
    ];
    let mut points: Vec<BenchPoint> = sweep
        .iter()
        .map(|&(w, b, warm)| run_point(w, b, warm, &reqs))
        .collect();
    // Pipeline-tagged rows: the same cold-vs-warm story told over a
    // composite `pipe:` chain, so the benchmark covers the pipeline
    // query path too. Kept out of the headline stats below — those
    // compare like with like over the mixed single-accel corpus.
    let preqs = pipeline_corpus(if quick { 96 } else { 384 }, PIPELINE_CHAIN);
    points.push(run_point_on(1, 1, false, &preqs, PIPELINE_CHAIN));
    points.push(run_point_on(2, 64, true, &preqs, PIPELINE_CHAIN));
    // DAG-tagged row: one warm batched point over the fan-out/fan-in
    // topology (cold composite DAG evaluation is the dominant cost, so
    // a single point keeps the bench CI-friendly).
    let dreqs = pipeline_corpus(if quick { 48 } else { 192 }, PIPELINE_DAG);
    points.push(run_point_on(2, 64, true, &dreqs, PIPELINE_DAG));
    let mixed = |p: &&BenchPoint| p.topology == "mixed-4";
    let baseline_qps = points
        .iter()
        .filter(mixed)
        .find(|p| p.workers == 1 && p.batch == 1 && !p.warm)
        .map(|p| p.qps)
        .unwrap_or(f64::NAN);
    let best_batched_qps = points
        .iter()
        .filter(mixed)
        .filter(|p| p.batch >= 64 && p.warm)
        .map(|p| p.qps)
        .fold(f64::NAN, f64::max);
    let mut worker_scaling: Vec<(usize, f64)> = points
        .iter()
        .filter(mixed)
        .filter(|p| p.warm && p.batch == 64)
        .map(|p| (p.workers, p.qps))
        .collect();
    worker_scaling.sort_by_key(|&(w, _)| w);
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Diagnose the widest warm batched point — the configuration the
    // scaling gate judges — so a regression names its pathology.
    let scaling_diagnosis = points
        .iter()
        .filter(mixed)
        .filter(|p| p.warm && p.batch == 64)
        .max_by_key(|p| p.workers)
        .map(|p| diagnose_point(p, parallelism))
        .unwrap_or_else(|| "no warm batched point measured".to_string());
    ServiceBenchReport {
        points,
        worker_scaling,
        parallelism,
        baseline_qps,
        best_batched_qps,
        speedup: best_batched_qps / baseline_qps,
        scaling_diagnosis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_mixed() {
        let a = corpus(128);
        let b = corpus(128);
        assert_eq!(a.len(), 128);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.accel, y.accel);
            assert_eq!(x.spec.fingerprint(), y.spec.fingerprint());
        }
        let accels: std::collections::HashSet<&str> = a.iter().map(|r| r.accel.as_str()).collect();
        assert_eq!(accels.len(), 4, "all four accelerators appear");
    }

    #[test]
    fn one_point_completes_everything() {
        let reqs = corpus(64);
        let p = run_point(2, 16, false, &reqs);
        assert_eq!(p.completed, 64);
        assert!(p.qps > 0.0);
        let json = p.to_json();
        assert!(crate::json::Json::parse(&json).is_ok());
    }

    #[test]
    fn scaling_gate_ignores_oversubscribed_points() {
        let report = ServiceBenchReport {
            points: Vec::new(),
            worker_scaling: vec![(1, 1000.0), (2, 1500.0), (4, 1600.0), (8, 700.0)],
            parallelism: 4,
            baseline_qps: 10.0,
            best_batched_qps: 1600.0,
            speedup: 160.0,
            scaling_diagnosis: "healthy".to_string(),
        };
        assert!(
            report.scaling_ok(),
            "the 8-worker point oversubscribes 4 threads and must not gate"
        );
        assert!(report.pass());
        let single_core = ServiceBenchReport {
            parallelism: 1,
            ..report
        };
        assert!(
            single_core.scaling_ok(),
            "on one thread only the 1-worker point is within the machine"
        );
        let regressed = ServiceBenchReport {
            worker_scaling: vec![(1, 1000.0), (2, 1500.0), (4, 800.0)],
            parallelism: 4,
            ..single_core
        };
        assert!(
            !regressed.scaling_ok(),
            "a warm-throughput fall within the machine must gate"
        );
        assert!(!regressed.pass());
    }

    #[test]
    fn pipeline_point_is_tagged_and_completes() {
        let reqs = pipeline_corpus(12, PIPELINE_CHAIN);
        assert!(reqs
            .iter()
            .all(|r| r.accel == format!("pipe:{PIPELINE_CHAIN}")));
        assert!(reqs.iter().all(|r| r.spec.kind == "stream"));
        let p = run_point_on(1, 4, false, &reqs, PIPELINE_CHAIN);
        assert_eq!(p.completed, 12);
        assert_eq!(p.topology, PIPELINE_CHAIN);
        assert!(p.qps > 0.0);
        assert!(p.to_json().contains(PIPELINE_CHAIN));
    }

    #[test]
    fn dag_pipeline_point_is_tagged_and_completes() {
        let reqs = pipeline_corpus(8, PIPELINE_DAG);
        assert!(reqs
            .iter()
            .all(|r| r.accel == format!("pipe:{PIPELINE_DAG}")));
        let p = run_point_on(1, 4, false, &reqs, PIPELINE_DAG);
        assert_eq!(p.completed, 8);
        assert_eq!(p.topology, PIPELINE_DAG);
        assert!(p.qps > 0.0);
    }

    #[test]
    fn warm_point_serves_mostly_from_cache() {
        let reqs = corpus(64);
        let p = run_point(1, 16, true, &reqs);
        assert_eq!(p.completed, 64);
        assert!(
            p.cache_hits >= 60,
            "warmed pass should be nearly all hits, got {}",
            p.cache_hits
        );
    }
}
