//! The accelerator backend registry.
//!
//! Backends hold interpreter state that is not `Send` (the `.pi`
//! interpreter shares ASTs via `Rc`), so the registry hands out
//! *constructors*: each worker thread builds its own backend set and
//! keeps it for the thread's lifetime.

use accel_bitcoin::interface::service::BitcoinService;
use accel_jpeg::interface::service::JpegService;
use accel_protoacc::interface::service::ProtoaccService;
use accel_vta::interface::service::VtaService;
use perf_core::query::{EngineChoice, QueryBackend};
use perf_core::CoreError;

/// Names of every accelerator the service can answer for.
pub fn accelerators() -> &'static [&'static str] {
    &["jpeg-decoder", "bitcoin-miner", "protoacc", "vta"]
}

/// Builds the backend for one accelerator name on the compiled
/// evaluation substrate (the service default).
pub fn backend(accel: &str) -> Result<Box<dyn QueryBackend>, CoreError> {
    backend_with_engine(accel, EngineChoice::Compiled)
}

/// Builds the backend for one accelerator name with an explicit
/// evaluation substrate (`ServiceConfig::engine` threads through
/// here, so A/B runs and the interpreted fallback stay one flag away).
pub fn backend_with_engine(
    accel: &str,
    engine: EngineChoice,
) -> Result<Box<dyn QueryBackend>, CoreError> {
    match accel {
        "jpeg-decoder" => Ok(Box::new(JpegService::with_engine(engine)?)),
        "bitcoin-miner" => Ok(Box::new(BitcoinService::with_engine(engine))),
        "protoacc" => Ok(Box::new(ProtoaccService::with_engine(engine))),
        "vta" => Ok(Box::new(VtaService::with_engine(engine))),
        other => Err(CoreError::Artifact(format!(
            "unknown accelerator `{other}` (have: {})",
            accelerators().join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_accelerator_constructs() {
        for name in accelerators() {
            let b = backend(name).unwrap();
            assert_eq!(&b.accel(), name);
            assert_eq!(b.engine(), EngineChoice::Compiled);
            assert!(!b.spec_kinds().is_empty());
        }
        assert!(backend("nope").is_err());
    }

    #[test]
    fn explicit_engine_is_reported_by_every_backend() {
        for name in accelerators() {
            for engine in [EngineChoice::Interpreted, EngineChoice::Compiled] {
                let b = backend_with_engine(name, engine).unwrap();
                assert_eq!(b.engine(), engine, "{name}");
            }
        }
    }
}
