//! The accelerator backend registry.
//!
//! Backends hold interpreter state that is not `Send` (the `.pi`
//! interpreter shares ASTs via `Rc`), so the registry hands out
//! *constructors*: each worker thread builds its own backend set and
//! keeps it for the thread's lifetime.

use accel_bitcoin::interface::service::BitcoinService;
use accel_jpeg::interface::service::JpegService;
use accel_protoacc::interface::service::ProtoaccService;
use accel_vta::interface::service::VtaService;
use perf_core::query::QueryBackend;
use perf_core::CoreError;

/// Names of every accelerator the service can answer for.
pub fn accelerators() -> &'static [&'static str] {
    &["jpeg-decoder", "bitcoin-miner", "protoacc", "vta"]
}

/// Builds the backend for one accelerator name.
pub fn backend(accel: &str) -> Result<Box<dyn QueryBackend>, CoreError> {
    match accel {
        "jpeg-decoder" => Ok(Box::new(JpegService::new()?)),
        "bitcoin-miner" => Ok(Box::new(BitcoinService::new())),
        "protoacc" => Ok(Box::new(ProtoaccService::new())),
        "vta" => Ok(Box::new(VtaService::new())),
        other => Err(CoreError::Artifact(format!(
            "unknown accelerator `{other}` (have: {})",
            accelerators().join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_accelerator_constructs() {
        for name in accelerators() {
            let b = backend(name).unwrap();
            assert_eq!(&b.accel(), name);
            assert!(!b.spec_kinds().is_empty());
        }
        assert!(backend("nope").is_err());
    }
}
