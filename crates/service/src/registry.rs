//! The accelerator backend registry.
//!
//! Backends hold interpreter state that is not `Send` (the `.pi`
//! interpreter shares ASTs via `Rc`), so the registry hands out
//! *constructors*: each worker thread builds its own backend set and
//! keeps it for the thread's lifetime.

use perf_compose::PipelineBackend;
use perf_core::query::{EngineChoice, QueryBackend};
use perf_core::CoreError;

/// Names of every single accelerator the service can answer for.
/// Composite pipelines are additionally served under dynamic
/// `pipe:<chain>` names (e.g. `pipe:jpeg-decoder:4>protoacc:8`).
pub fn accelerators() -> &'static [&'static str] {
    &["jpeg-decoder", "bitcoin-miner", "protoacc", "vta"]
}

/// Builds the backend for one accelerator name on the compiled
/// evaluation substrate (the service default).
pub fn backend(accel: &str) -> Result<Box<dyn QueryBackend>, CoreError> {
    backend_with_engine(accel, EngineChoice::Compiled)
}

/// Builds the backend for one accelerator name with an explicit
/// evaluation substrate (`ServiceConfig::engine` threads through
/// here, so A/B runs and the interpreted fallback stay one flag away).
pub fn backend_with_engine(
    accel: &str,
    engine: EngineChoice,
) -> Result<Box<dyn QueryBackend>, CoreError> {
    if let Some(chain) = accel.strip_prefix("pipe:") {
        return Ok(Box::new(PipelineBackend::from_chain(chain, engine)?));
    }
    // The single-accelerator constructor table lives in `perf-compose`
    // (which needs it to build pipeline stages without a dependency
    // cycle back into this crate).
    perf_compose::accel_backend(accel, engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_accelerator_constructs() {
        for name in accelerators() {
            let b = backend(name).unwrap();
            assert_eq!(&b.accel(), name);
            assert_eq!(b.engine(), EngineChoice::Compiled);
            assert!(!b.spec_kinds().is_empty());
        }
        assert!(backend("nope").is_err());
    }

    #[test]
    fn pipe_prefix_builds_a_composite_backend() {
        let mut b = backend("pipe:vta:2>protoacc:4").unwrap();
        assert_eq!(b.accel(), "pipe:vta:2>protoacc:4");
        assert_eq!(b.spec_kinds(), &["stream"]);
        let spec = perf_core::query::WorkloadSpec::new("stream").with("items", 3.0);
        let p = b
            .predict(
                &spec,
                perf_core::iface::InterfaceKind::Program,
                perf_core::iface::Metric::Latency,
            )
            .unwrap();
        assert!(p.is_finite());
        assert!(backend("pipe:warp-drive:2").is_err());
    }

    #[test]
    fn explicit_engine_is_reported_by_every_backend() {
        for name in accelerators() {
            for engine in [EngineChoice::Interpreted, EngineChoice::Compiled] {
                let b = backend_with_engine(name, engine).unwrap();
                assert_eq!(b.engine(), engine, "{name}");
            }
        }
    }
}
