//! Load generator for the performance-query service.
//!
//! ```text
//! svcbench                  # full sweep, writes BENCH_service.json
//! svcbench --quick          # smaller request count
//! svcbench --out PATH       # write the JSON artifact elsewhere
//! ```

fn usage() -> ! {
    eprintln!("usage: svcbench [--quick] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let report = perf_service::svcbench::run(quick);
    print!("{}", report.render());
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: cannot write `{out}`: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
    std::process::exit(if report.pass() { 0 } else { 1 });
}
