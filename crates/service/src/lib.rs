//! `perf-service`: a batched performance-query server.
//!
//! The paper's case for performance interfaces is that they make
//! performance *queryable*: cheap enough to ask thousands of times per
//! second, precise enough to act on. This crate is the serving layer
//! that cashes that check — a long-running, multi-threaded server that
//! accepts batches of workload specs and answers predicted latency or
//! throughput for any accelerator in the workspace, from whichever
//! interface representation the request's deadline affords.
//!
//! The moving parts:
//!
//! * [`protocol`] — wire types: requests (accelerator, workload spec,
//!   metric, representation ceiling, deadline) and responses tagged
//!   with the representation actually used and its conformance budget;
//! * [`json`] — the minimal hand-rolled JSON reader behind the line
//!   protocol (the workspace carries no serialization crates);
//! * [`registry`] — per-accelerator backend constructors
//!   ([`perf_core::query::QueryBackend`] implementations live in the
//!   `accel-*` crates);
//! * [`server`] — the bounded admission queue, worker pool,
//!   fingerprint-keyed result cache, and the Petri-net → program → NL
//!   degradation ladder;
//! * [`metrics`] — counters and latency percentiles, exportable as
//!   JSON or into a [`perf_core::trace::TraceSink`];
//! * [`line`](mod@line) — the line-delimited stdio/TCP front end used by
//!   `repro --serve`.
//!
//! Degraded answers stay honest: every response carries the error
//! budget of the representation that produced it, so a client that
//! got an NL interval instead of a Petri-net point knows exactly how
//! much slack it must tolerate.

#![deny(missing_docs)]

pub mod json;
pub mod line;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod svcbench;

pub use metrics::{MetricsSnapshot, ReprStats, ServiceMetrics};
pub use protocol::{Outcome, ReprChoice, Request, Response};
pub use server::{Service, ServiceConfig};
