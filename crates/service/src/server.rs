//! The multi-threaded query server.
//!
//! Architecture (see `DESIGN.md`, "The serving layer"):
//!
//! * **Admission** — a bounded queue guarded by a mutex/condvar pair.
//!   [`Service::submit`] blocks when the queue is full (backpressure);
//!   [`Service::try_submit`] rejects instead, which is what a
//!   saturation-aware client wants; [`Service::submit_batch`] admits a
//!   whole batch under one lock.
//! * **Workers** — N threads, each owning its own (non-`Send`) backend
//!   set. A worker pops a *burst* of jobs per lock acquisition and
//!   serves them back to back: per-query synchronization cost shrinks
//!   with queue depth, which is what makes batched serving more than
//!   `workers`-times faster than one-at-a-time round trips. For each
//!   job it checks the deadline, picks the most precise representation
//!   the remaining budget affords, answers from the fingerprint cache
//!   when possible, and sends the response on the job's channel.
//! * **Cache** — a power-of-two-sharded set of read-mostly [`RwLock`]
//!   maps keyed by the backend's deep fingerprint mixed with the
//!   metric. Hits take one shard's read lock; misses write one shard.
//!   Sharding by fingerprint bits keeps writers from serializing
//!   against each other as workers scale (a single map's write lock
//!   was the 8-worker bottleneck on cold corpora).
//! * **Degradation ladder** — Petri net → program → NL bound. The
//!   choice uses per-(accelerator, representation) EWMA cost
//!   estimates; the NL rung is closed-form arithmetic and always
//!   affordable, so only queue expiry produces a deadline error.
//! * **Metrics** — workers accumulate into a burst-local
//!   [`ServiceMetrics`] and merge it into the shared one once per
//!   burst, so counters cost one lock per burst, not per query.
//!   Snapshots may therefore lag in-flight bursts by a few entries.
//! * **Shutdown** — [`Service::shutdown`] closes admission, lets the
//!   workers drain every queued job, and joins them.

use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::protocol::{Outcome, ReprChoice, Request, Response};
use crate::registry;
use perf_core::iface::InterfaceKind;
use perf_core::query::{EngineChoice, Fnv1a, QueryBackend};
use perf_core::{Budget, Prediction};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads.
    pub workers: usize,
    /// Admission-queue capacity; beyond it, `submit` blocks and
    /// `try_submit` rejects.
    pub queue_cap: usize,
    /// Result-cache capacity in entries.
    pub cache_cap: usize,
    /// Deadline applied to requests that carry none, in microseconds.
    pub default_deadline_us: Option<u64>,
    /// Which evaluation substrate worker backends run on. The
    /// compiled substrate (static-topology Petri steppers plus the
    /// `.pi` bytecode VM) is the default; `Interpreted` keeps the
    /// generic engine and tree-walker for A/B runs and as a fallback.
    pub engine: EngineChoice,
    /// Result-cache shard count; `0` picks one automatically from the
    /// worker count. Shard selection masks the fingerprint's low bits,
    /// so any requested count is **rounded up to a power of two** at
    /// construction — a non-power-of-two count would alias distinct
    /// shards through the mask and silently concentrate contention.
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            queue_cap: 256,
            cache_cap: 4096,
            default_deadline_us: None,
            engine: EngineChoice::Compiled,
            cache_shards: 0,
        }
    }
}

/// Cold-start cost priors (microseconds) for the degradation ladder,
/// indexed `[engine][nl / program / petri]` (see [`eidx`]). Replaced
/// by per-accelerator EWMA after the first evaluation of each rung.
/// The compiled substrate's rungs are roughly an order of magnitude
/// cheaper, so a deadline that used to force degradation to the NL
/// bound often affords the Petri rung when `engine` is `Compiled` —
/// the priors must reflect that or cold deadlines degrade spuriously.
const COST_PRIOR_US: [[f64; 3]; 2] = [
    [5.0, 300.0, 5_000.0], // interpreted
    [5.0, 60.0, 800.0],    // compiled
];

/// Index of an engine in [`COST_PRIOR_US`].
fn eidx(engine: EngineChoice) -> usize {
    match engine {
        EngineChoice::Interpreted => 0,
        EngineChoice::Compiled => 1,
    }
}

/// EWMA smoothing factor for cost estimates.
const EWMA_ALPHA: f64 = 0.3;

/// Safety margin applied to cost estimates when checking a deadline.
const EST_MARGIN: f64 = 1.2;

/// Jobs a worker claims per queue-lock acquisition. Bursts amortize
/// the mutex/condvar round trip across queue depth; 1 would recreate
/// the one-wake-per-job regime batched serving exists to avoid.
const BURST: usize = 8;

struct Job {
    req: Request,
    enqueued: Instant,
    deadline: Option<Instant>,
    tx: Sender<Response>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    cfg: ServiceConfig,
    queue: Mutex<QueueState>,
    /// Signaled when a job arrives or the queue closes.
    available: Condvar,
    /// Signaled when a job leaves the queue.
    space: Condvar,
    /// Fingerprint-keyed results: key mixes the backend's deep
    /// fingerprint with the metric, sharded by the key's low bits
    /// (power-of-two shard count). Read-mostly: hits share one
    /// shard's read lock, only misses write, and concurrent misses on
    /// different shards do not contend.
    cache: Vec<RwLock<HashMap<u64, (Prediction, InterfaceKind)>>>,
    /// Per-shard entry cap (`cache_cap / shards`, at least 1).
    shard_cap: usize,
    /// Admission-side counters kept out of the metrics mutex: the
    /// submit path used to take the metrics lock *while holding the
    /// queue lock*, which stretched every queue-lock hold by a second
    /// mutex acquisition and serialized submitters against worker
    /// burst merges.
    submitted: AtomicU64,
    rejected: AtomicU64,
    queue_high_water: AtomicUsize,
    metrics: Mutex<ServiceMetrics>,
    /// EWMA evaluation cost in microseconds per (accelerator,
    /// representation index).
    costs: Mutex<HashMap<(String, usize), f64>>,
}

/// The running query service.
///
/// # Examples
///
/// ```
/// use perf_service::{Service, ServiceConfig};
/// use perf_service::protocol::{Outcome, ReprChoice, Request};
/// use perf_core::iface::Metric;
/// use perf_core::query::WorkloadSpec;
/// use std::sync::mpsc;
///
/// let svc = Service::start(ServiceConfig { workers: 2, ..Default::default() });
/// let (tx, rx) = mpsc::channel();
/// svc.submit(
///     Request {
///         id: 1,
///         accel: "vta".into(),
///         spec: WorkloadSpec::new("finish_only"),
///         metric: Metric::Latency,
///         repr: ReprChoice::Auto,
///         deadline_us: None,
///     },
///     tx,
/// );
/// let resp = rx.recv().unwrap();
/// assert!(matches!(resp.outcome, Outcome::Answer { .. }));
/// svc.shutdown();
/// ```
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

fn ridx(kind: InterfaceKind) -> usize {
    match kind {
        InterfaceKind::NaturalLanguage => 0,
        InterfaceKind::Program => 1,
        InterfaceKind::PetriNet => 2,
    }
}

impl Service {
    /// Spawns the worker pool and returns the handle.
    pub fn start(cfg: ServiceConfig) -> Service {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            queue_cap: cfg.queue_cap.max(1),
            cache_cap: cfg.cache_cap.max(1),
            ..cfg
        };
        // Enough shards that concurrent cache misses rarely collide
        // (4x workers by default, bounded so tiny configs don't
        // fragment the cap). Whatever the source, the count is rounded
        // up to a power of two: shard selection masks the key's low
        // bits, and masking against a non-power-of-two length aliases
        // shards (e.g. len 12 never selects shards 4–7 for half the
        // key space and doubles up others).
        let shards = if cfg.cache_shards == 0 {
            (cfg.workers * 4).next_power_of_two().clamp(8, 64)
        } else {
            cfg.cache_shards.next_power_of_two()
        };
        debug_assert!(shards.is_power_of_two());
        let shared = Arc::new(Shared {
            cfg,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            cache: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_cap: cfg.cache_cap.div_ceil(shards).max(1),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queue_high_water: AtomicUsize::new(0),
            metrics: Mutex::new(ServiceMetrics::default()),
            costs: Mutex::new(HashMap::new()),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("perf-service-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Service { shared, workers }
    }

    fn make_job(&self, mut req: Request, tx: Sender<Response>) -> Job {
        let enqueued = Instant::now();
        if req.deadline_us.is_none() {
            req.deadline_us = self.shared.cfg.default_deadline_us;
        }
        let deadline = req
            .deadline_us
            .map(|us| enqueued + Duration::from_micros(us));
        Job {
            req,
            enqueued,
            deadline,
            tx,
        }
    }

    /// Submits one request, blocking while the queue is full
    /// (backpressure). Returns `false` — with a `Rejected` response
    /// already sent — only when the service is shut down.
    pub fn submit(&self, req: Request, tx: Sender<Response>) -> bool {
        let job = self.make_job(req, tx);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let mut q = self.shared.queue.lock().expect("queue lock");
        while q.jobs.len() >= self.shared.cfg.queue_cap && !q.closed {
            q = self.shared.space.wait(q).expect("queue lock");
        }
        if q.closed {
            drop(q);
            self.reject(job);
            return false;
        }
        self.enqueue(q, job);
        true
    }

    /// Submits one request without blocking. When the queue is full
    /// the request is rejected immediately (a `Rejected` response is
    /// sent on `tx`) and `false` is returned.
    pub fn try_submit(&self, req: Request, tx: Sender<Response>) -> bool {
        let job = self.make_job(req, tx);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let q = self.shared.queue.lock().expect("queue lock");
        if q.closed || q.jobs.len() >= self.shared.cfg.queue_cap {
            drop(q);
            self.reject(job);
            return false;
        }
        self.enqueue(q, job);
        true
    }

    /// Admits a whole batch under one queue lock, blocking for space
    /// as needed (backpressure); wakes one worker per claimable burst
    /// rather than the whole pool. Returns how many were admitted —
    /// less than the batch size only if the service shuts down
    /// mid-batch (the rest get `Rejected` responses).
    pub fn submit_batch(&self, reqs: Vec<Request>, tx: &Sender<Response>) -> usize {
        let mut jobs: VecDeque<Job> = reqs
            .into_iter()
            .map(|r| self.make_job(r, tx.clone()))
            .collect();
        self.shared
            .submitted
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let mut admitted = 0;
        let mut q = self.shared.queue.lock().expect("queue lock");
        while let Some(job) = jobs.pop_front() {
            while q.jobs.len() >= self.shared.cfg.queue_cap && !q.closed {
                // Queue full: jobs are available, so no worker is
                // parked on `available` for lack of work — but one may
                // not have run since its wake. Nudge the pool and wait
                // for space.
                self.shared.available.notify_all();
                q = self.shared.space.wait(q).expect("queue lock");
            }
            if q.closed {
                jobs.push_front(job);
                break;
            }
            q.jobs.push_back(job);
            admitted += 1;
        }
        let depth = q.jobs.len();
        drop(q);
        self.shared
            .queue_high_water
            .fetch_max(depth, Ordering::Relaxed);
        // Wake exactly as many workers as there are bursts to claim.
        // `notify_all` here woke the whole pool for every batch; with
        // sub-microsecond warm-cache serves, the surplus workers lost
        // the race, found the queue empty, and re-parked — a
        // thundering herd of pure contention on the queue mutex.
        let wakes = depth.div_ceil(BURST).min(self.shared.cfg.workers).max(1);
        for _ in 0..wakes {
            self.shared.available.notify_one();
        }
        for job in jobs {
            self.reject(job);
        }
        admitted
    }

    fn enqueue(&self, mut q: std::sync::MutexGuard<'_, QueueState>, job: Job) {
        q.jobs.push_back(job);
        let depth = q.jobs.len();
        drop(q);
        self.shared
            .queue_high_water
            .fetch_max(depth, Ordering::Relaxed);
        self.shared.available.notify_one();
    }

    fn reject(&self, job: Job) {
        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
        let _ = job.tx.send(Response {
            id: job.req.id,
            accel: job.req.accel,
            metric: job.req.metric,
            outcome: Outcome::Rejected,
        });
    }

    /// Submits a whole batch without blocking; returns how many were
    /// admitted (the rest got `Rejected` responses).
    pub fn try_submit_batch(&self, reqs: Vec<Request>, tx: &Sender<Response>) -> usize {
        reqs.into_iter()
            .map(|r| self.try_submit(r, tx.clone()) as usize)
            .sum()
    }

    /// A snapshot of the service counters and latency histograms.
    /// Workers flush their burst-local counters once per burst, so a
    /// snapshot taken mid-flight may lag by a few entries.
    pub fn metrics(&self) -> MetricsSnapshot {
        snapshot(&self.shared)
    }

    /// Clears counters and histograms while leaving the cache and
    /// cost estimates intact. Load generators use this to measure a
    /// steady-state pass without the warm-up pass polluting the
    /// numbers.
    pub fn reset_metrics(&self) {
        *self.shared.metrics.lock().expect("metrics lock") = ServiceMetrics::default();
        self.shared.submitted.store(0, Ordering::Relaxed);
        self.shared.rejected.store(0, Ordering::Relaxed);
        self.shared.queue_high_water.store(0, Ordering::Relaxed);
    }

    /// Entries currently held by the result cache, summed across
    /// shards.
    pub fn cache_len(&self) -> usize {
        self.shared
            .cache
            .iter()
            .map(|s| s.read().expect("cache lock").len())
            .sum()
    }

    /// Current queue depth (for load generators and tests).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").jobs.len()
    }

    /// Closes admission, drains every queued job, and joins the
    /// workers. Responses for all admitted jobs are delivered before
    /// this returns.
    pub fn shutdown(self) -> MetricsSnapshot {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.closed = true;
        }
        self.shared.available.notify_all();
        self.shared.space.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
        snapshot(&self.shared)
    }
}

/// Counters snapshot folding the lock-free admission counters into
/// the worker-side histogram state.
fn snapshot(shared: &Shared) -> MetricsSnapshot {
    let mut s = shared.metrics.lock().expect("metrics lock").snapshot();
    s.submitted = shared.submitted.load(Ordering::Relaxed);
    s.rejected = shared.rejected.load(Ordering::Relaxed);
    s.queue_high_water = shared.queue_high_water.load(Ordering::Relaxed);
    s
}

/// The cache shard holding `key` (shard count is a power of two, so
/// selection is a mask of the fingerprint's low bits).
fn shard(shared: &Shared, key: u64) -> &RwLock<HashMap<u64, (Prediction, InterfaceKind)>> {
    debug_assert!(
        shared.cache.len().is_power_of_two(),
        "shard selection masks low bits; a non-power-of-two count aliases shards"
    );
    &shared.cache[(key as usize) & (shared.cache.len() - 1)]
}

/// The ladder from a requested ceiling, most precise first.
fn ladder(ceiling: InterfaceKind) -> &'static [InterfaceKind] {
    match ceiling {
        InterfaceKind::PetriNet => &[
            InterfaceKind::PetriNet,
            InterfaceKind::Program,
            InterfaceKind::NaturalLanguage,
        ],
        InterfaceKind::Program => &[InterfaceKind::Program, InterfaceKind::NaturalLanguage],
        InterfaceKind::NaturalLanguage => &[InterfaceKind::NaturalLanguage],
    }
}

/// Worker-thread state: its own backend set (interpreter state is not
/// `Send`) and a memo from cheap spec fingerprints to the backend's
/// deep fingerprint, so repeat queries skip re-realizing workloads on
/// the cache-hit path.
struct WorkerState {
    backends: HashMap<String, Box<dyn QueryBackend>>,
    fp_memo: HashMap<(u64, u8), u64>,
}

fn cache_key(state: &mut WorkerState, req: &Request, repr: InterfaceKind) -> u64 {
    let spec_fp = {
        let mut h = Fnv1a::new();
        h.write(req.accel.as_bytes());
        h.write_u64(req.spec.fingerprint());
        h.finish()
    };
    let backend = state
        .backends
        .get_mut(&req.accel)
        .expect("backend constructed before keying");
    let deep = *state
        .fp_memo
        .entry((spec_fp, repr as u8))
        .or_insert_with(|| backend.fingerprint(&req.spec, repr));
    let mut h = Fnv1a::new();
    h.write_u64(deep);
    h.write(&[req.metric as u8]);
    h.finish()
}

fn worker_loop(shared: &Shared) {
    let mut state = WorkerState {
        backends: HashMap::new(),
        fp_memo: HashMap::new(),
    };
    let mut burst: Vec<Job> = Vec::with_capacity(BURST);
    loop {
        let mut local = ServiceMetrics::default();
        let leftover;
        {
            // Time the lock acquisition itself: on a warm cache serves
            // are sub-microsecond, so if workers stop scaling the wait
            // here is the lock-hold evidence the svcbench diagnosis
            // reports (vs. condvar-herd, evidenced by spurious wakes).
            let t_lock = Instant::now();
            let mut q = shared.queue.lock().expect("queue lock");
            local.lock_wait_us += t_lock.elapsed().as_micros() as f64;
            loop {
                if !q.jobs.is_empty() {
                    let n = q.jobs.len().min(BURST);
                    burst.extend(q.jobs.drain(..n));
                    local.bursts += 1;
                    leftover = !q.jobs.is_empty();
                    break;
                }
                if q.closed {
                    return;
                }
                q = shared.available.wait(q).expect("queue lock");
                local.worker_wakes += 1;
                if q.jobs.is_empty() && !q.closed {
                    local.spurious_wakes += 1;
                }
            }
        }
        // Chain-wake: if jobs remain after this claim, wake exactly one
        // more worker. Submitters wake one worker per claimable burst,
        // so the pool fans out one wake at a time instead of stampeding
        // on every batch.
        if leftover {
            shared.available.notify_one();
        }
        // One space wake-up per claimed burst, not per job.
        if burst.len() > 1 {
            shared.space.notify_all();
        } else {
            shared.space.notify_one();
        }
        for job in burst.drain(..) {
            serve(shared, &mut state, job, &mut local);
        }
        shared.metrics.lock().expect("metrics lock").merge(&local);
    }
}

fn send(job: &Job, outcome: Outcome) {
    let _ = job.tx.send(Response {
        id: job.req.id,
        accel: job.req.accel.clone(),
        metric: job.req.metric,
        outcome,
    });
}

fn serve(shared: &Shared, state: &mut WorkerState, job: Job, metrics: &mut ServiceMetrics) {
    let picked_up = Instant::now();
    let queue_us = picked_up.duration_since(job.enqueued).as_micros() as f64;
    if let Some(d) = job.deadline {
        if picked_up > d {
            metrics.expired += 1;
            send(&job, Outcome::Expired);
            return;
        }
    }
    if !state.backends.contains_key(&job.req.accel) {
        match registry::backend_with_engine(&job.req.accel, shared.cfg.engine) {
            Ok(b) => {
                state.backends.insert(job.req.accel.clone(), b);
            }
            Err(err) => {
                metrics.errors += 1;
                send(&job, Outcome::Error(err.to_string()));
                return;
            }
        }
    }
    let ceiling = match job.req.repr {
        ReprChoice::Auto => InterfaceKind::PetriNet,
        ReprChoice::Ceiling(k) => k,
    };
    let rungs = ladder(ceiling);
    // Pick the most precise rung that is either already cached (hits
    // are free) or whose estimated cost fits the remaining deadline.
    // The last rung is the fallback: NL bounds are plain arithmetic.
    let mut chosen = *rungs.last().expect("ladder non-empty");
    let mut cached: Option<(Prediction, InterfaceKind)> = None;
    for &rung in rungs {
        let key = cache_key(state, &job.req, rung);
        if let Some(&hit) = shard(shared, key).read().expect("cache lock").get(&key) {
            chosen = rung;
            cached = Some(hit);
            break;
        }
        let affordable = match job.deadline {
            None => true,
            Some(d) => {
                let remaining_us = d.saturating_duration_since(Instant::now()).as_micros() as f64;
                let est = *shared
                    .costs
                    .lock()
                    .expect("costs lock")
                    .get(&(job.req.accel.clone(), ridx(rung)))
                    .unwrap_or(&COST_PRIOR_US[eidx(shared.cfg.engine)][ridx(rung)]);
                est * EST_MARGIN <= remaining_us
            }
        };
        if affordable {
            chosen = rung;
            break;
        }
    }
    let degraded = chosen != ceiling;
    let backend = state
        .backends
        .get_mut(&job.req.accel)
        .expect("backend constructed above");
    let budget: Budget = backend.budget(chosen, job.req.metric);
    let (prediction, cache_hit, service_us) = match cached {
        Some((p, _)) => (p, true, 0.0),
        None => {
            let t0 = Instant::now();
            match backend.predict(&job.req.spec, chosen, job.req.metric) {
                Ok(p) => {
                    let service_us = t0.elapsed().as_micros() as f64;
                    // Update the EWMA cost estimate for this rung.
                    let mut costs = shared.costs.lock().expect("costs lock");
                    let slot = costs
                        .entry((job.req.accel.clone(), ridx(chosen)))
                        .or_insert(service_us);
                    *slot = (1.0 - EWMA_ALPHA) * *slot + EWMA_ALPHA * service_us;
                    drop(costs);
                    let key = cache_key(state, &job.req, chosen);
                    let mut cache = shard(shared, key).write().expect("cache lock");
                    if cache.len() >= shared.shard_cap {
                        // Simple pressure valve: drop half the shard.
                        // Keys within a shard share their low bits, so
                        // test a bit above the shard mask; fingerprints
                        // are uniform there, keeping an unbiased
                        // sample.
                        cache.retain(|k, _| (k >> 32) & 1 == 0);
                    }
                    cache.insert(key, (p, chosen));
                    (p, false, service_us)
                }
                Err(err) => {
                    metrics.errors += 1;
                    send(&job, Outcome::Error(err.to_string()));
                    return;
                }
            }
        }
    };
    metrics.record_answer(chosen, degraded, cache_hit, queue_us, service_us);
    send(
        &job,
        Outcome::Answer {
            prediction,
            repr_used: chosen,
            degraded,
            budget,
            cache_hit,
            engine: shared.cfg.engine,
            queue_us,
            service_us,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::iface::Metric;
    use perf_core::query::WorkloadSpec;
    use std::sync::mpsc;

    fn vta_req(id: u64, seed: f64) -> Request {
        Request {
            id,
            accel: "vta".into(),
            spec: WorkloadSpec::new("random")
                .with("seed", seed)
                .with("max_blocks", 8.0),
            metric: Metric::Latency,
            repr: ReprChoice::Auto,
            deadline_us: None,
        }
    }

    #[test]
    fn answers_and_caches_repeat_queries() {
        let svc = Service::start(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        let (tx, rx) = mpsc::channel();
        for id in 0..4 {
            svc.submit(vta_req(id, 7.0), tx.clone());
        }
        let mut hits = 0;
        for _ in 0..4 {
            match rx.recv().unwrap().outcome {
                Outcome::Answer {
                    cache_hit,
                    repr_used,
                    ..
                } => {
                    assert_eq!(repr_used, InterfaceKind::PetriNet);
                    hits += cache_hit as u64;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(hits >= 2, "identical specs should hit the cache");
        let snap = svc.shutdown();
        assert_eq!(snap.completed, 4);
        assert_eq!(snap.errors, 0);
    }

    #[test]
    fn non_power_of_two_shard_request_rounds_up() {
        // Regression: shard selection masks the key's low bits, so a
        // literal non-power-of-two count (12 → mask 0b1011) would
        // never select shards 4–7 and alias the rest. Construction
        // must round up.
        for (req, want) in [(1, 1), (3, 4), (12, 16), (16, 16), (33, 64)] {
            let svc = Service::start(ServiceConfig {
                workers: 1,
                cache_shards: req,
                ..Default::default()
            });
            assert_eq!(
                svc.shared.cache.len(),
                want,
                "requested {req} shards must become {want}"
            );
            // Every shard index must be reachable by the mask.
            for k in 0..(want as u64 * 4) {
                let got = (k as usize) & (svc.shared.cache.len() - 1);
                assert!(got < svc.shared.cache.len());
            }
            svc.shutdown();
        }
        // Queries still resolve correctly on a rounded-up count.
        let svc = Service::start(ServiceConfig {
            workers: 2,
            cache_shards: 12,
            ..Default::default()
        });
        let (tx, rx) = mpsc::channel();
        for id in 0..8 {
            svc.submit(vta_req(id, id as f64), tx.clone());
        }
        for _ in 0..8 {
            assert!(matches!(rx.recv().unwrap().outcome, Outcome::Answer { .. }));
        }
        assert!(svc.cache_len() > 0);
        svc.shutdown();
    }

    #[test]
    fn unknown_accel_is_an_error_response() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let (tx, rx) = mpsc::channel();
        let mut req = vta_req(1, 1.0);
        req.accel = "warp-drive".into();
        svc.submit(req, tx);
        assert!(matches!(rx.recv().unwrap().outcome, Outcome::Error(_)));
        svc.shutdown();
    }

    #[test]
    fn explicit_repr_ceiling_is_honored() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let (tx, rx) = mpsc::channel();
        let mut req = vta_req(1, 3.0);
        req.repr = ReprChoice::Ceiling(InterfaceKind::Program);
        svc.submit(req, tx);
        match rx.recv().unwrap().outcome {
            Outcome::Answer {
                repr_used,
                degraded,
                ..
            } => {
                assert_eq!(repr_used, InterfaceKind::Program);
                assert!(!degraded);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn submit_batch_admits_everything_under_capacity_pressure() {
        let svc = Service::start(ServiceConfig {
            workers: 2,
            queue_cap: 4,
            ..Default::default()
        });
        let (tx, rx) = mpsc::channel();
        let reqs: Vec<Request> = (0..32).map(|i| vta_req(i, i as f64)).collect();
        let admitted = svc.submit_batch(reqs, &tx);
        assert_eq!(admitted, 32, "blocking batch admission admits all");
        drop(tx);
        let got: Vec<Response> = rx.iter().collect();
        assert_eq!(got.len(), 32);
        assert!(got
            .iter()
            .all(|r| matches!(r.outcome, Outcome::Answer { .. })));
        let snap = svc.shutdown();
        assert_eq!(snap.completed, 32);
    }
}
