//! The line-delimited serving front end (stdio or TCP).
//!
//! Each input line is one JSON request or a JSON array of requests;
//! each request yields one JSON response line. Responses stream in
//! completion order (correlate by `id`). An empty line or EOF shuts
//! the service down cleanly, draining in-flight queries first; a final
//! stats line (`{"stats": ...}`) closes the session.

use crate::protocol::{Request, Response};
use crate::server::{Service, ServiceConfig};
use std::io::{BufRead, Write};
use std::sync::mpsc;

/// Serves the line protocol over any reader/writer pair until EOF or
/// an empty line; returns the number of requests served.
///
/// Blocking `submit` is used, so a saturated queue exerts backpressure
/// on the input stream instead of dropping requests.
pub fn serve_lines<R: BufRead, W: Write>(
    reader: R,
    writer: &mut W,
    cfg: ServiceConfig,
) -> std::io::Result<u64> {
    let svc = Service::start(cfg);
    let (tx, rx) = mpsc::channel::<Response>();
    // Writer thread: stream responses as they complete. The response
    // text funnels through a channel so the reader loop below keeps
    // sole ownership of `writer` until the service drains.
    let (out_tx, out_rx) = mpsc::channel::<String>();
    let printer = std::thread::spawn(move || {
        let mut lines = Vec::new();
        for resp in rx {
            let line = resp.to_json();
            if out_tx.send(line.clone()).is_err() {
                lines.push(line);
            }
        }
        lines
    });
    let mut served = 0u64;
    for line in reader.lines() {
        let line = line?;
        // Drain any completed responses opportunistically.
        while let Ok(l) = out_rx.try_recv() {
            writeln!(writer, "{l}")?;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        match Request::batch_from_line(trimmed) {
            Ok(reqs) => {
                for req in reqs {
                    served += 1;
                    svc.submit(req, tx.clone());
                }
            }
            Err(msg) => {
                writeln!(
                    writer,
                    "{{\"status\":\"error\",\"message\":\"{}\"}}",
                    perf_core::trace::json_escape(&msg)
                )?;
            }
        }
    }
    drop(tx);
    let snapshot = svc.shutdown();
    // All workers have exited; the response channel is closed, so the
    // printer thread has (or will immediately) run out of input.
    for l in out_rx.iter() {
        writeln!(writer, "{l}")?;
    }
    if let Ok(rest) = printer.join() {
        for l in rest {
            writeln!(writer, "{l}")?;
        }
    }
    writeln!(writer, "{{\"stats\":{}}}", snapshot.to_json())?;
    writer.flush()?;
    Ok(served)
}

/// Binds a TCP listener on `addr` and serves one connection at a time
/// with a fresh service per connection. Returns after `max_conns`
/// connections (useful for tests; pass `u64::MAX` to serve forever).
pub fn serve_tcp(addr: &str, cfg: ServiceConfig, max_conns: u64) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    let mut served = 0u64;
    for stream in listener.incoming() {
        let stream = stream?;
        let peer = stream.peer_addr()?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        let mut writer = std::io::BufWriter::new(stream);
        match serve_lines(reader, &mut writer, cfg) {
            Ok(n) => eprintln!("perf-service: served {n} request(s) from {peer}"),
            Err(e) => eprintln!("perf-service: connection from {peer} failed: {e}"),
        }
        served += 1;
        if served >= max_conns {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_session_serves_batches_and_reports_stats() {
        let input = "\
{\"id\":1,\"accel\":\"vta\",\"metric\":\"latency\",\"spec\":{\"kind\":\"finish_only\"}}\n\
[{\"id\":2,\"accel\":\"bitcoin-miner\",\"metric\":\"latency\",\"repr\":\"program\",\"spec\":{\"kind\":\"scan\",\"loop\":8,\"nonce_count\":100,\"difficulty\":256}},\
 {\"id\":3,\"accel\":\"vta\",\"metric\":\"throughput\",\"spec\":{\"kind\":\"single\",\"seed\":1}}]\n\
not json\n\
\n";
        let mut out = Vec::new();
        let served = serve_lines(
            std::io::BufReader::new(input.as_bytes()),
            &mut out,
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(served, 3);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 3 responses + 1 parse error + 1 stats line.
        assert_eq!(lines.len(), 5, "{text}");
        assert_eq!(text.matches("\"status\":\"ok\"").count(), 3, "{text}");
        assert!(text.contains("\"status\":\"error\""));
        assert!(text.lines().last().unwrap().starts_with("{\"stats\":"));
        for l in &lines {
            assert!(crate::json::Json::parse(l).is_ok(), "invalid JSON: {l}");
        }
    }

    /// Regression: an oversize stream request must come back as a
    /// rendered protocol error, not a silently clamped-to-4096 answer
    /// labeled as if it covered the full request.
    #[test]
    fn oversize_pipeline_stream_is_a_protocol_error() {
        let input = "\
{\"id\":1,\"accel\":\"pipe:vta:2>protoacc:2\",\"metric\":\"latency\",\"spec\":{\"kind\":\"stream\",\"items\":10000}}\n\
{\"id\":2,\"accel\":\"pipe:vta:2>(protoacc:2|bitcoin-miner:2)>protoacc:3\",\"metric\":\"latency\",\"spec\":{\"kind\":\"stream\",\"items\":4,\"seed\":2}}\n\
\n";
        let mut out = Vec::new();
        let served = serve_lines(
            std::io::BufReader::new(input.as_bytes()),
            &mut out,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(served, 2);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.matches("\"status\":\"error\"").count(), 1, "{text}");
        assert!(text.contains("4096"), "{text}");
        assert!(text.contains("10000"), "{text}");
        // The DAG chain spec flows through the `pipe:` registry path.
        assert_eq!(text.matches("\"status\":\"ok\"").count(), 1, "{text}");
    }
}
