//! A minimal JSON reader for the service's line protocol.
//!
//! The workspace deliberately carries no serialization crates (see
//! `compat/README.md`); every crate hand-rolls its JSON *output*. The
//! service is the first component that must also *read* JSON — client
//! requests arrive as one JSON value per line — so this module adds
//! the smallest parser that covers the protocol: objects, arrays,
//! strings with the common escapes, numbers, booleans, and null.
//!
//! # Examples
//!
//! ```
//! use perf_service::json::Json;
//!
//! let v = Json::parse(r#"{"id": 7, "spec": {"kind": "sized"}}"#).unwrap();
//! assert_eq!(v.get("id").and_then(Json::as_f64), Some(7.0));
//! assert_eq!(
//!     v.get("spec").and_then(|s| s.get("kind")).and_then(Json::as_str),
//!     Some("sized")
//! );
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted (insertion order is not preserved).
    Obj(BTreeMap<String, Json>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (the line protocol sends exactly one value per line).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-UTF-8 \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of protocol scope;
                            // map them to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn roundtrips_unicode_and_escapes() {
        let v = Json::parse(r#""café \"quoted\"""#).unwrap();
        assert_eq!(v.as_str(), Some("café \"quoted\""));
    }
}
