//! End-to-end tests of the query service: saturation shedding,
//! deadline expiry, fallback correctness (degraded answers stay inside
//! the conformance budget of the representation that served them), and
//! clean shutdown with in-flight queries drained.

use perf_core::budget::channel_error;
use perf_core::iface::{InterfaceKind, Metric};
use perf_core::query::WorkloadSpec;
use perf_service::protocol::{Outcome, ReprChoice, Request, Response};
use perf_service::{registry, Service, ServiceConfig};
use std::sync::mpsc;

fn req(id: u64, accel: &str, spec: WorkloadSpec, metric: Metric) -> Request {
    Request {
        id,
        accel: accel.into(),
        spec,
        metric,
        repr: ReprChoice::Auto,
        deadline_us: None,
    }
}

/// A mixed workload over every accelerator and both metrics.
fn mixed_corpus(n: u64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let metric = if i % 2 == 0 {
                Metric::Latency
            } else {
                Metric::Throughput
            };
            let seed = (i / 8) as f64;
            match i % 4 {
                0 => req(
                    i,
                    "vta",
                    WorkloadSpec::new("random")
                        .with("seed", seed)
                        .with("max_blocks", 16.0),
                    metric,
                ),
                1 => req(
                    i,
                    "jpeg-decoder",
                    WorkloadSpec::new("sized")
                        .with("seed", seed)
                        .with("width", 64.0 + 8.0 * seed)
                        .with("height", 48.0)
                        .with("quality", 60.0),
                    metric,
                ),
                2 => req(
                    i,
                    "bitcoin-miner",
                    WorkloadSpec::new("scan")
                        .with("loop", 8.0)
                        .with("seed", seed)
                        .with("nonce_count", 200.0)
                        .with("difficulty", 4096.0),
                    metric,
                ),
                _ => req(
                    i,
                    "protoacc",
                    WorkloadSpec::new("format")
                        .with("idx", (i % 3) as f64)
                        .with("n", 8.0)
                        .with("seed", seed),
                    metric,
                ),
            }
        })
        .collect()
}

/// Every admitted request gets exactly one response, and predictions —
/// degraded or not — stay within the conformance budget of the
/// representation that actually served them, checked against the
/// cycle-accurate simulator.
#[test]
fn answers_stay_within_served_representation_budget() {
    let svc = Service::start(ServiceConfig {
        workers: 4,
        ..Default::default()
    });
    let reqs = mixed_corpus(48);
    let by_id: std::collections::HashMap<u64, Request> =
        reqs.iter().map(|r| (r.id, r.clone())).collect();
    let (tx, rx) = mpsc::channel();
    for r in reqs {
        svc.submit(r, tx.clone());
    }
    drop(tx);
    let responses: Vec<Response> = rx.iter().collect();
    assert_eq!(responses.len(), 48);
    for resp in &responses {
        let (prediction, repr_used, budget) = match &resp.outcome {
            Outcome::Answer {
                prediction,
                repr_used,
                budget,
                ..
            } => (*prediction, *repr_used, *budget),
            other => panic!("id {} got {other:?}", resp.id),
        };
        let req = &by_id[&resp.id];
        let mut backend = registry::backend(&req.accel).unwrap();
        let obs = backend.measure(&req.spec).unwrap();
        let actual = req.metric.of(&obs);
        let err = channel_error(&prediction, actual, req.metric, budget.atol);
        assert!(
            err <= budget.max,
            "id {} {} {:?} served by {repr_used:?}: error {err:.4} > budget.max {:.4} \
             (pred {prediction:?}, actual {actual})",
            resp.id,
            req.accel,
            req.metric,
            budget.max,
        );
    }
    let snap = svc.shutdown();
    assert_eq!(snap.completed, 48);
    assert_eq!(snap.errors, 0);
}

/// Saturation: a tiny queue with `try_submit` sheds load instead of
/// blocking, the shed requests get `Rejected` responses, and every
/// admitted request is still answered within its budget. This is the
/// smoke test `scripts/check.sh --quick` runs.
#[test]
fn saturation_sheds_load_and_degraded_answers_stay_in_budget() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_cap: 8,
        ..Default::default()
    });
    let reqs = mixed_corpus(96);
    let by_id: std::collections::HashMap<u64, Request> =
        reqs.iter().map(|r| (r.id, r.clone())).collect();
    let (tx, rx) = mpsc::channel();
    let admitted = svc.try_submit_batch(reqs, &tx);
    drop(tx);
    let responses: Vec<Response> = rx.iter().collect();
    // Exactly one response per request, admitted or not.
    assert_eq!(responses.len(), 96);
    let rejected = responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Rejected))
        .count();
    assert_eq!(admitted + rejected, 96);
    assert!(
        rejected > 0,
        "queue_cap 8 with 96 offered requests must shed load"
    );
    for resp in &responses {
        match &resp.outcome {
            Outcome::Rejected => {}
            Outcome::Answer {
                prediction,
                repr_used,
                degraded,
                budget,
                ..
            } => {
                // Degraded or not, the answer is accountable to the
                // budget of the representation that produced it.
                let req = &by_id[&resp.id];
                let mut backend = registry::backend(&req.accel).unwrap();
                let actual = req.metric.of(&backend.measure(&req.spec).unwrap());
                let err = channel_error(prediction, actual, req.metric, budget.atol);
                assert!(
                    err <= budget.max,
                    "id {} degraded={degraded} served by {repr_used:?}: \
                     error {err:.4} > {:.4}",
                    resp.id,
                    budget.max,
                );
            }
            other => panic!("id {} got {other:?}", resp.id),
        }
    }
    let snap = svc.shutdown();
    assert_eq!(snap.rejected as usize, rejected);
    assert_eq!(snap.completed as usize, 96 - rejected);
}

/// Deadlines force degradation down the ladder; very short deadlines on
/// a busy queue expire. Either way the client always hears back.
#[test]
fn deadlines_degrade_then_expire() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_cap: 512,
        ..Default::default()
    });
    let (tx, rx) = mpsc::channel();
    // Warm-up: teach the EWMA the real petri/program costs so the
    // ladder's estimates are grounded, and keep the lone worker busy.
    for i in 0..8 {
        svc.submit(
            req(
                i,
                "vta",
                WorkloadSpec::new("random")
                    .with("seed", i as f64)
                    .with("max_blocks", 64.0),
                Metric::Latency,
            ),
            tx.clone(),
        );
    }
    // A 1 µs deadline cannot survive the queue behind 8 petri
    // evaluations: it must expire (the worker checks at pickup).
    let mut doomed = req(
        100,
        "vta",
        WorkloadSpec::new("single").with("seed", 999.0),
        Metric::Latency,
    );
    doomed.deadline_us = Some(1);
    svc.submit(doomed, tx.clone());
    // A moderate deadline admits evaluation but not the petri rung
    // (cold prior 5 ms, EWMA-corrected upward by the warm-up): the
    // service degrades to program or the NL bound instead of blowing
    // the deadline.
    let mut tight = req(
        101,
        "vta",
        WorkloadSpec::new("random")
            .with("seed", 4242.0)
            .with("max_blocks", 64.0),
        Metric::Latency,
    );
    tight.deadline_us = Some(400_000); // 400 ms: generous for program, tight for queue+petri
    svc.submit(tight, tx.clone());
    drop(tx);
    let responses: Vec<Response> = rx.iter().collect();
    assert_eq!(responses.len(), 10);
    let expired: Vec<&Response> = responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Expired))
        .collect();
    assert!(
        expired.iter().any(|r| r.id == 100),
        "the 1 µs deadline must expire, got {:?}",
        responses
            .iter()
            .map(|r| (r.id, &r.outcome))
            .collect::<Vec<_>>()
    );
    // The moderate-deadline request is answered (never expired): the
    // ladder has an always-affordable NL rung.
    let tight_resp = responses.iter().find(|r| r.id == 101).unwrap();
    match &tight_resp.outcome {
        Outcome::Answer { .. } => {}
        other => panic!("moderate deadline should be answered, got {other:?}"),
    }
    let snap = svc.shutdown();
    assert!(snap.expired >= 1);
}

/// Degradation is observable and honest: a deadline too short for the
/// petri rung yields `degraded: true`, a coarser `repr_used`, and that
/// rung's (wider) budget.
#[test]
fn degraded_responses_carry_coarser_repr_and_its_budget() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    let (tx, rx) = mpsc::channel();
    // Cold priors: nl 5 µs, program 300 µs, petri 5000 µs. A 2 ms
    // deadline affords program (360 µs with margin) but not petri.
    let mut r = req(
        1,
        "vta",
        WorkloadSpec::new("random")
            .with("seed", 7.0)
            .with("max_blocks", 16.0),
        Metric::Latency,
    );
    r.deadline_us = Some(2_000);
    svc.submit(r, tx.clone());
    drop(tx);
    let resp = rx.recv().unwrap();
    match resp.outcome {
        Outcome::Answer {
            repr_used,
            degraded,
            budget,
            ..
        } => {
            assert!(
                repr_used < InterfaceKind::PetriNet,
                "2 ms deadline must degrade below the petri rung (cold prior 5 ms)"
            );
            assert!(degraded);
            // The reported budget is the serving rung's, not the
            // ceiling's: compare against the backend's declaration.
            let backend = registry::backend("vta").unwrap();
            let declared = backend.budget(repr_used, Metric::Latency);
            assert_eq!(budget.max, declared.max);
            assert_eq!(budget.atol, declared.atol);
        }
        other => panic!("expected an answer, got {other:?}"),
    }
    svc.shutdown();
}

/// Shutdown closes admission but drains everything already queued:
/// all admitted requests get answers, none are lost.
#[test]
fn shutdown_drains_in_flight_queries() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_cap: 512,
        ..Default::default()
    });
    let (tx, rx) = mpsc::channel();
    let reqs = mixed_corpus(32);
    for r in reqs {
        svc.submit(r, tx.clone());
    }
    // Immediately shut down: most of the 32 are still queued.
    let snap = svc.shutdown();
    drop(tx);
    let responses: Vec<Response> = rx.iter().collect();
    assert_eq!(responses.len(), 32, "shutdown must drain the queue");
    assert!(responses
        .iter()
        .all(|r| matches!(r.outcome, Outcome::Answer { .. })));
    assert_eq!(snap.completed, 32);
}

/// The cache serves repeat queries without re-evaluation, across
/// different field orderings of the same spec.
#[test]
fn cache_hits_across_field_order_and_batches() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    let (tx, rx) = mpsc::channel();
    let a = WorkloadSpec::new("flat")
        .with("blocks", 32.0)
        .with("bits", 96.0)
        .with("nonzero", 12.0);
    let b = WorkloadSpec::new("flat")
        .with("nonzero", 12.0)
        .with("bits", 96.0)
        .with("blocks", 32.0);
    svc.submit(req(1, "jpeg-decoder", a, Metric::Latency), tx.clone());
    svc.submit(req(2, "jpeg-decoder", b, Metric::Latency), tx.clone());
    drop(tx);
    let mut responses: Vec<Response> = rx.iter().collect();
    responses.sort_by_key(|r| r.id);
    let hit = |r: &Response| match &r.outcome {
        Outcome::Answer {
            cache_hit,
            prediction,
            ..
        } => (*cache_hit, *prediction),
        other => panic!("{other:?}"),
    };
    let (h1, p1) = hit(&responses[0]);
    let (h2, p2) = hit(&responses[1]);
    assert!(!h1, "first query must evaluate");
    assert!(h2, "reordered identical spec must hit the cache");
    assert_eq!(p1, p2);
    let snap = svc.shutdown();
    assert_eq!(snap.cache_hits, 1);
}
