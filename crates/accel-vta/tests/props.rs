//! Property tests for the VTA ISA and program generator.

use accel_vta::gen::ProgGen;
use accel_vta::isa::{self, AluOpcode, DepFlags, Insn, MemBuffer, Opcode};
use proptest::prelude::*;

fn insn_strategy() -> impl Strategy<Value = Insn> {
    let flags = (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(pop_prev, pop_next, push_prev, push_next)| DepFlags {
            pop_prev,
            pop_next,
            push_prev,
            push_next,
        },
    );
    let buffer = prop_oneof![
        Just(MemBuffer::Uop),
        Just(MemBuffer::Inp),
        Just(MemBuffer::Wgt),
        Just(MemBuffer::Acc),
        Just(MemBuffer::Out),
    ];
    let alu_op = prop_oneof![
        Just(AluOpcode::Add),
        Just(AluOpcode::Max),
        Just(AluOpcode::Min),
        Just(AluOpcode::Shr),
    ];
    let op = prop_oneof![
        (buffer, any::<u16>(), any::<u32>(), any::<u16>()).prop_map(
            |(buffer, sram_base, dram_base, count)| Opcode::Load {
                buffer,
                sram_base,
                dram_base,
                count,
            }
        ),
        (any::<u16>(), any::<u32>(), any::<u16>()).prop_map(|(sram_base, dram_base, count)| {
            Opcode::Store {
                sram_base,
                dram_base,
                count,
            }
        }),
        (
            0u16..8192,
            0u16..8192,
            0u16..16384,
            0u16..16384,
            (0u16..1024, 0u16..1024),
            (0u16..1024, 0u16..1024),
            (0u16..1024, 0u16..1024),
            any::<bool>()
        )
            .prop_map(
                |(uop_begin, uop_end, lp_out, lp_in, dst_factor, src_factor, wgt_factor, reset)| {
                    Opcode::Gemm {
                        uop_begin,
                        uop_end,
                        lp_out,
                        lp_in,
                        dst_factor,
                        src_factor,
                        wgt_factor,
                        reset,
                    }
                }
            ),
        (
            alu_op,
            any::<bool>(),
            0u16..8192,
            0u16..8192,
            0u16..16384,
            0u16..16384,
            (0u16..1024, 0u16..1024),
            (0u16..1024, 0u16..1024),
            any::<i16>()
        )
            .prop_map(
                |(op, use_imm, uop_begin, uop_end, lp_out, lp_in, dst_factor, src_factor, imm)| {
                    Opcode::Alu {
                        uop_begin,
                        uop_end,
                        lp_out,
                        lp_in,
                        dst_factor,
                        src_factor,
                        op,
                        use_imm,
                        imm,
                    }
                }
            ),
        Just(Opcode::Finish),
    ];
    (op, flags).prop_map(|(op, flags)| Insn { op, flags })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every instruction survives a 128-bit encode/decode round trip.
    #[test]
    fn encode_decode_roundtrip(insn in insn_strategy()) {
        let word = isa::encode(&insn);
        let back = isa::decode(word);
        prop_assert_eq!(back, Some(insn));
    }

    /// Dependency flags pack into 4 bits losslessly.
    #[test]
    fn flags_roundtrip(b in 0u8..16) {
        prop_assert_eq!(DepFlags::from_bits(b).bits(), b);
    }

    /// Every generated program is dependency-balanced and ends with
    /// FINISH, for any seed.
    #[test]
    fn generator_always_valid(seed in any::<u64>()) {
        let p = ProgGen::new(seed).gen_program();
        prop_assert!(p.check_deps().is_ok());
        prop_assert!(matches!(
            p.insns.last().map(|i| &i.op),
            Some(Opcode::Finish)
        ));
    }

    /// MAC accounting is the product of the loop extents.
    #[test]
    fn macs_product(u in 0u16..100, lo in 0u16..100, li in 0u16..100) {
        let insn = Insn::plain(Opcode::Gemm {
            uop_begin: 0,
            uop_end: u,
            lp_out: lo,
            lp_in: li,
            dst_factor: (0, 0),
            src_factor: (0, 0),
            wgt_factor: (0, 0),
            reset: false,
        });
        prop_assert_eq!(insn.macs(), u as u64 * lo as u64 * li as u64);
    }
}
