//! Calibration harness for the VTA interfaces.
use accel_vta::cycle::VtaCycleSim;
use accel_vta::gen::ProgGen;
use accel_vta::interface::petri::VtaPetriInterface;
use accel_vta::interface::program::VtaProgramInterface;
use perf_core::iface::Metric;
use perf_core::validate::validate;
use std::time::Instant;

#[test]
fn calibration_report() {
    let mut sim = VtaCycleSim::new_timing_only(accel_vta::VtaHwConfig::default());
    let full = VtaPetriInterface::new_full().unwrap();
    let lite = VtaPetriInterface::new_lite().unwrap();
    let prog_iface = VtaProgramInterface::new().unwrap();
    let mut g = ProgGen::new(777);
    let progs = g.gen_many(60);
    let rl = validate(&mut sim, &full, Metric::Latency, &progs).unwrap();
    let rt = validate(&mut sim, &full, Metric::Throughput, &progs).unwrap();
    let ll = validate(&mut sim, &lite, Metric::Latency, &progs).unwrap();
    let pl = validate(&mut sim, &prog_iface, Metric::Latency, &progs).unwrap();
    println!("full  latency: {}", rl.point.paper_style());
    println!("full  tput:    {}", rt.point.paper_style());
    println!("lite  latency: {}", ll.point.paper_style());
    println!("prog  latency: {}", pl.point.paper_style());

    // Speedup probe: wall-clock of profiling via the RTL-fidelity sim
    // vs the petri net, on a subset.
    let progs = &progs[..20];
    let mut sim = VtaCycleSim::default();
    let t0 = Instant::now();
    for p in progs {
        use perf_core::GroundTruth;
        sim.measure(p).unwrap();
    }
    let t_sim = t0.elapsed();
    let t0 = Instant::now();
    for p in progs {
        full.run(p).unwrap();
    }
    let t_petri = t0.elapsed();
    println!(
        "profiling: sim {:?} petri {:?} speedup {:.1}x",
        t_sim,
        t_petri,
        t_sim.as_secs_f64() / t_petri.as_secs_f64()
    );
}
