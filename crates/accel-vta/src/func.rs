//! The VTA functional model: real tensor math on scratchpads.
//!
//! Timing models alone cannot be tested for functional sanity, so this
//! module executes programs for real: DMA loads copy data from a DRAM
//! image into typed scratchpads, GEMM performs i8×i8→i32 vector MACs
//! through the micro-op cache, the ALU transforms accumulators, and
//! stores narrow results back to DRAM. A blocked matmul run through the
//! ISA must equal the naive reference — that is the correctness anchor
//! for everything else in this crate.

use crate::isa::{AluOpcode, Insn, MemBuffer, Opcode, Program};

/// A micro-op: indices into the accumulator, input and weight
/// scratchpads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Uop {
    /// Accumulator (destination) index.
    pub dst: u16,
    /// Input-vector index.
    pub src: u16,
    /// Weight-block index.
    pub wgt: u16,
}

/// The external memory image a program operates on.
#[derive(Clone, Debug, Default)]
pub struct DramImage {
    /// Micro-ops.
    pub uop: Vec<Uop>,
    /// Input vectors (16 × i8).
    pub inp: Vec<[i8; 16]>,
    /// Weight blocks (16 × 16 × i8), `wgt[i][j]` multiplies input lane
    /// `j` into output lane `i`.
    pub wgt: Vec<[[i8; 16]; 16]>,
    /// Accumulator initial values (16 × i32).
    pub acc: Vec<[i32; 16]>,
    /// Output vectors written by stores.
    pub out: Vec<[i8; 16]>,
}

/// Scratchpad sizes of the modeled configuration (entries).
pub const UOP_DEPTH: usize = 4096;
/// Input scratchpad entries.
pub const INP_DEPTH: usize = 2048;
/// Weight scratchpad entries.
pub const WGT_DEPTH: usize = 1024;
/// Accumulator entries.
pub const ACC_DEPTH: usize = 2048;

/// Functional execution error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuncError {
    /// An index exceeded a scratchpad or DRAM region.
    OutOfBounds(String),
}

impl core::fmt::Display for FuncError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FuncError::OutOfBounds(m) => write!(f, "out of bounds: {m}"),
        }
    }
}

impl std::error::Error for FuncError {}

/// The functional machine state.
pub struct FuncModel {
    uop: Vec<Uop>,
    inp: Vec<[i8; 16]>,
    wgt: Vec<[[i8; 16]; 16]>,
    acc: Vec<[i32; 16]>,
}

impl Default for FuncModel {
    fn default() -> FuncModel {
        FuncModel::new()
    }
}

impl FuncModel {
    /// Creates a machine with zeroed scratchpads.
    pub fn new() -> FuncModel {
        FuncModel {
            uop: vec![Uop::default(); UOP_DEPTH],
            inp: vec![[0; 16]; INP_DEPTH],
            wgt: vec![[[0; 16]; 16]; WGT_DEPTH],
            acc: vec![[0; 16]; ACC_DEPTH],
        }
    }

    /// Reads an accumulator entry (for tests).
    pub fn acc_entry(&self, i: usize) -> Option<&[i32; 16]> {
        self.acc.get(i)
    }

    /// Executes a program against a DRAM image. Stores write back into
    /// `dram.out`.
    pub fn execute(&mut self, prog: &Program, dram: &mut DramImage) -> Result<(), FuncError> {
        for insn in &prog.insns {
            self.step(insn, dram)?;
        }
        Ok(())
    }

    fn step(&mut self, insn: &Insn, dram: &mut DramImage) -> Result<(), FuncError> {
        match &insn.op {
            Opcode::Load {
                buffer,
                sram_base,
                dram_base,
                count,
            } => self.load(*buffer, *sram_base, *dram_base, *count, dram),
            Opcode::Store {
                sram_base,
                dram_base,
                count,
            } => {
                for k in 0..*count as usize {
                    let src = self
                        .acc
                        .get(*sram_base as usize + k)
                        .ok_or_else(|| FuncError::OutOfBounds(format!("store acc {k}")))?;
                    let mut v = [0i8; 16];
                    for (lane, x) in src.iter().enumerate() {
                        v[lane] = (*x).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
                    }
                    let dst = *dram_base as usize + k;
                    if dram.out.len() <= dst {
                        dram.out.resize(dst + 1, [0; 16]);
                    }
                    dram.out[dst] = v;
                }
                Ok(())
            }
            Opcode::Gemm {
                uop_begin,
                uop_end,
                lp_out,
                lp_in,
                dst_factor,
                src_factor,
                wgt_factor,
                reset,
            } => {
                for x in 0..*lp_out as usize {
                    for y in 0..*lp_in as usize {
                        for u in *uop_begin as usize..*uop_end as usize {
                            let uop = *self
                                .uop
                                .get(u)
                                .ok_or_else(|| FuncError::OutOfBounds(format!("uop {u}")))?;
                            let d = uop.dst as usize
                                + x * dst_factor.0 as usize
                                + y * dst_factor.1 as usize;
                            let s = uop.src as usize
                                + x * src_factor.0 as usize
                                + y * src_factor.1 as usize;
                            let w = uop.wgt as usize
                                + x * wgt_factor.0 as usize
                                + y * wgt_factor.1 as usize;
                            if d >= ACC_DEPTH || s >= INP_DEPTH || w >= WGT_DEPTH {
                                return Err(FuncError::OutOfBounds(format!(
                                    "gemm d={d} s={s} w={w}"
                                )));
                            }
                            if *reset {
                                self.acc[d] = [0; 16];
                            } else {
                                let inp = self.inp[s];
                                let wgt = self.wgt[w];
                                for (i, accum) in self.acc[d].iter_mut().enumerate() {
                                    let mut dot = 0i32;
                                    for j in 0..16 {
                                        dot += wgt[i][j] as i32 * inp[j] as i32;
                                    }
                                    *accum = accum.wrapping_add(dot);
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            Opcode::Alu {
                uop_begin,
                uop_end,
                lp_out,
                lp_in,
                dst_factor,
                src_factor,
                op,
                use_imm,
                imm,
            } => {
                for x in 0..*lp_out as usize {
                    for y in 0..*lp_in as usize {
                        for u in *uop_begin as usize..*uop_end as usize {
                            let uop = *self
                                .uop
                                .get(u)
                                .ok_or_else(|| FuncError::OutOfBounds(format!("uop {u}")))?;
                            let d = uop.dst as usize
                                + x * dst_factor.0 as usize
                                + y * dst_factor.1 as usize;
                            let s = uop.src as usize
                                + x * src_factor.0 as usize
                                + y * src_factor.1 as usize;
                            if d >= ACC_DEPTH || s >= ACC_DEPTH {
                                return Err(FuncError::OutOfBounds(format!("alu d={d} s={s}")));
                            }
                            let src_vec = self.acc[s];
                            for (dst, &src) in self.acc[d].iter_mut().zip(&src_vec) {
                                let a = *dst;
                                let b = if *use_imm { *imm as i32 } else { src };
                                *dst = match op {
                                    AluOpcode::Add => a.wrapping_add(b),
                                    AluOpcode::Max => a.max(b),
                                    AluOpcode::Min => a.min(b),
                                    AluOpcode::Shr => a >> (b & 31),
                                };
                            }
                        }
                    }
                }
                Ok(())
            }
            Opcode::Finish => Ok(()),
        }
    }

    fn load(
        &mut self,
        buffer: MemBuffer,
        sram_base: u16,
        dram_base: u32,
        count: u16,
        dram: &DramImage,
    ) -> Result<(), FuncError> {
        let s = sram_base as usize;
        let d = dram_base as usize;
        let n = count as usize;
        let oob = |what: &str| FuncError::OutOfBounds(what.to_string());
        match buffer {
            MemBuffer::Uop => {
                if d + n > dram.uop.len() || s + n > self.uop.len() {
                    return Err(oob("uop load"));
                }
                self.uop[s..s + n].copy_from_slice(&dram.uop[d..d + n]);
            }
            MemBuffer::Inp => {
                if d + n > dram.inp.len() || s + n > self.inp.len() {
                    return Err(oob("inp load"));
                }
                self.inp[s..s + n].copy_from_slice(&dram.inp[d..d + n]);
            }
            MemBuffer::Wgt => {
                if d + n > dram.wgt.len() || s + n > self.wgt.len() {
                    return Err(oob("wgt load"));
                }
                self.wgt[s..s + n].copy_from_slice(&dram.wgt[d..d + n]);
            }
            MemBuffer::Acc => {
                if d + n > dram.acc.len() || s + n > self.acc.len() {
                    return Err(oob("acc load"));
                }
                self.acc[s..s + n].copy_from_slice(&dram.acc[d..d + n]);
            }
            MemBuffer::Out => return Err(oob("cannot load into the out buffer")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::DepFlags;

    /// Builds a program computing C = A × B for 16n × 16n matrices
    /// blocked into 16×16 tiles, together with its DRAM image.
    ///
    /// Layout: A is stored row-of-tiles as input vectors (tile (bi,bk)
    /// row r at index (bi*n + bk)*16 + r); B as weight blocks
    /// transposed per tile; C accumulates one tile row per acc entry.
    pub fn matmul_setup(n: usize, a: &[Vec<i32>], b: &[Vec<i32>]) -> (Program, DramImage) {
        let mut dram = DramImage::default();
        // Inputs: A tiles.
        for bi in 0..n {
            for bk in 0..n {
                for r in 0..16 {
                    let mut v = [0i8; 16];
                    for c in 0..16 {
                        v[c] = a[bi * 16 + r][bk * 16 + c] as i8;
                    }
                    dram.inp.push(v);
                }
            }
        }
        // Weights: B tiles, transposed so wgt[i][j] = B[j][i] within
        // the tile (the GEMM computes acc[i] += sum_j wgt[i][j]*inp[j]).
        for bk in 0..n {
            for bj in 0..n {
                let mut blk = [[0i8; 16]; 16];
                for i in 0..16 {
                    for j in 0..16 {
                        blk[i][j] = b[bk * 16 + j][bj * 16 + i] as i8;
                    }
                }
                dram.wgt.push(blk);
            }
        }
        // One micro-op per tile row: dst = row, src = row, wgt = 0;
        // lp_out iterates rows via factors instead, so a single uop
        // with row strides suffices.
        dram.uop.push(Uop {
            dst: 0,
            src: 0,
            wgt: 0,
        });
        let mut insns = Vec::new();
        insns.push(Insn::plain(Opcode::Load {
            buffer: MemBuffer::Uop,
            sram_base: 0,
            dram_base: 0,
            count: 1,
        }));
        // Load all of A and B (they fit for the test sizes).
        insns.push(Insn::plain(Opcode::Load {
            buffer: MemBuffer::Inp,
            sram_base: 0,
            dram_base: 0,
            count: (n * n * 16) as u16,
        }));
        insns.push(Insn {
            op: Opcode::Load {
                buffer: MemBuffer::Wgt,
                sram_base: 0,
                dram_base: 0,
                count: (n * n) as u16,
            },
            flags: DepFlags {
                push_next: true,
                ..DepFlags::NONE
            },
        });
        // C tiles: acc entry (bi*n + bj)*16 + r.
        let mut first_gemm = true;
        for bi in 0..n {
            for bj in 0..n {
                for bk in 0..n {
                    insns.push(Insn {
                        op: Opcode::Gemm {
                            uop_begin: 0,
                            uop_end: 1,
                            lp_out: 16, // rows
                            lp_in: 1,
                            dst_factor: (1, 0),
                            src_factor: (1, 0),
                            wgt_factor: (0, 0),
                            reset: false,
                        },
                        flags: DepFlags {
                            pop_prev: first_gemm,
                            ..DepFlags::NONE
                        },
                    });
                    first_gemm = false;
                    // Patch the per-block bases by using distinct uops
                    // would be cleaner; for the test we instead insert
                    // per-block uop loads.
                    let gemm_idx = insns.len() - 1;
                    let acc_base = ((bi * n + bj) * 16) as u16;
                    let inp_base = ((bi * n + bk) * 16) as u16;
                    let wgt_idx = (bk * n + bj) as u16;
                    dram.uop.push(Uop {
                        dst: acc_base,
                        src: inp_base,
                        wgt: wgt_idx,
                    });
                    let uop_idx = (dram.uop.len() - 1) as u16;
                    insns.insert(
                        gemm_idx,
                        Insn::plain(Opcode::Load {
                            buffer: MemBuffer::Uop,
                            sram_base: uop_idx,
                            dram_base: uop_idx as u32,
                            count: 1,
                        }),
                    );
                    // Point the GEMM at its uop.
                    if let Opcode::Gemm {
                        uop_begin, uop_end, ..
                    } = &mut insns[gemm_idx + 1].op
                    {
                        *uop_begin = uop_idx;
                        *uop_end = uop_idx + 1;
                    }
                }
                // Store tile row block of C.
                insns.push(Insn {
                    op: Opcode::Store {
                        sram_base: ((bi * n + bj) * 16) as u16,
                        dram_base: ((bi * n + bj) * 16) as u32,
                        count: 16,
                    },
                    flags: DepFlags::NONE,
                });
            }
        }
        insns.push(Insn::plain(Opcode::Finish));
        (Program { insns }, dram)
    }

    fn naive_matmul(a: &[Vec<i32>], b: &[Vec<i32>]) -> Vec<Vec<i32>> {
        let n = a.len();
        let mut c = vec![vec![0i32; n]; n];
        for i in 0..n {
            for j in 0..n {
                for (k, brow) in b.iter().enumerate() {
                    c[i][j] += a[i][k] * brow[j];
                }
            }
        }
        c
    }

    #[test]
    fn blocked_matmul_matches_naive() {
        let n = 2; // 32x32 matrices in 16x16 tiles.
        let dim = n * 16;
        let a: Vec<Vec<i32>> = (0..dim)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 7 + j * 3) % 11) as i32 - 5)
                    .collect()
            })
            .collect();
        let b: Vec<Vec<i32>> = (0..dim)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 5 + j * 13) % 9) as i32 - 4)
                    .collect()
            })
            .collect();
        let (prog, mut dram) = matmul_setup(n, &a, &b);
        prog.check_deps().expect("dep-balanced test program");
        let mut m = FuncModel::new();
        m.execute(&prog, &mut dram).expect("executes");
        let c_ref = naive_matmul(&a, &b);
        for bi in 0..n {
            for bj in 0..n {
                for r in 0..16 {
                    let got = dram.out[(bi * n + bj) * 16 + r];
                    for cl in 0..16 {
                        assert_eq!(
                            got[cl] as i32,
                            c_ref[bi * 16 + r][bj * 16 + cl],
                            "C[{},{}]",
                            bi * 16 + r,
                            bj * 16 + cl
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn alu_ops_apply() {
        let mut m = FuncModel::new();
        let mut dram = DramImage::default();
        dram.uop.push(Uop {
            dst: 0,
            src: 1,
            wgt: 0,
        });
        dram.acc.push([10; 16]);
        dram.acc.push([3; 16]);
        let prog = Program {
            insns: vec![
                Insn::plain(Opcode::Load {
                    buffer: MemBuffer::Uop,
                    sram_base: 0,
                    dram_base: 0,
                    count: 1,
                }),
                Insn::plain(Opcode::Load {
                    buffer: MemBuffer::Acc,
                    sram_base: 0,
                    dram_base: 0,
                    count: 2,
                }),
                Insn::plain(Opcode::Alu {
                    uop_begin: 0,
                    uop_end: 1,
                    lp_out: 1,
                    lp_in: 1,
                    dst_factor: (0, 0),
                    src_factor: (0, 0),
                    op: AluOpcode::Add,
                    use_imm: false,
                    imm: 0,
                }),
                Insn::plain(Opcode::Alu {
                    uop_begin: 0,
                    uop_end: 1,
                    lp_out: 1,
                    lp_in: 1,
                    dst_factor: (0, 0),
                    src_factor: (0, 0),
                    op: AluOpcode::Shr,
                    use_imm: true,
                    imm: 1,
                }),
                Insn::plain(Opcode::Store {
                    sram_base: 0,
                    dram_base: 0,
                    count: 1,
                }),
            ],
        };
        m.execute(&prog, &mut dram).unwrap();
        // (10 + 3) >> 1 = 6.
        assert_eq!(dram.out[0], [6i8; 16]);
    }

    #[test]
    fn reset_gemm_zeroes_accumulators() {
        let mut m = FuncModel::new();
        let mut dram = DramImage::default();
        dram.uop.push(Uop::default());
        dram.acc.push([123; 16]);
        let prog = Program {
            insns: vec![
                Insn::plain(Opcode::Load {
                    buffer: MemBuffer::Uop,
                    sram_base: 0,
                    dram_base: 0,
                    count: 1,
                }),
                Insn::plain(Opcode::Load {
                    buffer: MemBuffer::Acc,
                    sram_base: 0,
                    dram_base: 0,
                    count: 1,
                }),
                Insn::plain(Opcode::Gemm {
                    uop_begin: 0,
                    uop_end: 1,
                    lp_out: 1,
                    lp_in: 1,
                    dst_factor: (0, 0),
                    src_factor: (0, 0),
                    wgt_factor: (0, 0),
                    reset: true,
                }),
            ],
        };
        m.execute(&prog, &mut dram).unwrap();
        assert_eq!(m.acc_entry(0), Some(&[0i32; 16]));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = FuncModel::new();
        let mut dram = DramImage::default();
        let prog = Program {
            insns: vec![Insn::plain(Opcode::Load {
                buffer: MemBuffer::Inp,
                sram_base: 0,
                dram_base: 0,
                count: 4, // DRAM image is empty.
            })],
        };
        assert!(m.execute(&prog, &mut dram).is_err());
    }

    #[test]
    fn store_clamps_to_i8() {
        let mut m = FuncModel::new();
        let mut dram = DramImage::default();
        dram.acc.push([300; 16]);
        let prog = Program {
            insns: vec![
                Insn::plain(Opcode::Load {
                    buffer: MemBuffer::Acc,
                    sram_base: 0,
                    dram_base: 0,
                    count: 1,
                }),
                Insn::plain(Opcode::Store {
                    sram_base: 0,
                    dram_base: 0,
                    count: 1,
                }),
            ],
        };
        m.execute(&prog, &mut dram).unwrap();
        assert_eq!(dram.out[0], [127i8; 16]);
    }
}
