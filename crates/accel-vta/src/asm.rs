//! A textual assembly format for VTA programs.
//!
//! Tools that consume performance interfaces need program artifacts
//! they can read and write; this module provides the assembler and
//! disassembler:
//!
//! ```text
//! load.uop   sram=0 dram=16 count=8
//! load.inp   sram=0 dram=1024 count=64
//! load.wgt   sram=0 dram=2048 count=8 flags=shn
//! gemm       uop=0..8 lp=14x3 dst=1,0 src=0,1 wgt=3,0 flags=pp,shp,shn
//! alu.shr    imm=-3 uop=1..4 lp=7x2 dst=2,1 src=1,2
//! store      sram=5 dram=4096 count=14 flags=pp,shp
//! finish
//! ```
//!
//! `flags` lists any of `pp` (pop prev), `pn` (pop next), `shp` (push
//! prev), `shn` (push next). `gemm.rst` resets accumulators; `alu.*i`
//! variants are spelled with `imm=`.

use crate::isa::{AluOpcode, DepFlags, Insn, MemBuffer, Opcode, Program};

/// Assembly error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn parse_flags(s: &str, line: usize) -> Result<DepFlags, AsmError> {
    let mut f = DepFlags::NONE;
    for part in s.split(',').filter(|p| !p.is_empty()) {
        match part {
            "pp" => f.pop_prev = true,
            "pn" => f.pop_next = true,
            "shp" => f.push_prev = true,
            "shn" => f.push_next = true,
            other => {
                return Err(AsmError {
                    line,
                    msg: format!("unknown flag `{other}`"),
                })
            }
        }
    }
    Ok(f)
}

struct Args<'a> {
    line: usize,
    kv: Vec<(&'a str, &'a str)>,
}

impl<'a> Args<'a> {
    fn parse(rest: &'a str, line: usize) -> Result<Args<'a>, AsmError> {
        let mut kv = Vec::new();
        for tok in rest.split_whitespace() {
            let (k, v) = tok.split_once('=').ok_or_else(|| AsmError {
                line,
                msg: format!("expected key=value, found `{tok}`"),
            })?;
            kv.push((k, v));
        }
        Ok(Args { line, kv })
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.kv.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn num<T: core::str::FromStr>(&self, key: &str) -> Result<T, AsmError> {
        let raw = self.get(key).ok_or_else(|| AsmError {
            line: self.line,
            msg: format!("missing `{key}=`"),
        })?;
        raw.parse().map_err(|_| AsmError {
            line: self.line,
            msg: format!("bad value for `{key}`: `{raw}`"),
        })
    }

    fn num_or<T: core::str::FromStr>(&self, key: &str, default: T) -> Result<T, AsmError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| AsmError {
                line: self.line,
                msg: format!("bad value for `{key}`: `{raw}`"),
            }),
        }
    }

    fn pair(&self, key: &str) -> Result<(u16, u16), AsmError> {
        let raw = self.get(key).ok_or_else(|| AsmError {
            line: self.line,
            msg: format!("missing `{key}=`"),
        })?;
        let (a, b) = raw.split_once(',').ok_or_else(|| AsmError {
            line: self.line,
            msg: format!("`{key}` needs `a,b`"),
        })?;
        Ok((
            a.parse().map_err(|_| AsmError {
                line: self.line,
                msg: format!("bad `{key}`"),
            })?,
            b.parse().map_err(|_| AsmError {
                line: self.line,
                msg: format!("bad `{key}`"),
            })?,
        ))
    }

    fn range(&self, key: &str) -> Result<(u16, u16), AsmError> {
        let raw = self.get(key).ok_or_else(|| AsmError {
            line: self.line,
            msg: format!("missing `{key}=`"),
        })?;
        let (a, b) = raw.split_once("..").ok_or_else(|| AsmError {
            line: self.line,
            msg: format!("`{key}` needs `a..b`"),
        })?;
        Ok((
            a.parse().map_err(|_| AsmError {
                line: self.line,
                msg: format!("bad `{key}`"),
            })?,
            b.parse().map_err(|_| AsmError {
                line: self.line,
                msg: format!("bad `{key}`"),
            })?,
        ))
    }

    fn lp(&self) -> Result<(u16, u16), AsmError> {
        let raw = self.get("lp").ok_or_else(|| AsmError {
            line: self.line,
            msg: "missing `lp=`".into(),
        })?;
        let (a, b) = raw.split_once('x').ok_or_else(|| AsmError {
            line: self.line,
            msg: "`lp` needs `OUTxIN`".into(),
        })?;
        Ok((
            a.parse().map_err(|_| AsmError {
                line: self.line,
                msg: "bad `lp`".into(),
            })?,
            b.parse().map_err(|_| AsmError {
                line: self.line,
                msg: "bad `lp`".into(),
            })?,
        ))
    }

    fn flags(&self) -> Result<DepFlags, AsmError> {
        match self.get("flags") {
            None => Ok(DepFlags::NONE),
            Some(s) => parse_flags(s, self.line),
        }
    }
}

/// Assembles source text into a program.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut insns = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let text = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let args = Args::parse(rest, line)?;
        let flags = args.flags()?;
        let op = match mnemonic {
            "load.uop" | "load.inp" | "load.wgt" | "load.acc" => {
                let buffer = match mnemonic {
                    "load.uop" => MemBuffer::Uop,
                    "load.inp" => MemBuffer::Inp,
                    "load.wgt" => MemBuffer::Wgt,
                    _ => MemBuffer::Acc,
                };
                Opcode::Load {
                    buffer,
                    sram_base: args.num("sram")?,
                    dram_base: args.num("dram")?,
                    count: args.num("count")?,
                }
            }
            "store" => Opcode::Store {
                sram_base: args.num("sram")?,
                dram_base: args.num("dram")?,
                count: args.num("count")?,
            },
            "gemm" | "gemm.rst" => {
                let (uop_begin, uop_end) = args.range("uop")?;
                let (lp_out, lp_in) = args.lp()?;
                Opcode::Gemm {
                    uop_begin,
                    uop_end,
                    lp_out,
                    lp_in,
                    dst_factor: args.pair("dst")?,
                    src_factor: args.pair("src")?,
                    wgt_factor: args.pair("wgt")?,
                    reset: mnemonic == "gemm.rst",
                }
            }
            m if m.starts_with("alu.") => {
                let op = match &m[4..] {
                    "add" => AluOpcode::Add,
                    "max" => AluOpcode::Max,
                    "min" => AluOpcode::Min,
                    "shr" => AluOpcode::Shr,
                    other => {
                        return Err(AsmError {
                            line,
                            msg: format!("unknown alu op `{other}`"),
                        })
                    }
                };
                let (uop_begin, uop_end) = args.range("uop")?;
                let (lp_out, lp_in) = args.lp()?;
                let use_imm = args.get("imm").is_some();
                Opcode::Alu {
                    uop_begin,
                    uop_end,
                    lp_out,
                    lp_in,
                    dst_factor: args.pair("dst")?,
                    src_factor: args.pair("src")?,
                    op,
                    use_imm,
                    imm: args.num_or("imm", 0)?,
                }
            }
            "finish" => Opcode::Finish,
            other => {
                return Err(AsmError {
                    line,
                    msg: format!("unknown mnemonic `{other}`"),
                })
            }
        };
        insns.push(Insn { op, flags });
    }
    Ok(Program { insns })
}

fn flags_text(f: &DepFlags) -> String {
    let mut parts = Vec::new();
    if f.pop_prev {
        parts.push("pp");
    }
    if f.pop_next {
        parts.push("pn");
    }
    if f.push_prev {
        parts.push("shp");
    }
    if f.push_next {
        parts.push("shn");
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(" flags={}", parts.join(","))
    }
}

/// Disassembles a program into canonical assembly text.
pub fn disassemble(prog: &Program) -> String {
    let mut out = String::new();
    for insn in &prog.insns {
        let f = flags_text(&insn.flags);
        let line = match &insn.op {
            Opcode::Load {
                buffer,
                sram_base,
                dram_base,
                count,
            } => {
                let b = match buffer {
                    MemBuffer::Uop => "uop",
                    MemBuffer::Inp => "inp",
                    MemBuffer::Wgt => "wgt",
                    MemBuffer::Acc => "acc",
                    MemBuffer::Out => "out",
                };
                format!("load.{b} sram={sram_base} dram={dram_base} count={count}{f}")
            }
            Opcode::Store {
                sram_base,
                dram_base,
                count,
            } => format!("store sram={sram_base} dram={dram_base} count={count}{f}"),
            Opcode::Gemm {
                uop_begin,
                uop_end,
                lp_out,
                lp_in,
                dst_factor,
                src_factor,
                wgt_factor,
                reset,
            } => format!(
                "gemm{} uop={uop_begin}..{uop_end} lp={lp_out}x{lp_in} dst={},{} src={},{} wgt={},{}{f}",
                if *reset { ".rst" } else { "" },
                dst_factor.0,
                dst_factor.1,
                src_factor.0,
                src_factor.1,
                wgt_factor.0,
                wgt_factor.1
            ),
            Opcode::Alu {
                uop_begin,
                uop_end,
                lp_out,
                lp_in,
                dst_factor,
                src_factor,
                op,
                use_imm,
                imm,
            } => {
                let name = match op {
                    AluOpcode::Add => "add",
                    AluOpcode::Max => "max",
                    AluOpcode::Min => "min",
                    AluOpcode::Shr => "shr",
                };
                let imm_part = if *use_imm {
                    format!(" imm={imm}")
                } else {
                    String::new()
                };
                format!(
                    "alu.{name}{imm_part} uop={uop_begin}..{uop_end} lp={lp_out}x{lp_in} dst={},{} src={},{}{f}",
                    dst_factor.0, dst_factor.1, src_factor.0, src_factor.1
                )
            }
            Opcode::Finish => format!("finish{f}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ProgGen;

    const SAMPLE: &str = "
# a tiny kernel
load.uop  sram=0 dram=16 count=8
load.inp  sram=0 dram=1024 count=64
load.wgt  sram=0 dram=2048 count=8 flags=shn
gemm      uop=0..8 lp=14x3 dst=1,0 src=0,1 wgt=3,0 flags=pp,shp,shn
alu.shr   imm=-3 uop=1..4 lp=7x2 dst=2,1 src=1,2
store     sram=5 dram=4096 count=14 flags=pp,shp
finish
";

    #[test]
    fn assembles_sample() {
        let p = assemble(SAMPLE).expect("assembles");
        assert_eq!(p.len(), 7);
        p.check_deps().expect("dependency-balanced");
        assert_eq!(p.total_macs(), 8 * 14 * 3);
    }

    #[test]
    fn roundtrip_sample() {
        let p1 = assemble(SAMPLE).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn roundtrip_generated_programs() {
        let mut g = ProgGen::new(17);
        for p in g.gen_many(40) {
            let text = disassemble(&p);
            let back = assemble(&text)
                .unwrap_or_else(|e| panic!("disassembly must re-assemble: {e}\n{text}"));
            assert_eq!(p, back);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("finish\nbogus x=1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));
        let e = assemble("load.inp sram=0 dram=0\n").unwrap_err();
        assert!(e.msg.contains("count"));
        let e = assemble("gemm uop=0..1 lp=2x2 dst=0,0 src=0,0 wgt=0,0 flags=zz\n").unwrap_err();
        assert!(e.msg.contains("zz"));
    }

    #[test]
    fn alu_without_imm_uses_register_operand() {
        let p = assemble("alu.add uop=0..1 lp=1x1 dst=0,0 src=1,0\nfinish\n").unwrap();
        let Opcode::Alu { use_imm, .. } = &p.insns[0].op else {
            panic!("expected alu");
        };
        assert!(!use_imm);
    }
}
