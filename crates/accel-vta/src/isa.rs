//! The VTA instruction set: task instructions with dependency-token
//! flags, plus a 128-bit binary encoding.

/// Which hardware module executes an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Module {
    /// DMA loads of inputs and weights.
    Load,
    /// GEMM core and vector ALU (also loads micro-ops and accumulators).
    Compute,
    /// DMA stores of outputs.
    Store,
}

/// Dependency-token flags, as in the real VTA: each module synchronizes
/// with its neighbors through token queues. `prev`/`next` are relative
/// to the pipeline order load → compute → store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DepFlags {
    /// Wait for a token from the previous module before starting.
    pub pop_prev: bool,
    /// Wait for a token from the next module before starting.
    pub pop_next: bool,
    /// Signal the previous module after finishing.
    pub push_prev: bool,
    /// Signal the next module after finishing.
    pub push_next: bool,
}

impl DepFlags {
    /// No synchronization.
    pub const NONE: DepFlags = DepFlags {
        pop_prev: false,
        pop_next: false,
        push_prev: false,
        push_next: false,
    };

    /// Encodes the flags as 4 bits.
    pub fn bits(&self) -> u8 {
        (self.pop_prev as u8)
            | (self.pop_next as u8) << 1
            | (self.push_prev as u8) << 2
            | (self.push_next as u8) << 3
    }

    /// Decodes 4 bits.
    pub fn from_bits(b: u8) -> DepFlags {
        DepFlags {
            pop_prev: b & 1 != 0,
            pop_next: b & 2 != 0,
            push_prev: b & 4 != 0,
            push_next: b & 8 != 0,
        }
    }
}

/// On-chip buffer targeted by a LOAD/STORE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemBuffer {
    /// Micro-op cache (loaded by the compute module).
    Uop,
    /// Input activations scratchpad.
    Inp,
    /// Weight scratchpad.
    Wgt,
    /// Accumulator scratchpad (loaded by the compute module).
    Acc,
    /// Output buffer (written by stores).
    Out,
}

impl MemBuffer {
    /// Bytes per element of this buffer (one vector/block entry).
    pub fn elem_bytes(&self) -> u64 {
        match self {
            MemBuffer::Uop => 4,
            MemBuffer::Inp => 16,  // 16 x i8 vector
            MemBuffer::Wgt => 256, // 16 x 16 x i8 block
            MemBuffer::Acc => 64,  // 16 x i32 vector
            MemBuffer::Out => 16,  // 16 x i8 vector
        }
    }

    /// Which module executes a LOAD of this buffer.
    pub fn load_module(&self) -> Module {
        match self {
            MemBuffer::Uop | MemBuffer::Acc => Module::Compute,
            _ => Module::Load,
        }
    }

    fn code(&self) -> u8 {
        match self {
            MemBuffer::Uop => 0,
            MemBuffer::Inp => 1,
            MemBuffer::Wgt => 2,
            MemBuffer::Acc => 3,
            MemBuffer::Out => 4,
        }
    }

    fn from_code(c: u8) -> Option<MemBuffer> {
        Some(match c {
            0 => MemBuffer::Uop,
            1 => MemBuffer::Inp,
            2 => MemBuffer::Wgt,
            3 => MemBuffer::Acc,
            4 => MemBuffer::Out,
            _ => return None,
        })
    }
}

/// ALU micro-operation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOpcode {
    /// Elementwise add.
    Add,
    /// Elementwise max.
    Max,
    /// Elementwise min.
    Min,
    /// Arithmetic shift right.
    Shr,
}

impl AluOpcode {
    fn code(&self) -> u8 {
        match self {
            AluOpcode::Add => 0,
            AluOpcode::Max => 1,
            AluOpcode::Min => 2,
            AluOpcode::Shr => 3,
        }
    }

    fn from_code(c: u8) -> Option<AluOpcode> {
        Some(match c {
            0 => AluOpcode::Add,
            1 => AluOpcode::Max,
            2 => AluOpcode::Min,
            3 => AluOpcode::Shr,
            _ => return None,
        })
    }
}

/// Instruction operation payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum Opcode {
    /// DMA load into an on-chip buffer: `count` elements starting at
    /// `sram_base` from DRAM address `dram_base`.
    Load {
        /// Destination buffer.
        buffer: MemBuffer,
        /// On-chip start element.
        sram_base: u16,
        /// DRAM start element index.
        dram_base: u32,
        /// Elements to transfer.
        count: u16,
    },
    /// DMA store from the output buffer to DRAM.
    Store {
        /// On-chip start element.
        sram_base: u16,
        /// DRAM start element index.
        dram_base: u32,
        /// Elements to transfer.
        count: u16,
    },
    /// Dense micro-coded matrix multiply over a 2-level loop nest.
    Gemm {
        /// First micro-op index.
        uop_begin: u16,
        /// One past the last micro-op index.
        uop_end: u16,
        /// Outer loop extent.
        lp_out: u16,
        /// Inner loop extent.
        lp_in: u16,
        /// Accumulator index stride per outer/inner iteration.
        dst_factor: (u16, u16),
        /// Input index stride per outer/inner iteration.
        src_factor: (u16, u16),
        /// Weight index stride per outer/inner iteration.
        wgt_factor: (u16, u16),
        /// Reset accumulators instead of multiply-accumulate.
        reset: bool,
    },
    /// Micro-coded vector ALU over a 2-level loop nest.
    Alu {
        /// First micro-op index.
        uop_begin: u16,
        /// One past the last micro-op index.
        uop_end: u16,
        /// Outer loop extent.
        lp_out: u16,
        /// Inner loop extent.
        lp_in: u16,
        /// Destination stride per outer/inner iteration.
        dst_factor: (u16, u16),
        /// Source stride per outer/inner iteration.
        src_factor: (u16, u16),
        /// Operation.
        op: AluOpcode,
        /// Use the immediate instead of a second operand.
        use_imm: bool,
        /// Immediate operand.
        imm: i16,
    },
    /// End of program: compute module raises the done flag.
    Finish,
}

/// A complete instruction: operation + dependency flags.
#[derive(Clone, Debug, PartialEq)]
pub struct Insn {
    /// The operation.
    pub op: Opcode,
    /// Dependency-token flags.
    pub flags: DepFlags,
}

impl Insn {
    /// Creates an instruction with no synchronization.
    pub fn plain(op: Opcode) -> Insn {
        Insn {
            op,
            flags: DepFlags::NONE,
        }
    }

    /// The module that executes this instruction.
    pub fn module(&self) -> Module {
        match &self.op {
            Opcode::Load { buffer, .. } => buffer.load_module(),
            Opcode::Store { .. } => Module::Store,
            Opcode::Gemm { .. } | Opcode::Alu { .. } | Opcode::Finish => Module::Compute,
        }
    }

    /// Total multiply-accumulate vector ops of a GEMM (0 otherwise).
    pub fn macs(&self) -> u64 {
        match &self.op {
            Opcode::Gemm {
                uop_begin,
                uop_end,
                lp_out,
                lp_in,
                ..
            } => (*uop_end as u64 - *uop_begin as u64) * (*lp_out as u64) * (*lp_in as u64),
            _ => 0,
        }
    }
}

/// A VTA program: a linear instruction stream dispatched by the fetch
/// module.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// The instruction stream.
    pub insns: Vec<Insn>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// A 64-bit structural fingerprint: FNV-1a over the canonical
    /// 128-bit instruction encodings. Programs with equal instruction
    /// streams fingerprint identically, so the value serves as a memo
    /// key for cost oracles (`perf-autotune`'s `CachedCost`).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for insn in &self.insns {
            for word in encode(insn) {
                for byte in word.to_le_bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        h
    }

    /// Checks dependency-token balance: every pop must be matched by a
    /// push on the same queue, with no queue ever popped before a
    /// token could have been pushed (conservative linear-order check).
    /// Returns the first problem found.
    pub fn check_deps(&self) -> Result<(), String> {
        // Queues: (from, to) keyed by the popping module's view.
        // l2c: load pushes next, compute pops prev.
        // c2l: compute pushes prev, load pops next.
        // c2s: compute pushes next, store pops prev.
        // s2c: store pushes prev, compute pops next.
        let mut bal = [0i64; 4]; // l2c, c2l, c2s, s2c
        for (i, insn) in self.insns.iter().enumerate() {
            let m = insn.module();
            let f = insn.flags;
            let pop = |q: usize, bal: &mut [i64; 4]| -> Result<(), String> {
                bal[q] -= 1;
                if bal[q] < 0 {
                    return Err(format!("insn {i}: pops queue {q} before any matching push"));
                }
                Ok(())
            };
            match m {
                Module::Load => {
                    if f.pop_next {
                        pop(1, &mut bal)?;
                    }
                    if f.push_next {
                        bal[0] += 1;
                    }
                    if f.pop_prev || f.push_prev {
                        return Err(format!("insn {i}: load has no previous module"));
                    }
                }
                Module::Compute => {
                    if f.pop_prev {
                        pop(0, &mut bal)?;
                    }
                    if f.pop_next {
                        pop(3, &mut bal)?;
                    }
                    if f.push_prev {
                        bal[1] += 1;
                    }
                    if f.push_next {
                        bal[2] += 1;
                    }
                }
                Module::Store => {
                    if f.pop_prev {
                        pop(2, &mut bal)?;
                    }
                    if f.push_prev {
                        bal[3] += 1;
                    }
                    if f.pop_next || f.push_next {
                        return Err(format!("insn {i}: store has no next module"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total GEMM vector-MAC count of the program.
    pub fn total_macs(&self) -> u64 {
        self.insns.iter().map(Insn::macs).sum()
    }
}

/// Encodes an instruction as a 128-bit word (two `u64`s).
pub fn encode(insn: &Insn) -> [u64; 2] {
    let f = insn.flags.bits() as u64;
    match &insn.op {
        Opcode::Load {
            buffer,
            sram_base,
            dram_base,
            count,
        } => {
            let lo = (f << 3)
                | (buffer.code() as u64) << 7
                | (*sram_base as u64) << 10
                | (*count as u64) << 26;
            let hi = *dram_base as u64;
            [lo, hi]
        }
        Opcode::Store {
            sram_base,
            dram_base,
            count,
        } => {
            let lo = 1u64 | f << 3 | (*sram_base as u64) << 10 | (*count as u64) << 26;
            let hi = *dram_base as u64;
            [lo, hi]
        }
        Opcode::Gemm {
            uop_begin,
            uop_end,
            lp_out,
            lp_in,
            dst_factor,
            src_factor,
            wgt_factor,
            reset,
        } => {
            let lo = 2u64
                | f << 3
                | (*reset as u64) << 7
                | (*uop_begin as u64) << 8
                | (*uop_end as u64) << 21
                | (*lp_out as u64) << 34
                | (*lp_in as u64) << 48;
            let hi = (dst_factor.0 as u64)
                | (dst_factor.1 as u64) << 10
                | (src_factor.0 as u64) << 20
                | (src_factor.1 as u64) << 30
                | (wgt_factor.0 as u64) << 40
                | (wgt_factor.1 as u64) << 50;
            [lo, hi]
        }
        Opcode::Alu {
            uop_begin,
            uop_end,
            lp_out,
            lp_in,
            dst_factor,
            src_factor,
            op,
            use_imm,
            imm,
        } => {
            let lo = 3u64
                | f << 3
                | (op.code() as u64) << 7
                | (*use_imm as u64) << 9
                | (*uop_begin as u64) << 10
                | (*uop_end as u64) << 23
                | (*lp_out as u64) << 36
                | (*lp_in as u64) << 50;
            let hi = (dst_factor.0 as u64)
                | (dst_factor.1 as u64) << 10
                | (src_factor.0 as u64) << 20
                | (src_factor.1 as u64) << 30
                | ((*imm as u16) as u64) << 40;
            [lo, hi]
        }
        Opcode::Finish => [4u64 | f << 3, 0],
    }
}

/// Decodes a 128-bit word back into an instruction.
pub fn decode(word: [u64; 2]) -> Option<Insn> {
    let lo = word[0];
    let hi = word[1];
    let flags = DepFlags::from_bits(((lo >> 3) & 0xf) as u8);
    let op = match lo & 0x7 {
        0 => Opcode::Load {
            buffer: MemBuffer::from_code(((lo >> 7) & 0x7) as u8)?,
            sram_base: ((lo >> 10) & 0xffff) as u16,
            count: ((lo >> 26) & 0xffff) as u16,
            dram_base: hi as u32,
        },
        1 => Opcode::Store {
            sram_base: ((lo >> 10) & 0xffff) as u16,
            count: ((lo >> 26) & 0xffff) as u16,
            dram_base: hi as u32,
        },
        2 => Opcode::Gemm {
            reset: (lo >> 7) & 1 != 0,
            uop_begin: ((lo >> 8) & 0x1fff) as u16,
            uop_end: ((lo >> 21) & 0x1fff) as u16,
            lp_out: ((lo >> 34) & 0x3fff) as u16,
            lp_in: ((lo >> 48) & 0x3fff) as u16,
            dst_factor: (((hi) & 0x3ff) as u16, ((hi >> 10) & 0x3ff) as u16),
            src_factor: (((hi >> 20) & 0x3ff) as u16, ((hi >> 30) & 0x3ff) as u16),
            wgt_factor: (((hi >> 40) & 0x3ff) as u16, ((hi >> 50) & 0x3ff) as u16),
        },
        3 => Opcode::Alu {
            op: AluOpcode::from_code(((lo >> 7) & 0x3) as u8)?,
            use_imm: (lo >> 9) & 1 != 0,
            uop_begin: ((lo >> 10) & 0x1fff) as u16,
            uop_end: ((lo >> 23) & 0x1fff) as u16,
            lp_out: ((lo >> 36) & 0x3fff) as u16,
            lp_in: ((lo >> 50) & 0x3fff) as u16,
            dst_factor: (((hi) & 0x3ff) as u16, ((hi >> 10) & 0x3ff) as u16),
            src_factor: (((hi >> 20) & 0x3ff) as u16, ((hi >> 30) & 0x3ff) as u16),
            imm: ((hi >> 40) & 0xffff) as u16 as i16,
        },
        4 => Opcode::Finish,
        _ => return None,
    };
    Some(Insn { op, flags })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insns() -> Vec<Insn> {
        vec![
            Insn {
                op: Opcode::Load {
                    buffer: MemBuffer::Inp,
                    sram_base: 12,
                    dram_base: 0xabcd,
                    count: 64,
                },
                flags: DepFlags {
                    push_next: true,
                    ..DepFlags::NONE
                },
            },
            Insn {
                op: Opcode::Gemm {
                    uop_begin: 0,
                    uop_end: 9,
                    lp_out: 14,
                    lp_in: 3,
                    dst_factor: (1, 14),
                    src_factor: (0, 1),
                    wgt_factor: (3, 0),
                    reset: false,
                },
                flags: DepFlags {
                    pop_prev: true,
                    push_next: true,
                    ..DepFlags::NONE
                },
            },
            Insn {
                op: Opcode::Alu {
                    uop_begin: 1,
                    uop_end: 4,
                    lp_out: 7,
                    lp_in: 2,
                    dst_factor: (2, 1),
                    src_factor: (1, 2),
                    op: AluOpcode::Shr,
                    use_imm: true,
                    imm: -3,
                },
                flags: DepFlags::NONE,
            },
            Insn {
                op: Opcode::Store {
                    sram_base: 5,
                    dram_base: 0x1000,
                    count: 14,
                },
                flags: DepFlags {
                    pop_prev: true,
                    push_prev: true,
                    ..DepFlags::NONE
                },
            },
            Insn::plain(Opcode::Finish),
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for insn in sample_insns() {
            let word = encode(&insn);
            let back = decode(word).expect("decodes");
            assert_eq!(back, insn);
        }
    }

    #[test]
    fn dep_flag_bits_roundtrip() {
        for b in 0..16u8 {
            assert_eq!(DepFlags::from_bits(b).bits(), b);
        }
    }

    #[test]
    fn module_routing() {
        let insns = sample_insns();
        assert_eq!(insns[0].module(), Module::Load);
        assert_eq!(insns[1].module(), Module::Compute);
        assert_eq!(insns[3].module(), Module::Store);
        // Uop and Acc loads run on the compute module.
        let uop_load = Insn::plain(Opcode::Load {
            buffer: MemBuffer::Uop,
            sram_base: 0,
            dram_base: 0,
            count: 4,
        });
        assert_eq!(uop_load.module(), Module::Compute);
    }

    #[test]
    fn macs_counted() {
        let insns = sample_insns();
        assert_eq!(insns[1].macs(), 9 * 14 * 3);
        assert_eq!(insns[0].macs(), 0);
        let p = Program {
            insns: insns.clone(),
        };
        assert_eq!(p.total_macs(), 9 * 14 * 3);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn dep_balance_accepts_valid_program() {
        // load(push_next) ; gemm(pop_prev, push_next) ; store(pop_prev).
        let p = Program {
            insns: vec![
                Insn {
                    op: Opcode::Load {
                        buffer: MemBuffer::Inp,
                        sram_base: 0,
                        dram_base: 0,
                        count: 1,
                    },
                    flags: DepFlags {
                        push_next: true,
                        ..DepFlags::NONE
                    },
                },
                Insn {
                    op: Opcode::Gemm {
                        uop_begin: 0,
                        uop_end: 1,
                        lp_out: 1,
                        lp_in: 1,
                        dst_factor: (0, 0),
                        src_factor: (0, 0),
                        wgt_factor: (0, 0),
                        reset: false,
                    },
                    flags: DepFlags {
                        pop_prev: true,
                        push_next: true,
                        ..DepFlags::NONE
                    },
                },
                Insn {
                    op: Opcode::Store {
                        sram_base: 0,
                        dram_base: 0,
                        count: 1,
                    },
                    flags: DepFlags {
                        pop_prev: true,
                        ..DepFlags::NONE
                    },
                },
            ],
        };
        p.check_deps().expect("balanced");
    }

    #[test]
    fn dep_balance_rejects_unmatched_pop() {
        let p = Program {
            insns: vec![Insn {
                op: Opcode::Gemm {
                    uop_begin: 0,
                    uop_end: 1,
                    lp_out: 1,
                    lp_in: 1,
                    dst_factor: (0, 0),
                    src_factor: (0, 0),
                    wgt_factor: (0, 0),
                    reset: false,
                },
                flags: DepFlags {
                    pop_prev: true,
                    ..DepFlags::NONE
                },
            }],
        };
        assert!(p.check_deps().is_err());
    }

    #[test]
    fn dep_balance_rejects_nonsense_flags() {
        let p = Program {
            insns: vec![Insn {
                op: Opcode::Load {
                    buffer: MemBuffer::Inp,
                    sram_base: 0,
                    dram_base: 0,
                    count: 1,
                },
                flags: DepFlags {
                    pop_prev: true, // Load has no previous module.
                    ..DepFlags::NONE
                },
            }],
        };
        assert!(p.check_deps().is_err());
    }

    #[test]
    fn buffer_geometry() {
        assert_eq!(MemBuffer::Wgt.elem_bytes(), 256);
        assert_eq!(MemBuffer::Inp.elem_bytes(), 16);
        assert_eq!(MemBuffer::Acc.elem_bytes(), 64);
    }
}
