//! A model of VTA (the Versatile Tensor Accelerator) and its
//! performance interfaces.
//!
//! VTA (Moreau et al., IEEE Micro '19) is the deep-learning accelerator
//! the paper uses for its hardest case: a design with internal queuing,
//! task-level parallelism across four modules (fetch, load, compute,
//! store) and explicit dependency tokens between them. The paper's
//! Table 1 shows a hand-derived Petri net predicting its latency and
//! throughput within ~1.5% on average, and §3 reports that using that
//! net as a cost model inside TVM-style autotuning is 2.1–1312× faster
//! than cycle-accurate simulation (our experiment E5).
//!
//! This crate contains:
//!
//! * [`isa`] — the instruction set: LOAD/GEMM/ALU/STORE with
//!   dependency-token flags, a 128-bit binary encoding and a decoder,
//! * [`func`] — the functional model: real i8×i8→i32 GEMM and ALU ops
//!   on scratchpads, validated against a naive matmul,
//! * [`cycle`] — the tick-accurate four-module simulator with
//!   dependency queues and a DRAM model (the "RTL" stand-in),
//! * [`gen`] — a generator of random, dependency-correct programs,
//! * [`interface`] — natural-language, program, and Petri-net
//!   interfaces, including the deliberately simplified `lite` net used
//!   by the corner-cutting ablation (E9).

pub mod asm;
pub mod cycle;
pub mod func;
pub mod gen;
pub mod interface;
pub mod isa;

pub use cycle::{VtaCycleSim, VtaHwConfig};
pub use isa::{AluOpcode, DepFlags, Insn, MemBuffer, Opcode, Program};

/// Source text of the accelerator implementation (ISA, functional and
/// cycle-accurate models), for the Table 1 interface-complexity ratio.
pub fn implementation_sources() -> Vec<&'static str> {
    vec![
        include_str!("isa.rs"),
        include_str!("func.rs"),
        include_str!("cycle.rs"),
    ]
}
