//! Random generation of dependency-correct VTA programs.
//!
//! The paper evaluates the VTA Petri net on "1500 random code
//! sequences". This generator produces programs with the double-
//! buffered block structure real VTA code has — per block: load inputs
//! and weights, (optionally) load accumulators and micro-ops, GEMM,
//! (optionally) an ALU epilogue, store — with dependency flags wired so
//! the program can never deadlock (every pop has a prior matching
//! push, and outstanding tokens never exceed the queue depth).

use crate::isa::{AluOpcode, DepFlags, Insn, MemBuffer, Opcode, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Program-shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Block count range (inclusive).
    pub blocks: (usize, usize),
    /// GEMM outer-loop extent range.
    pub lp_out: (u16, u16),
    /// GEMM inner-loop extent range.
    pub lp_in: (u16, u16),
    /// Micro-ops per GEMM range.
    pub uops: (u16, u16),
    /// Input-load element count range.
    pub inp_count: (u16, u16),
    /// Weight-load element count range.
    pub wgt_count: (u16, u16),
    /// Store element count range.
    pub store_count: (u16, u16),
    /// Probability of an accumulator load per block.
    pub p_acc_load: f64,
    /// Probability of an ALU epilogue per block.
    pub p_alu: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            blocks: (1, 24),
            lp_out: (1, 32),
            lp_in: (1, 16),
            uops: (1, 12),
            inp_count: (4, 64),
            wgt_count: (1, 16),
            store_count: (4, 32),
            p_acc_load: 0.3,
            p_alu: 0.5,
        }
    }
}

/// Seeded random program generator.
pub struct ProgGen {
    rng: StdRng,
    /// Shape parameters.
    pub cfg: GenConfig,
}

impl ProgGen {
    /// Creates a generator.
    pub fn new(seed: u64) -> ProgGen {
        ProgGen {
            rng: StdRng::seed_from_u64(seed),
            cfg: GenConfig::default(),
        }
    }

    fn range_u16(&mut self, (lo, hi): (u16, u16)) -> u16 {
        self.rng.gen_range(lo..=hi)
    }

    /// Generates one random, dependency-correct program.
    pub fn gen_program(&mut self) -> Program {
        let nblocks = self.rng.gen_range(self.cfg.blocks.0..=self.cfg.blocks.1);
        let mut insns = Vec::new();
        // One micro-op load up front (compute module, unsynchronized).
        insns.push(Insn::plain(Opcode::Load {
            buffer: MemBuffer::Uop,
            sram_base: 0,
            dram_base: self.rng.gen_range(0..1 << 16),
            count: self.range_u16(self.cfg.uops) * 2,
        }));
        for b in 0..nblocks {
            // Double buffering: from the second block on, the loader
            // waits for the compute module to release the buffers
            // (compute pushed c2l after the previous GEMM), and the
            // GEMM waits for the previous store to drain (s2c).
            let wait_compute = b >= 1;
            let wait_store = b >= 1;
            insns.push(Insn::plain(Opcode::Load {
                buffer: MemBuffer::Inp,
                sram_base: 0,
                dram_base: self.rng.gen_range(0..1 << 20),
                count: self.range_u16(self.cfg.inp_count),
            }));
            insns.push(Insn {
                op: Opcode::Load {
                    buffer: MemBuffer::Wgt,
                    sram_base: 0,
                    dram_base: self.rng.gen_range(0..1 << 20),
                    count: self.range_u16(self.cfg.wgt_count),
                },
                flags: DepFlags {
                    pop_next: wait_compute,
                    push_next: true,
                    ..DepFlags::NONE
                },
            });
            if self.rng.gen_bool(self.cfg.p_acc_load) {
                insns.push(Insn::plain(Opcode::Load {
                    buffer: MemBuffer::Acc,
                    sram_base: 0,
                    dram_base: self.rng.gen_range(0..1 << 16),
                    count: self.range_u16(self.cfg.store_count),
                }));
            }
            let uops = self.range_u16(self.cfg.uops);
            insns.push(Insn {
                op: Opcode::Gemm {
                    uop_begin: 0,
                    uop_end: uops,
                    lp_out: self.range_u16(self.cfg.lp_out),
                    lp_in: self.range_u16(self.cfg.lp_in),
                    dst_factor: (1, 0),
                    src_factor: (1, 0),
                    wgt_factor: (0, 1),
                    reset: false,
                },
                flags: DepFlags {
                    pop_prev: true,
                    pop_next: wait_store,
                    push_prev: true,
                    push_next: true,
                },
            });
            if self.rng.gen_bool(self.cfg.p_alu) {
                let ops = [
                    AluOpcode::Add,
                    AluOpcode::Max,
                    AluOpcode::Min,
                    AluOpcode::Shr,
                ];
                let use_imm = self.rng.gen();
                insns.push(Insn::plain(Opcode::Alu {
                    uop_begin: 0,
                    uop_end: self.range_u16((1, 4)),
                    lp_out: self.range_u16((1, 16)),
                    lp_in: self.range_u16((1, 4)),
                    dst_factor: (1, 0),
                    src_factor: (1, 0),
                    op: ops[self.rng.gen_range(0..ops.len())],
                    use_imm,
                    // The immediate is meaningful only when used; keep
                    // it zero otherwise so encodings are canonical.
                    imm: if use_imm {
                        self.rng.gen_range(-64..64)
                    } else {
                        0
                    },
                }));
            }
            insns.push(Insn {
                op: Opcode::Store {
                    sram_base: 0,
                    dram_base: self.rng.gen_range(0..1 << 20),
                    count: self.range_u16(self.cfg.store_count),
                },
                flags: DepFlags {
                    pop_prev: true,
                    push_prev: true,
                    ..DepFlags::NONE
                },
            });
        }
        insns.push(Insn::plain(Opcode::Finish));
        Program { insns }
    }

    /// Generates `n` programs.
    pub fn gen_many(&mut self, n: usize) -> Vec<Program> {
        (0..n).map(|_| self.gen_program()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::VtaCycleSim;
    use perf_core::GroundTruth;

    #[test]
    fn generated_programs_are_dependency_correct() {
        let mut g = ProgGen::new(1);
        for (i, p) in g.gen_many(100).iter().enumerate() {
            p.check_deps()
                .unwrap_or_else(|e| panic!("program {i}: {e}"));
            assert!(matches!(
                p.insns.last().map(|x| &x.op),
                Some(Opcode::Finish)
            ));
        }
    }

    #[test]
    fn generated_programs_run_without_deadlock() {
        let mut g = ProgGen::new(2);
        let mut sim = VtaCycleSim::default();
        for p in g.gen_many(25) {
            let obs = sim.measure(&p).expect("runs");
            assert!(obs.latency.get() > 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ProgGen::new(7).gen_program();
        let b = ProgGen::new(7).gen_program();
        assert_eq!(a, b);
        let c = ProgGen::new(8).gen_program();
        assert_ne!(a, c);
    }

    #[test]
    fn programs_vary_in_length() {
        let mut g = ProgGen::new(3);
        let lens: Vec<usize> = g.gen_many(50).iter().map(Program::len).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max > &(min + 20), "lengths should vary: {min}..{max}");
    }
}
