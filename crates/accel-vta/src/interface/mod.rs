//! VTA's performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;

use crate::isa::Program;
use perf_core::InterfaceBundle;

/// Builds VTA's vendor-shipped interface bundle (the full-fidelity
/// Petri net; see [`petri::VtaPetriInterface::new_lite`] for the
/// corner-cut ablation variant).
pub fn bundle() -> InterfaceBundle<Program> {
    InterfaceBundle::new("vta", nl::interface())
        .with(Box::new(
            program::VtaProgramInterface::new().expect("shipped .pi parses"),
        ))
        .with(Box::new(
            petri::VtaPetriInterface::new_full().expect("shipped .pnet parses"),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn bundle_complete() {
        let b = bundle();
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
    }
}
