//! VTA's performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;
pub mod service;

use crate::isa::Program;
use perf_core::query::EngineChoice;
use perf_core::{Diagnostics, InterfaceBundle};
use perf_iface_lang::lint::BoxVal;

/// Places the simulation harness injects tokens into: the instruction
/// stream plus the initially-marked engine-free resource places.
pub const ENTRY_PLACES: [&str; 5] = [
    "fetch_q",
    "fetch_free",
    "load_free",
    "compute_free",
    "store_free",
];

/// Builds VTA's vendor-shipped interface bundle (the full-fidelity
/// Petri net; see [`petri::VtaPetriInterface::new_lite`] for the
/// corner-cut ablation variant). Interfaces run the compiled
/// substrate.
pub fn bundle() -> InterfaceBundle<Program> {
    bundle_with_engine(EngineChoice::Compiled)
}

/// Builds the bundle with an explicit evaluation substrate.
pub fn bundle_with_engine(engine: EngineChoice) -> InterfaceBundle<Program> {
    InterfaceBundle::new("vta", nl::interface())
        .with(Box::new(
            program::VtaProgramInterface::with_engine(engine).expect("shipped .pi parses"),
        ))
        .with(Box::new(
            petri::VtaPetriInterface::full_with_engine(engine).expect("shipped .pnet parses"),
        ))
}

/// One decoded VTA instruction as an interval box: module selector
/// `m` ∈ {0 load, 1 compute, 2 store}, 0/1 classification flags, and
/// the work fields each engine's delay reads (DMA transfer ≤ 4 KiB,
/// GEMM ≤ 64 Ki MACs, ALU ≤ 4 Ki ops). This is both the Petri-net
/// token box and the element type of the program's `insns` list.
pub fn token_box() -> BoxVal {
    BoxVal::record([
        ("m", BoxVal::num(0.0, 2.0)),
        ("is_gemm", BoxVal::num(0.0, 1.0)),
        ("is_alu", BoxVal::num(0.0, 1.0)),
        ("is_mem", BoxVal::num(0.0, 1.0)),
        ("is_fin", BoxVal::num(0.0, 1.0)),
        ("bytes", BoxVal::num(0.0, 4096.0)),
        ("macs", BoxVal::num(0.0, 65536.0)),
        ("ops", BoxVal::num(0.0, 4096.0)),
    ])
}

/// VTA's declared workload family: instruction streams of 1–64
/// decoded instructions drawn from [`token_box`].
pub fn workload_box() -> BoxVal {
    BoxVal::record([("insns", BoxVal::list(token_box(), 1.0, 64.0))])
}

/// Statically audits VTA's shipped interface artifacts — the `.pi`
/// program and both the full and corner-cut (`lite`) nets — with the
/// `perf-lint` analyses.
pub fn lint() -> Diagnostics {
    let mut ds = perf_iface_lang::lint::lint_src("vta.pi", program::VTA_PI_SRC);
    ds.merge(perf_petri::lint::lint_pnet_src(
        "vta_full.pnet",
        petri::VTA_FULL_PNET_SRC,
        &ENTRY_PLACES,
    ));
    ds.merge(perf_petri::lint::lint_pnet_src(
        "vta_lite.pnet",
        petri::VTA_LITE_PNET_SRC,
        &ENTRY_PLACES,
    ));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn shipped_artifacts_lint_clean() {
        let ds = lint();
        assert_eq!(ds.count(perf_core::Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(perf_core::Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn bundle_complete() {
        let b = bundle();
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
    }
}
