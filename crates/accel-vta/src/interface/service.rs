//! Query-service adapter for the VTA tensor accelerator.
//!
//! Implements [`perf_core::query::QueryBackend`] for `perf-service`.
//! Spec kinds mirror the conformance harness's generator-level specs;
//! the cache fingerprint hashes the realized instruction stream
//! ([`Program::fingerprint`]), so different generator seeds that emit
//! the same program share a cache slot.

use crate::cycle::{VtaCycleSim, VtaHwConfig};
use crate::gen::ProgGen;
use crate::interface;
use crate::isa::{Insn, Module, Opcode, Program};
use perf_core::iface::{InterfaceBundle, InterfaceKind, Metric};
use perf_core::query::{EngineChoice, Fnv1a, QueryBackend, WorkloadSpec};
use perf_core::{Budget, CoreError, GroundTruth, Observation, Prediction};

/// The VTA query-service backend.
pub struct VtaService {
    bundle: InterfaceBundle<Program>,
    engine: EngineChoice,
}

impl VtaService {
    /// Builds the backend with the shipped interface bundle; the
    /// interfaces run on the compiled substrate.
    pub fn new() -> VtaService {
        Self::with_engine(EngineChoice::Compiled)
    }

    /// Builds the backend with an explicit evaluation substrate.
    pub fn with_engine(engine: EngineChoice) -> VtaService {
        VtaService {
            bundle: interface::bundle_with_engine(engine),
            engine,
        }
    }

    /// Realizes a spec into a dependency-correct instruction stream.
    pub fn realize(&self, spec: &WorkloadSpec) -> Result<Program, CoreError> {
        let seed = spec.get_or("seed", 1.0) as u64;
        match spec.kind.as_str() {
            "random" => {
                let max_blocks = spec.get_or("max_blocks", 24.0).clamp(1.0, 256.0) as usize;
                let mut g = ProgGen::new(seed);
                g.cfg.blocks = (1, max_blocks);
                Ok(g.gen_program())
            }
            "single" => {
                let mut g = ProgGen::new(seed);
                g.cfg.blocks = (1, 1);
                Ok(g.gen_program())
            }
            "finish_only" => Ok(Program {
                insns: vec![Insn::plain(Opcode::Finish)],
            }),
            other => Err(CoreError::Artifact(format!(
                "vta: unknown spec kind `{other}`"
            ))),
        }
    }
}

impl Default for VtaService {
    fn default() -> Self {
        VtaService::new()
    }
}

/// Best-case and worst-case execution cycles of one instruction.
///
/// Compute instructions are deterministic (fixed issue cost plus one
/// cycle per MAC / two per vector op); memory instructions vary with
/// DRAM row state, so best-case assumes a row hit and worst-case a row
/// miss with channel-queueing slack.
fn insn_cost(hw: &VtaHwConfig, insn: &Insn) -> (u64, u64) {
    // DRAM as configured in `VtaCycleSim`: hit 42, miss 110, 16 B per
    // cycle, 64 B bursts.
    const HIT: u64 = 42;
    const MISS_PLUS_QUEUE: u64 = 110 + 64;
    match &insn.op {
        Opcode::Load { buffer, count, .. } => {
            let bytes = (*count as u64 * buffer.elem_bytes()).max(64);
            let xfer = bytes.div_ceil(16);
            (
                hw.load_fixed + HIT + xfer,
                hw.load_fixed + MISS_PLUS_QUEUE + xfer,
            )
        }
        Opcode::Store { count, .. } => {
            let bytes = (*count as u64 * 16).max(64);
            let xfer = bytes.div_ceil(16);
            (
                hw.store_fixed + HIT + xfer,
                hw.store_fixed + MISS_PLUS_QUEUE + xfer,
            )
        }
        Opcode::Gemm { .. } => {
            let c = hw.gemm_fixed + insn.macs();
            (c, c)
        }
        Opcode::Alu {
            uop_begin,
            uop_end,
            lp_out,
            lp_in,
            ..
        } => {
            let ops = (*uop_end as u64 - *uop_begin as u64) * *lp_out as u64 * *lp_in as u64;
            let c = hw.alu_fixed + hw.alu_cycles_per_op * ops;
            (c, c)
        }
        Opcode::Finish => (1, 1),
    }
}

/// The natural-language closed-form bound for a VTA program.
///
/// The NL interface says: "three engines run concurrently, every
/// instruction passes through a one-per-cycle fetch dispatcher, and
/// dependency tokens serialize producers and consumers". That prose
/// bounds latency without replaying the token dance:
///
/// * lower — the busiest single engine's best-case work, or the fetch
///   serialization floor (one instruction per cycle), whichever is
///   larger;
/// * upper — the fully serial sum of worst-case instruction costs plus
///   per-instruction handoff slack (dependency stalls only occur while
///   some other engine is making progress).
pub fn nl_bounds(prog: &Program, metric: Metric) -> Prediction {
    let hw = VtaHwConfig::default();
    let n = prog.insns.len() as u64;
    let mut engine_min = [0u64; 3];
    let mut serial_max = 0u64;
    for insn in &prog.insns {
        let (lo, hi) = insn_cost(&hw, insn);
        let m = match insn.module() {
            Module::Load => 0,
            Module::Compute => 1,
            Module::Store => 2,
        };
        engine_min[m] += lo;
        serial_max += hi;
    }
    let lo = n.max(*engine_min.iter().max().expect("3 engines"));
    let hi = serial_max + 6 * n + 600;
    let (lo, hi) = (lo as f64, hi as f64);
    match metric {
        Metric::Latency => Prediction::bounds(lo, hi),
        // Observed throughput is instructions retired per cycle.
        Metric::Throughput => Prediction::bounds(n as f64 / hi, n as f64 / lo),
    }
}

impl QueryBackend for VtaService {
    fn accel(&self) -> &'static str {
        "vta"
    }

    fn engine(&self) -> EngineChoice {
        self.engine
    }

    fn spec_kinds(&self) -> &'static [&'static str] {
        &["random", "single", "finish_only"]
    }

    fn predict(
        &mut self,
        spec: &WorkloadSpec,
        repr: InterfaceKind,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        let prog = self.realize(spec)?;
        match repr {
            InterfaceKind::NaturalLanguage => Ok(nl_bounds(&prog, metric)),
            _ => self
                .bundle
                .get(repr)
                .ok_or_else(|| CoreError::Artifact(format!("no {} interface", repr.name())))?
                .predict(&prog, metric),
        }
    }

    fn budget(&self, repr: InterfaceKind, _metric: Metric) -> Budget {
        // Program and Petri budgets mirror the conformance subject.
        match repr {
            InterfaceKind::NaturalLanguage => Budget::new(0.90, 4.0).with_atol(16.0),
            InterfaceKind::Program => Budget::new(0.60, 2.5).with_atol(4.0),
            InterfaceKind::PetriNet => Budget::new(0.05, 0.25).with_atol(4.0),
        }
    }

    fn fingerprint(&mut self, spec: &WorkloadSpec, repr: InterfaceKind) -> u64 {
        // Deep key: the realized instruction stream. Two specs that
        // generate byte-identical programs share a slot across all
        // representations of this accelerator.
        let mut h = Fnv1a::new();
        h.write(self.accel().as_bytes());
        h.write(&[repr as u8]);
        match self.realize(spec) {
            Ok(prog) => h.write_u64(prog.fingerprint()),
            Err(_) => h.write_u64(spec.fingerprint()),
        }
        h.finish()
    }

    fn measure(&mut self, spec: &WorkloadSpec) -> Result<Observation, CoreError> {
        let prog = self.realize(spec)?;
        VtaCycleSim::default().measure(&prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<WorkloadSpec> {
        let mut v = Vec::new();
        for seed in 0..8 {
            v.push(
                WorkloadSpec::new("random")
                    .with("seed", seed as f64)
                    .with("max_blocks", 24.0),
            );
        }
        for seed in [100.0, 101.0, 102.0] {
            v.push(WorkloadSpec::new("single").with("seed", seed));
        }
        v.push(WorkloadSpec::new("finish_only"));
        v
    }

    #[test]
    fn all_reprs_predict_and_nl_contains_sim() {
        let mut svc = VtaService::new();
        for spec in corpus() {
            let obs = svc.measure(&spec).unwrap();
            for metric in [Metric::Latency, Metric::Throughput] {
                for repr in [
                    InterfaceKind::NaturalLanguage,
                    InterfaceKind::Program,
                    InterfaceKind::PetriNet,
                ] {
                    let p = svc.predict(&spec, repr, metric).unwrap();
                    assert!(p.is_finite(), "{spec:?} {repr:?} {metric:?}");
                    if repr == InterfaceKind::NaturalLanguage {
                        assert!(
                            p.contains(metric.of(&obs)),
                            "{spec:?} {metric:?}: {p:?} vs {}",
                            metric.of(&obs)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fingerprint_keys_on_realized_program() {
        let mut svc = VtaService::new();
        // Different field order, same program: same key.
        let a = WorkloadSpec::new("random")
            .with("seed", 5.0)
            .with("max_blocks", 24.0);
        let b = WorkloadSpec::new("random")
            .with("max_blocks", 24.0)
            .with("seed", 5.0);
        assert_eq!(
            svc.fingerprint(&a, InterfaceKind::PetriNet),
            svc.fingerprint(&b, InterfaceKind::PetriNet)
        );
        // Different seeds produce different programs.
        let c = WorkloadSpec::new("random")
            .with("seed", 6.0)
            .with("max_blocks", 24.0);
        assert_ne!(
            svc.fingerprint(&a, InterfaceKind::PetriNet),
            svc.fingerprint(&c, InterfaceKind::PetriNet)
        );
    }
}
