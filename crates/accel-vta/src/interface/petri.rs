//! Petri-net performance IR for VTA (paper Table 1).
//!
//! The full net mirrors the four-module pipeline with dependency-token
//! places; the `lite` net drops the token queues (the E9 ablation).

use crate::isa::{Insn, Module, Opcode, Program};
use perf_core::iface::{InterfaceKind, Metric, PerfInterface};
use perf_core::query::EngineChoice;
use perf_core::{CoreError, Prediction};
use perf_iface_lang::Value;
use perf_petri::engine::{Options, SimResult};
use perf_petri::net::Net;
use perf_petri::stepper::NetExec;
use perf_petri::text;
use perf_petri::token::Token;

/// The shipped full-fidelity net.
pub const VTA_FULL_PNET_SRC: &str = include_str!("../../assets/vta_full.pnet");

/// The shipped corner-cut net.
pub const VTA_LITE_PNET_SRC: &str = include_str!("../../assets/vta_lite.pnet");

/// Converts one instruction into its token payload.
fn insn_token(insn: &Insn) -> Value {
    let m = match insn.module() {
        Module::Load => 0u64,
        Module::Compute => 1,
        Module::Store => 2,
    };
    let (is_gemm, is_alu, is_mem, is_fin, bytes, macs, ops) = match &insn.op {
        Opcode::Load { buffer, count, .. } => (
            0u64,
            0u64,
            1u64,
            0u64,
            *count as u64 * buffer.elem_bytes(),
            0,
            0,
        ),
        Opcode::Store { count, .. } => (0, 0, 1, 0, *count as u64 * 16, 0, 0),
        Opcode::Gemm { .. } => (1, 0, 0, 0, 0, insn.macs(), 0),
        Opcode::Alu {
            uop_begin,
            uop_end,
            lp_out,
            lp_in,
            ..
        } => (
            0,
            1,
            0,
            0,
            0,
            0,
            (*uop_end as u64 - *uop_begin as u64) * *lp_out as u64 * *lp_in as u64,
        ),
        Opcode::Finish => (0, 0, 0, 1, 0, 0, 0),
    };
    let f = insn.flags;
    Value::record([
        ("m", Value::from(m)),
        ("is_gemm", Value::from(is_gemm)),
        ("is_alu", Value::from(is_alu)),
        ("is_mem", Value::from(is_mem)),
        ("is_fin", Value::from(is_fin)),
        ("bytes", Value::from(bytes)),
        ("macs", Value::from(macs)),
        ("ops", Value::from(ops)),
        ("pp", Value::from(f.pop_prev as u64)),
        ("pn", Value::from(f.pop_next as u64)),
        ("shp", Value::from(f.push_prev as u64)),
        ("shn", Value::from(f.push_next as u64)),
    ])
}

/// Petri-net interface for VTA.
pub struct VtaPetriInterface {
    exec: NetExec,
    src: &'static str,
    events: std::cell::Cell<u64>,
}

impl VtaPetriInterface {
    /// Parses the shipped full-fidelity net; evaluations run the
    /// compiled stepper.
    pub fn new_full() -> Result<VtaPetriInterface, CoreError> {
        Self::full_with_engine(EngineChoice::Compiled)
    }

    /// Parses the shipped full-fidelity net with an explicit
    /// evaluation substrate.
    pub fn full_with_engine(engine: EngineChoice) -> Result<VtaPetriInterface, CoreError> {
        Self::from_src(VTA_FULL_PNET_SRC, engine)
    }

    /// Parses the shipped corner-cut net (E9 ablation).
    pub fn new_lite() -> Result<VtaPetriInterface, CoreError> {
        Self::lite_with_engine(EngineChoice::Compiled)
    }

    /// Parses the corner-cut net with an explicit evaluation
    /// substrate.
    pub fn lite_with_engine(engine: EngineChoice) -> Result<VtaPetriInterface, CoreError> {
        Self::from_src(VTA_LITE_PNET_SRC, engine)
    }

    fn from_src(src: &'static str, engine: EngineChoice) -> Result<VtaPetriInterface, CoreError> {
        let net = text::parse(src)?;
        let exec = match engine {
            EngineChoice::Compiled => NetExec::compiled(net),
            EngineChoice::Interpreted => NetExec::interpreted(net),
        };
        Ok(VtaPetriInterface {
            exec,
            src,
            events: std::cell::Cell::new(0),
        })
    }

    /// The `.pnet` source text.
    pub fn source(&self) -> &'static str {
        self.src
    }

    /// The parsed net.
    pub fn net(&self) -> &Net {
        self.exec.net()
    }

    /// Total engine events processed (the evaluation-cost metric for
    /// experiment E5).
    pub fn events_evaluated(&self) -> u64 {
        self.events.get()
    }

    /// Evaluates the net on a program.
    pub fn run(&self, prog: &Program) -> Result<SimResult, CoreError> {
        let fetch_q = self
            .exec
            .net()
            .place_id("fetch_q")
            .ok_or_else(|| CoreError::Artifact("net lacks fetch_q".into()))?;
        let mut eng = self.exec.session(Options::default());
        for free in ["fetch_free", "load_free", "compute_free", "store_free"] {
            let p = self
                .exec
                .net()
                .place_id(free)
                .ok_or_else(|| CoreError::Artifact(format!("net lacks {free}")))?;
            eng.inject(p, Token::at(Value::record([("u", Value::num(0.0))]), 0));
        }
        for insn in &prog.insns {
            eng.inject(fetch_q, Token::at(insn_token(insn), 0));
        }
        let res = eng.run().map_err(CoreError::from)?;
        if res.completions.len() != prog.len() {
            return Err(CoreError::Artifact(format!(
                "net retired {} of {} instructions (unsupported flag pattern?)",
                res.completions.len(),
                prog.len()
            )));
        }
        self.events.set(self.events.get() + res.events);
        Ok(res)
    }
}

impl PerfInterface<Program> for VtaPetriInterface {
    fn kind(&self) -> InterfaceKind {
        InterfaceKind::PetriNet
    }

    fn predict(&self, prog: &Program, metric: Metric) -> Result<Prediction, CoreError> {
        let res = self.run(prog)?;
        Ok(match metric {
            Metric::Latency => Prediction::point(res.makespan as f64),
            Metric::Throughput => Prediction::point(prog.len() as f64 / res.makespan.max(1) as f64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::VtaCycleSim;
    use crate::gen::ProgGen;
    use perf_core::validate::validate;

    #[test]
    fn both_nets_parse() {
        VtaPetriInterface::new_full().unwrap();
        VtaPetriInterface::new_lite().unwrap();
    }

    #[test]
    fn full_net_retires_every_instruction() {
        let iface = VtaPetriInterface::new_full().unwrap();
        let mut g = ProgGen::new(5);
        for p in g.gen_many(10) {
            let res = iface.run(&p).unwrap();
            assert_eq!(res.completions.len(), p.len());
            assert!(res.makespan > 0);
        }
        assert!(iface.events_evaluated() > 0);
    }

    #[test]
    fn full_net_tracks_cycle_sim_closely() {
        // Table 1: ~1.5% average error for VTA. Assert a loose 5%
        // bound on a small sample here; the bench measures precisely.
        let iface = VtaPetriInterface::new_full().unwrap();
        let mut sim = VtaCycleSim::default();
        let mut g = ProgGen::new(42);
        let progs = g.gen_many(30);
        let rep = validate(&mut sim, &iface, Metric::Latency, &progs).unwrap();
        assert!(
            rep.point.avg < 0.05,
            "petri avg latency error {:.4}",
            rep.point.avg
        );
    }

    #[test]
    fn lite_net_is_less_accurate_than_full() {
        let full = VtaPetriInterface::new_full().unwrap();
        let lite = VtaPetriInterface::new_lite().unwrap();
        let mut sim = VtaCycleSim::default();
        let mut g = ProgGen::new(43);
        let progs = g.gen_many(25);
        let rf = validate(&mut sim, &full, Metric::Latency, &progs).unwrap();
        let rl = validate(&mut sim, &lite, Metric::Latency, &progs).unwrap();
        assert!(
            rl.point.avg > rf.point.avg,
            "lite {:.4} should err more than full {:.4}",
            rl.point.avg,
            rf.point.avg
        );
    }

    #[test]
    fn throughput_prediction_positive() {
        let iface = VtaPetriInterface::new_full().unwrap();
        let p = ProgGen::new(3).gen_program();
        let t = iface.predict(&p, Metric::Throughput).unwrap();
        assert!(t.midpoint() > 0.0);
    }
}
