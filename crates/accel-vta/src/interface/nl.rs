//! Natural-language interface for VTA.

use perf_core::nl::{Claim, Direction, NlInterface, Quantity};

/// The prose a VTA vendor would write, with checkable claims: latency
/// grows monotonically with the GEMM loop extents (MAC count) and with
/// the bytes moved by DMA.
pub fn interface() -> NlInterface {
    NlInterface::new(
        "vta",
        "Latency is set by the slowest of the load, compute and store engines: \
         GEMM time grows with the micro-op count times both loop extents, DMA time \
         with the bytes moved; dependency tokens serialize chained blocks.",
    )
    .with_claim(Claim::Monotone {
        metric: Quantity::Latency,
        axis: "total_macs".into(),
        direction: Direction::Increasing,
    })
    .with_claim(Claim::Monotone {
        metric: Quantity::Latency,
        axis: "dma_bytes".into(),
        direction: Direction::Increasing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::VtaCycleSim;
    use crate::isa::{DepFlags, Insn, MemBuffer, Opcode, Program};
    use perf_core::GroundTruth;

    fn block_program(lp_out: u16, inp_count: u16) -> Program {
        Program {
            insns: vec![
                Insn {
                    op: Opcode::Load {
                        buffer: MemBuffer::Inp,
                        sram_base: 0,
                        dram_base: 0,
                        count: inp_count,
                    },
                    flags: DepFlags {
                        push_next: true,
                        ..DepFlags::NONE
                    },
                },
                Insn {
                    op: Opcode::Gemm {
                        uop_begin: 0,
                        uop_end: 8,
                        lp_out,
                        lp_in: 4,
                        dst_factor: (1, 0),
                        src_factor: (1, 0),
                        wgt_factor: (0, 1),
                        reset: false,
                    },
                    flags: DepFlags {
                        pop_prev: true,
                        push_next: true,
                        ..DepFlags::NONE
                    },
                },
                Insn {
                    op: Opcode::Store {
                        sram_base: 0,
                        dram_base: 0,
                        count: 8,
                    },
                    flags: DepFlags {
                        pop_prev: true,
                        ..DepFlags::NONE
                    },
                },
                Insn::plain(Opcode::Finish),
            ],
        }
    }

    #[test]
    fn latency_claims_hold_on_controlled_sweeps() {
        let nl = interface();
        let mut sim = VtaCycleSim::default();

        // Sweep GEMM extent at fixed DMA size.
        let macs_sweep: Vec<(f64, f64)> = [8u16, 32, 128, 512]
            .iter()
            .map(|&lp| {
                let p = block_program(lp, 16);
                let obs = sim.measure(&p).unwrap();
                (p.total_macs() as f64, obs.latency.as_f64())
            })
            .collect();
        assert!(nl.claims[0].check(&macs_sweep).unwrap().holds);

        // Sweep DMA bytes at fixed GEMM extent.
        let bytes_sweep: Vec<(f64, f64)> = [16u16, 256, 1024, 4096]
            .iter()
            .map(|&c| {
                let p = block_program(512, c);
                let obs = sim.measure(&p).unwrap();
                (c as f64 * 16.0, obs.latency.as_f64())
            })
            .collect();
        assert!(nl.claims[1].check(&bytes_sweep).unwrap().holds);
    }
}
