//! Program interface for VTA: the quick, coarse representation.

use crate::isa::{Insn, Module, Opcode, Program};
use perf_core::iface::{InterfaceKind, Metric, PerfInterface};
use perf_core::query::EngineChoice;
use perf_core::{CoreError, Prediction};
use perf_iface_lang::vm::Executable;
use perf_iface_lang::{Program as PilProgram, Value};

/// The shipped interface program source.
pub const VTA_PI_SRC: &str = include_str!("../../assets/vta.pi");

/// Converts an instruction into the record shape the interface reads.
fn insn_value(insn: &Insn) -> Value {
    let m = match insn.module() {
        Module::Load => 0u64,
        Module::Compute => 1,
        Module::Store => 2,
    };
    let (is_gemm, is_alu, is_mem, is_fin, bytes, macs, ops) = match &insn.op {
        Opcode::Load { buffer, count, .. } => (
            0u64,
            0u64,
            1u64,
            0u64,
            *count as u64 * buffer.elem_bytes(),
            0,
            0,
        ),
        Opcode::Store { count, .. } => (0, 0, 1, 0, *count as u64 * 16, 0, 0),
        Opcode::Gemm { .. } => (1, 0, 0, 0, 0, insn.macs(), 0),
        Opcode::Alu {
            uop_begin,
            uop_end,
            lp_out,
            lp_in,
            ..
        } => (
            0,
            1,
            0,
            0,
            0,
            0,
            (*uop_end as u64 - *uop_begin as u64) * *lp_out as u64 * *lp_in as u64,
        ),
        Opcode::Finish => (0, 0, 0, 1, 0, 0, 0),
    };
    Value::record([
        ("m", Value::from(m)),
        ("is_gemm", Value::from(is_gemm)),
        ("is_alu", Value::from(is_alu)),
        ("is_mem", Value::from(is_mem)),
        ("is_fin", Value::from(is_fin)),
        ("bytes", Value::from(bytes)),
        ("macs", Value::from(macs)),
        ("ops", Value::from(ops)),
    ])
}

/// Converts a program into the interface's input record.
pub fn program_value(prog: &Program) -> Value {
    Value::record([(
        "insns",
        Value::list(prog.insns.iter().map(insn_value).collect()),
    )])
}

/// Executable program interface for VTA.
pub struct VtaProgramInterface {
    prog: Executable,
}

impl VtaProgramInterface {
    /// Parses the shipped program; calls run the bytecode VM.
    pub fn new() -> Result<VtaProgramInterface, CoreError> {
        Self::with_engine(EngineChoice::Compiled)
    }

    /// Parses the shipped program with an explicit evaluation
    /// substrate.
    pub fn with_engine(engine: EngineChoice) -> Result<VtaProgramInterface, CoreError> {
        let prog = PilProgram::parse(VTA_PI_SRC).map_err(|e| CoreError::Artifact(e.to_string()))?;
        let prog = match engine {
            EngineChoice::Compiled => {
                Executable::compiled(prog).map_err(|e| CoreError::Artifact(e.to_string()))?
            }
            EngineChoice::Interpreted => Executable::interpreted(prog),
        };
        Ok(VtaProgramInterface { prog })
    }

    /// The interface source text.
    pub fn source(&self) -> &str {
        self.prog.source()
    }
}

impl PerfInterface<Program> for VtaProgramInterface {
    fn kind(&self) -> InterfaceKind {
        InterfaceKind::Program
    }

    fn predict(&self, prog: &Program, metric: Metric) -> Result<Prediction, CoreError> {
        let f = match metric {
            Metric::Latency => "latency_vta",
            Metric::Throughput => "tput_vta",
        };
        let v = self
            .prog
            .call(f, &[program_value(prog)])
            .map_err(|e| CoreError::Artifact(e.to_string()))?;
        v.as_num()
            .map(Prediction::point)
            .ok_or_else(|| CoreError::InvalidPrediction("non-numeric".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::VtaCycleSim;
    use crate::gen::ProgGen;
    use perf_core::validate::validate;

    #[test]
    fn parses_and_predicts() {
        let iface = VtaProgramInterface::new().unwrap();
        let p = ProgGen::new(1).gen_program();
        let lat = iface.predict(&p, Metric::Latency).unwrap();
        assert!(lat.midpoint() > 0.0);
        let tput = iface.predict(&p, Metric::Throughput).unwrap();
        assert!(tput.midpoint() > 0.0);
    }

    // Conformance-harness counterexample: a lone FINISH retires in 1
    // cycle on hardware, but the interface used to add its full
    // 180-cycle SYNC_SLACK fill constant unconditionally and predict
    // 181 (180x off). The slack is now capped by the program's total
    // work, so degenerate programs stay within a handful of cycles.
    #[test]
    fn finish_only_program_not_dominated_by_slack() {
        use crate::isa::{Insn, Opcode, Program};
        use perf_core::GroundTruth;
        let iface = VtaProgramInterface::new().unwrap();
        let mut sim = VtaCycleSim::default();
        let p = Program {
            insns: vec![Insn::plain(Opcode::Finish)],
        };
        let obs = sim.measure(&p).unwrap();
        assert_eq!(obs.latency.as_f64(), 1.0);
        let lat = iface.predict(&p, Metric::Latency).unwrap().midpoint();
        assert!(
            (lat - obs.latency.as_f64()).abs() <= 4.0,
            "finish-only predicted {lat} vs simulated 1"
        );
    }

    #[test]
    fn coarse_but_bounded_error() {
        let iface = VtaProgramInterface::new().unwrap();
        let mut sim = VtaCycleSim::default();
        let mut g = ProgGen::new(9);
        let progs = g.gen_many(25);
        let rep = validate(&mut sim, &iface, Metric::Latency, &progs).unwrap();
        // The program interface ignores dependency serialization; it is
        // allowed tens of percent, not orders of magnitude.
        assert!(
            rep.point.avg < 0.60,
            "program interface avg error {:.3}",
            rep.point.avg
        );
    }

    #[test]
    fn petri_beats_program_interface() {
        // The paper's hierarchy: the IR is the precise representation.
        let prog_iface = VtaProgramInterface::new().unwrap();
        let petri = super::super::petri::VtaPetriInterface::new_full().unwrap();
        let mut sim = VtaCycleSim::default();
        let mut g = ProgGen::new(10);
        let progs = g.gen_many(20);
        let rp = validate(&mut sim, &prog_iface, Metric::Latency, &progs).unwrap();
        let rn = validate(&mut sim, &petri, Metric::Latency, &progs).unwrap();
        assert!(
            rn.point.avg < rp.point.avg,
            "petri {:.4} should beat program {:.4}",
            rn.point.avg,
            rp.point.avg
        );
    }
}
