//! The tick-accurate four-module VTA simulator (the "RTL" stand-in).
//!
//! Fetch dispatches one instruction per cycle into per-module queues;
//! load, compute and store execute concurrently, synchronizing through
//! bounded dependency-token queues exactly as the ISA flags dictate.
//! Memory instructions go through a shared DRAM model, so their
//! latency depends on row locality and on what the other modules are
//! doing — precisely the detail the Petri-net interface summarizes
//! with one average constant (its deliberate corner cut).

use crate::isa::{Insn, Module, Opcode, Program};
use perf_core::units::{Cycles, Throughput};
use perf_core::{CoreError, GroundTruth, Observation};
use perf_sim::{DramModel, StageCycles, TraceSink};
use std::collections::VecDeque;

/// Hardware configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VtaHwConfig {
    /// Per-module instruction-queue depth.
    pub insn_q_cap: usize,
    /// Dependency-token queue depth.
    pub dep_q_cap: usize,
    /// Fixed DMA setup cycles for loads.
    pub load_fixed: u64,
    /// Fixed DMA setup cycles for stores.
    pub store_fixed: u64,
    /// Fixed GEMM issue overhead.
    pub gemm_fixed: u64,
    /// Fixed ALU issue overhead.
    pub alu_fixed: u64,
    /// Cycles per vector ALU op.
    pub alu_cycles_per_op: u64,
}

impl Default for VtaHwConfig {
    fn default() -> VtaHwConfig {
        VtaHwConfig {
            insn_q_cap: 8,
            dep_q_cap: 4,
            load_fixed: 32,
            store_fixed: 24,
            gemm_fixed: 4,
            alu_fixed: 4,
            alu_cycles_per_op: 2,
        }
    }
}

/// Indexes of the dependency queues.
const L2C: usize = 0;
const C2L: usize = 1;
const C2S: usize = 2;
const S2C: usize = 3;

struct ModuleState {
    queue: VecDeque<Insn>,
    busy_until: u64,
    /// Retire actions waiting for dep-queue space.
    pending: Option<Insn>,
    retired: u64,
    busy_cycles: u64,
    /// Cycles spent with finished work blocked on a full dependency
    /// queue (counted per tick in the retire phase).
    stall_cycles: u64,
}

impl ModuleState {
    fn new() -> ModuleState {
        ModuleState {
            queue: VecDeque::new(),
            busy_until: 0,
            pending: None,
            retired: 0,
            busy_cycles: 0,
            stall_cycles: 0,
        }
    }
}

/// Result of one program run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunStats {
    /// Total cycles until the FINISH instruction retired.
    pub cycles: u64,
    /// Instructions retired.
    pub insns: u64,
    /// Per-module busy cycles (load, compute, store).
    pub busy: [u64; 3],
    /// Per-module stall cycles: finished work blocked on a full
    /// dependency queue (load, compute, store).
    pub stall: [u64; 3],
}

/// Simulation fidelity.
///
/// Cycle-accurate RTL simulation owes its cost to evaluating the
/// circuit every cycle. `Rtl` fidelity reproduces that cost honestly:
/// each busy module's datapath state (MAC array lanes, DMA shifters) is
/// evaluated every tick. `TimingOnly` keeps identical timing but skips
/// the datapath work — useful when the simulator is a test oracle
/// rather than the profiling baseline of experiment E5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fidelity {
    /// Evaluate datapath state every cycle (RTL-simulation cost model).
    Rtl,
    /// Timing only (fast oracle).
    TimingOnly,
}

/// The cycle-accurate simulator.
pub struct VtaCycleSim {
    /// Hardware configuration.
    pub hw: VtaHwConfig,
    /// Per-cycle evaluation fidelity.
    pub fidelity: Fidelity,
    dram: DramModel,
    ticks: u64,
    /// Per-module busy/stall/idle totals accumulated across runs
    /// (load, compute, store).
    module_totals: [StageCycles; 3],
    /// Modeled datapath registers (MAC array, DMA shifters, control).
    datapath: [u64; 1024],
}

impl Default for VtaCycleSim {
    fn default() -> VtaCycleSim {
        VtaCycleSim::new(VtaHwConfig::default())
    }
}

impl VtaCycleSim {
    /// Creates a simulator at RTL fidelity.
    pub fn new(hw: VtaHwConfig) -> VtaCycleSim {
        VtaCycleSim {
            hw,
            fidelity: Fidelity::Rtl,
            dram: DramModel::new(110, 42, 64, 4096, 16).with_banks(4),
            ticks: 0,
            module_totals: [StageCycles::default(); 3],
            datapath: [0x9e3779b97f4a7c15; 1024],
        }
    }

    /// Creates a timing-only simulator (fast oracle).
    pub fn new_timing_only(hw: VtaHwConfig) -> VtaCycleSim {
        let mut s = VtaCycleSim::new(hw);
        s.fidelity = Fidelity::TimingOnly;
        s
    }

    /// Arms (or with `None` disarms) deterministic fault injection:
    /// memory-latency jitter on the shared DRAM channel every load and
    /// store crosses. [`reset`](VtaCycleSim::reset) rewinds the stream.
    pub fn set_fault(&mut self, plan: Option<perf_sim::FaultPlan>) {
        self.dram.set_fault(plan);
    }

    /// Extra cycles injected by the armed fault plan so far.
    pub fn fault_cycles(&self) -> u64 {
        self.dram.fault_cycles()
    }

    /// Folds the datapath registers into one word (prevents the
    /// per-cycle evaluation from being optimized away and gives tests a
    /// determinism probe).
    pub fn datapath_checksum(&self) -> u64 {
        self.datapath.iter().fold(0u64, |a, &x| a ^ x)
    }

    /// One cycle of datapath evaluation: like an RTL simulator, the
    /// whole design is clocked regardless of which modules are busy —
    /// the MAC array's pipeline registers, the DMA shifters and the
    /// control FSMs all advance.
    #[inline]
    fn eval_datapath(&mut self, cycle: u64) {
        let mut carry = cycle.wrapping_mul(0xd129_0d3b) | 1;
        for lane in 0..1024 {
            let v = self.datapath[lane];
            carry = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(carry)
                .rotate_left((lane as u32) & 31);
            self.datapath[lane] = carry ^ (v >> 17);
        }
    }

    /// Total clock ticks simulated (the cost of using this model as a
    /// profiler — compare experiment E5).
    pub fn ticks_simulated(&self) -> u64 {
        self.ticks
    }

    /// Execution delay of an instruction starting at `now`.
    fn delay(&mut self, insn: &Insn, now: u64) -> u64 {
        match &insn.op {
            Opcode::Load {
                buffer,
                dram_base,
                count,
                ..
            } => {
                let bytes = *count as u64 * buffer.elem_bytes();
                let addr = *dram_base as u64 * buffer.elem_bytes();
                let done = self
                    .dram
                    .access(now + self.hw.load_fixed, addr, bytes.max(1));
                done - now
            }
            Opcode::Store {
                dram_base, count, ..
            } => {
                let bytes = *count as u64 * 16;
                let addr = 0x4000_0000 + *dram_base as u64 * 16;
                let done = self
                    .dram
                    .access(now + self.hw.store_fixed, addr, bytes.max(1));
                done - now
            }
            Opcode::Gemm { .. } => self.hw.gemm_fixed + insn.macs(),
            Opcode::Alu {
                uop_begin,
                uop_end,
                lp_out,
                lp_in,
                ..
            } => {
                let ops = (*uop_end as u64 - *uop_begin as u64) * *lp_out as u64 * *lp_in as u64;
                self.hw.alu_fixed + self.hw.alu_cycles_per_op * ops
            }
            Opcode::Finish => 1,
        }
    }

    /// Runs a program to completion.
    ///
    /// # Panics
    ///
    /// Panics if the program deadlocks (no forward progress while
    /// instructions remain); generator-produced programs are
    /// deadlock-free by construction.
    pub fn run(&mut self, prog: &Program) -> RunStats {
        let mut mods = [ModuleState::new(), ModuleState::new(), ModuleState::new()];
        let midx = |m: Module| match m {
            Module::Load => 0usize,
            Module::Compute => 1,
            Module::Store => 2,
        };
        let mut dep: [VecDeque<()>; 4] = Default::default();
        let mut pc = 0usize;
        let mut now = 0u64;
        let mut idle_cycles = 0u64;
        let total = prog.insns.len() as u64;
        let mut retired_total = 0u64;
        while retired_total < total {
            let mut progress = false;
            // Fetch: one dispatch per cycle.
            if pc < prog.insns.len() {
                let insn = &prog.insns[pc];
                let qi = midx(insn.module());
                if mods[qi].queue.len() < self.hw.insn_q_cap {
                    mods[qi].queue.push_back(insn.clone());
                    pc += 1;
                    progress = true;
                }
            }
            // Modules: retire then issue, so a queue slot freed this
            // cycle is usable next cycle (registered hardware).
            for (mi, m) in mods.iter_mut().enumerate() {
                // Retire phase: push dependency tokens.
                if m.busy_until <= now {
                    if let Some(insn) = m.pending.take() {
                        let f = insn.flags;
                        let (push_a, push_b) = match mi {
                            0 => (f.push_next.then_some(L2C), None),
                            1 => (f.push_prev.then_some(C2L), f.push_next.then_some(C2S)),
                            _ => (f.push_prev.then_some(S2C), None),
                        };
                        let room = |q: Option<usize>, dep: &[VecDeque<()>; 4]| {
                            q.is_none_or(|q| dep[q].len() < self.hw.dep_q_cap)
                        };
                        if room(push_a, &dep) && room(push_b, &dep) {
                            if let Some(q) = push_a {
                                dep[q].push_back(());
                            }
                            if let Some(q) = push_b {
                                dep[q].push_back(());
                            }
                            m.retired += 1;
                            retired_total += 1;
                            progress = true;
                        } else {
                            // Stalled on a full dependency queue.
                            m.pending = Some(insn);
                            m.stall_cycles += 1;
                        }
                    }
                }
                // Issue phase.
                if m.busy_until <= now && m.pending.is_none() {
                    if let Some(head) = m.queue.front() {
                        let f = head.flags;
                        let (pop_a, pop_b) = match mi {
                            0 => (f.pop_next.then_some(C2L), None),
                            1 => (f.pop_prev.then_some(L2C), f.pop_next.then_some(S2C)),
                            _ => (f.pop_prev.then_some(C2S), None),
                        };
                        let avail = |q: Option<usize>, dep: &[VecDeque<()>; 4]| {
                            q.is_none_or(|q| !dep[q].is_empty())
                        };
                        if avail(pop_a, &dep) && avail(pop_b, &dep) {
                            if let Some(q) = pop_a {
                                dep[q].pop_front();
                            }
                            if let Some(q) = pop_b {
                                dep[q].pop_front();
                            }
                            let insn = m.queue.pop_front().expect("peeked");
                            let d = self.delay(&insn, now).max(1);
                            m.busy_until = now + d;
                            m.busy_cycles += d;
                            m.pending = Some(insn);
                            progress = true;
                        }
                    }
                }
            }
            if self.fidelity == Fidelity::Rtl {
                self.eval_datapath(now);
            }
            now += 1;
            if progress || mods.iter().any(|m| m.busy_until > now) {
                idle_cycles = 0;
            } else {
                idle_cycles += 1;
                assert!(
                    idle_cycles < 1_000_000,
                    "VTA simulation deadlocked at cycle {now} (pc {pc}/{})",
                    prog.insns.len()
                );
            }
        }
        self.ticks += now;
        let cycles = now - 1;
        for (total, m) in self.module_totals.iter_mut().zip(&mods) {
            total.busy += m.busy_cycles;
            total.stall += m.stall_cycles;
            total.idle += cycles.saturating_sub(m.busy_cycles + m.stall_cycles);
        }
        RunStats {
            cycles,
            insns: mods.iter().map(|m| m.retired).sum(),
            busy: [
                mods[0].busy_cycles,
                mods[1].busy_cycles,
                mods[2].busy_cycles,
            ],
            stall: [
                mods[0].stall_cycles,
                mods[1].stall_cycles,
                mods[2].stall_cycles,
            ],
        }
    }

    /// Per-module busy/stall/idle totals accumulated across runs
    /// (load, compute, store).
    pub fn module_totals(&self) -> &[StageCycles; 3] {
        &self.module_totals
    }

    /// Emits accumulated per-module cycle accounting into `sink` under
    /// component `vta`.
    pub fn trace_stages(&self, sink: &mut dyn TraceSink) {
        if !sink.is_enabled() {
            return;
        }
        for (name, c) in ["load", "compute", "store"].iter().zip(&self.module_totals) {
            sink.stage("vta", name, *c);
        }
    }

    /// Resets the memory system between measurements.
    pub fn reset(&mut self) {
        self.dram.reset();
    }
}

impl GroundTruth<Program> for VtaCycleSim {
    fn measure(&mut self, prog: &Program) -> Result<Observation, CoreError> {
        if prog.is_empty() {
            return Err(CoreError::InvalidObservation("empty program".into()));
        }
        if !matches!(prog.insns.last().map(|i| &i.op), Some(Opcode::Finish)) {
            return Err(CoreError::InvalidObservation(
                "program must end with FINISH".into(),
            ));
        }
        prog.check_deps().map_err(CoreError::InvalidObservation)?;
        self.reset();
        let stats = self.run(prog);
        Ok(Observation::new(
            Cycles(stats.cycles),
            Throughput::of(stats.insns, Cycles(stats.cycles)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{DepFlags, MemBuffer};

    fn load(buffer: MemBuffer, count: u16, flags: DepFlags) -> Insn {
        Insn {
            op: Opcode::Load {
                buffer,
                sram_base: 0,
                dram_base: 0,
                count,
            },
            flags,
        }
    }

    fn gemm(macs: u16, flags: DepFlags) -> Insn {
        Insn {
            op: Opcode::Gemm {
                uop_begin: 0,
                uop_end: 1,
                lp_out: macs,
                lp_in: 1,
                dst_factor: (0, 0),
                src_factor: (0, 0),
                wgt_factor: (0, 0),
                reset: false,
            },
            flags,
        }
    }

    fn store(count: u16, flags: DepFlags) -> Insn {
        Insn {
            op: Opcode::Store {
                sram_base: 0,
                dram_base: 0,
                count,
            },
            flags,
        }
    }

    fn simple_program() -> Program {
        Program {
            insns: vec![
                load(
                    MemBuffer::Inp,
                    16,
                    DepFlags {
                        push_next: true,
                        ..DepFlags::NONE
                    },
                ),
                gemm(
                    64,
                    DepFlags {
                        pop_prev: true,
                        push_next: true,
                        ..DepFlags::NONE
                    },
                ),
                store(
                    16,
                    DepFlags {
                        pop_prev: true,
                        ..DepFlags::NONE
                    },
                ),
                Insn::plain(Opcode::Finish),
            ],
        }
    }

    #[test]
    fn runs_simple_program() {
        let mut sim = VtaCycleSim::default();
        let prog = simple_program();
        let stats = sim.run(&prog);
        assert_eq!(stats.insns, 4);
        // Serial chain: load (~32+~150) -> gemm (68) -> store, plus
        // finish; must exceed the gemm alone and be bounded.
        assert!(stats.cycles > 200, "cycles = {}", stats.cycles);
        assert!(stats.cycles < 2_000, "cycles = {}", stats.cycles);
        assert!(sim.ticks_simulated() >= stats.cycles);
    }

    #[test]
    fn dependency_token_orders_execution() {
        // Without the dep token, gemm would start immediately; with it,
        // the gemm waits for the load.
        let mut sim = VtaCycleSim::default();
        let chained = sim.run(&simple_program()).cycles;
        let mut free_prog = simple_program();
        for insn in &mut free_prog.insns {
            insn.flags = DepFlags::NONE;
        }
        sim.reset();
        let unchained = sim.run(&free_prog).cycles;
        assert!(
            unchained < chained,
            "unchained {unchained} should finish before chained {chained}"
        );
    }

    #[test]
    fn gemm_delay_scales_with_macs() {
        let mut sim = VtaCycleSim::default();
        let mk = |macs| Program {
            insns: vec![gemm(macs, DepFlags::NONE), Insn::plain(Opcode::Finish)],
        };
        let small = sim.run(&mk(10)).cycles;
        sim.reset();
        let big = sim.run(&mk(1000)).cycles;
        assert!(big > small + 900, "big {big} small {small}");
    }

    #[test]
    fn modules_overlap() {
        // Two independent instructions on different modules should take
        // about max(), not sum().
        let mut sim = VtaCycleSim::default();
        let par = Program {
            insns: vec![
                load(MemBuffer::Inp, 256, DepFlags::NONE),
                gemm(1000, DepFlags::NONE),
                Insn::plain(Opcode::Finish),
            ],
        };
        let stats = sim.run(&par);
        let serial_estimate = stats.busy[0] + stats.busy[1];
        assert!(
            stats.cycles < serial_estimate,
            "cycles {} should be below serial {}",
            stats.cycles,
            serial_estimate
        );
    }

    #[test]
    fn ground_truth_validation() {
        let mut sim = VtaCycleSim::default();
        let obs = sim.measure(&simple_program()).unwrap();
        assert!(obs.latency.get() > 0);
        // Missing FINISH rejected.
        let bad = Program {
            insns: vec![gemm(4, DepFlags::NONE)],
        };
        assert!(sim.measure(&bad).is_err());
        // Unbalanced deps rejected.
        let unbalanced = Program {
            insns: vec![
                gemm(
                    4,
                    DepFlags {
                        pop_prev: true,
                        ..DepFlags::NONE
                    },
                ),
                Insn::plain(Opcode::Finish),
            ],
        };
        assert!(sim.measure(&unbalanced).is_err());
        assert!(sim.measure(&Program::default()).is_err());
    }

    #[test]
    fn dep_queue_backpressure_counted_as_stall() {
        // Fast loads feeding a slow compute through the cap-4 L2C
        // queue: once it fills, finished loads cannot retire and the
        // load module stalls.
        let mut sim = VtaCycleSim::new_timing_only(VtaHwConfig::default());
        let mut insns = Vec::new();
        for _ in 0..8 {
            insns.push(load(
                MemBuffer::Inp,
                4,
                DepFlags {
                    push_next: true,
                    ..DepFlags::NONE
                },
            ));
        }
        for _ in 0..8 {
            insns.push(gemm(
                2000,
                DepFlags {
                    pop_prev: true,
                    ..DepFlags::NONE
                },
            ));
        }
        insns.push(Insn::plain(Opcode::Finish));
        let stats = sim.run(&Program { insns });
        assert!(
            stats.stall[0] > 0,
            "load should stall on the full L2C queue: {:?}",
            stats.stall
        );
        let totals = sim.module_totals();
        for (i, c) in totals.iter().enumerate() {
            assert_eq!(c.busy, stats.busy[i], "module {i}");
            assert_eq!(c.stall, stats.stall[i], "module {i}");
            assert_eq!(c.total(), stats.cycles, "module {i}");
        }
        let mut sink = perf_sim::MemorySink::new();
        sim.trace_stages(&mut sink);
        assert_eq!(sink.stages.len(), 3);
        assert_eq!(sink.stages[1].component, "vta");
        assert_eq!(sink.stages[1].stage, "compute");
        sim.trace_stages(&mut perf_sim::NullSink);
    }

    #[test]
    fn deterministic_after_reset() {
        let mut sim = VtaCycleSim::default();
        let a = sim.measure(&simple_program()).unwrap();
        let b = sim.measure(&simple_program()).unwrap();
        assert_eq!(a.latency, b.latency);
    }
}
