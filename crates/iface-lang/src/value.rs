//! Runtime values of the interface language.

use core::fmt;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A runtime value.
///
/// Numbers are `f64`; workload descriptions are passed to interface
/// programs as records and lists (e.g. a protobuf message becomes a
/// record with `num_fields`, `num_writes` and a `subs` list).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An immutable string.
    Str(Rc<str>),
    /// An immutable list.
    List(Rc<Vec<Value>>),
    /// An immutable record.
    Record(Rc<BTreeMap<String, Value>>),
}

impl Value {
    /// Creates a number value.
    pub fn num(n: f64) -> Value {
        Value::Num(n)
    }

    /// Creates a boolean value.
    pub fn bool(b: bool) -> Value {
        Value::Bool(b)
    }

    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::from(s.into()))
    }

    /// Creates a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(items))
    }

    /// Creates a record value from key/value pairs.
    pub fn record(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Record(Rc::new(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        ))
    }

    /// Creates a record value from owned keys.
    pub fn record_owned(fields: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Record(Rc::new(fields.into_iter().collect()))
    }

    /// Extracts a number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Extracts a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a list, if this is one.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a record field.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(m) => m.get(name),
            _ => None,
        }
    }

    /// The type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Record(_) => "record",
        }
    }

    /// Truthiness: only booleans have it; everything else is a type
    /// error at the call site (handled by the interpreter).
    pub fn truthy(&self) -> Option<bool> {
        self.as_bool()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, "]")
            }
            Value::Record(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::num(2.0).as_num(), Some(2.0));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert_eq!(Value::num(1.0).as_bool(), None);
        let l = Value::list(vec![Value::num(1.0), Value::num(2.0)]);
        assert_eq!(l.as_list().unwrap().len(), 2);
        let r = Value::record([("a", Value::num(3.0))]);
        assert_eq!(r.field("a").unwrap().as_num(), Some(3.0));
        assert!(r.field("b").is_none());
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::num(0.0).type_name(), "number");
        assert_eq!(Value::str("x").type_name(), "string");
        assert_eq!(Value::list(vec![]).type_name(), "list");
        assert_eq!(Value::record([]).type_name(), "record");
    }

    #[test]
    fn display_forms() {
        let v = Value::record([
            ("n", Value::num(1.0)),
            ("xs", Value::list(vec![Value::bool(false)])),
        ]);
        assert_eq!(v.to_string(), "{n: 1, xs: [false]}");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3u64), Value::Num(3.0));
        assert_eq!(Value::from(4usize), Value::Num(4.0));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
