//! Static checks run after parsing and before execution.
//!
//! PIL is dynamically typed, so the checker focuses on name errors a
//! vendor would want caught before shipping an interface: duplicate
//! functions/constants, calls to undefined functions, references to
//! undefined variables, wrong arity for user functions, and assignment
//! to names that were never bound.

use crate::ast::{Expr, FnDecl, Program, Stmt};
use crate::builtins;
use crate::error::{LangError, Span};
use std::collections::{HashMap, HashSet};

/// Checks `prog`, returning the first error found.
pub fn check(prog: &Program) -> Result<(), LangError> {
    let mut fn_arity: HashMap<&str, usize> = HashMap::new();
    for f in &prog.functions {
        if fn_arity.insert(&f.name, f.params.len()).is_some() {
            return Err(LangError::Check {
                span: f.span,
                msg: format!("duplicate function `{}`", f.name),
            });
        }
        if builtins::is_builtin(&f.name) {
            return Err(LangError::Check {
                span: f.span,
                msg: format!("function `{}` shadows a builtin", f.name),
            });
        }
        let mut seen = HashSet::new();
        for p in &f.params {
            if !seen.insert(p.as_str()) {
                return Err(LangError::Check {
                    span: f.span,
                    msg: format!("duplicate parameter `{p}` in `{}`", f.name),
                });
            }
        }
    }

    let mut consts: HashSet<&str> = HashSet::new();
    for c in &prog.consts {
        // Constants may reference earlier constants only.
        let scope = Scope {
            fn_arity: &fn_arity,
            consts: &consts,
            locals: Vec::new(),
        };
        scope.check_expr(&c.init)?;
        if !consts.insert(&c.name) {
            return Err(LangError::Check {
                span: c.span,
                msg: format!("duplicate constant `{}`", c.name),
            });
        }
    }

    for f in &prog.functions {
        check_fn(f, &fn_arity, &consts)?;
    }
    Ok(())
}

struct Scope<'a> {
    fn_arity: &'a HashMap<&'a str, usize>,
    consts: &'a HashSet<&'a str>,
    locals: Vec<HashSet<String>>,
}

fn check_fn(
    f: &FnDecl,
    fn_arity: &HashMap<&str, usize>,
    consts: &HashSet<&str>,
) -> Result<(), LangError> {
    let mut scope = Scope {
        fn_arity,
        consts,
        locals: vec![f.params.iter().cloned().collect()],
    };
    scope.check_block(&f.body)
}

impl<'a> Scope<'a> {
    fn is_bound(&self, name: &str) -> bool {
        self.locals.iter().any(|s| s.contains(name)) || self.consts.contains(name)
    }

    fn check_block(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        self.locals.push(HashSet::new());
        for s in stmts {
            self.check_stmt(s)?;
        }
        self.locals.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Let(name, init, _) => {
                self.check_expr(init)?;
                self.locals
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone());
                Ok(())
            }
            Stmt::Assign(name, e, span) => {
                if !self.locals.iter().any(|s| s.contains(name)) {
                    return Err(LangError::Check {
                        span: *span,
                        msg: format!("assignment to unbound variable `{name}` (use `let`)"),
                    });
                }
                self.check_expr(e)
            }
            Stmt::Return(e, _) => self.check_expr(e),
            Stmt::If(cond, then, els, _) => {
                self.check_expr(cond)?;
                self.check_block(then)?;
                self.check_block(els)
            }
            Stmt::For(var, iter, body, _) => {
                self.check_expr(iter)?;
                self.locals.push(HashSet::from([var.clone()]));
                for s in body {
                    self.check_stmt(s)?;
                }
                self.locals.pop();
                Ok(())
            }
            Stmt::While(cond, body, _) => {
                self.check_expr(cond)?;
                self.check_block(body)
            }
            Stmt::Expr(e, _) => self.check_expr(e),
        }
    }

    fn check_expr(&self, e: &Expr) -> Result<(), LangError> {
        match e {
            Expr::Num(..) | Expr::Str(..) | Expr::Bool(..) => Ok(()),
            Expr::Var(name, span) => {
                if self.is_bound(name) {
                    Ok(())
                } else {
                    Err(self.undefined(name, *span))
                }
            }
            Expr::List(items, _) => items.iter().try_for_each(|i| self.check_expr(i)),
            Expr::Record(fields, _) => fields.iter().try_for_each(|(_, v)| self.check_expr(v)),
            Expr::Field(base, _, _) => self.check_expr(base),
            Expr::Index(base, idx, _) => {
                self.check_expr(base)?;
                self.check_expr(idx)
            }
            Expr::Call(name, args, span) => {
                if let Some(&arity) = self.fn_arity.get(name.as_str()) {
                    if args.len() != arity {
                        return Err(LangError::Check {
                            span: *span,
                            msg: format!(
                                "`{name}` expects {arity} argument(s), got {}",
                                args.len()
                            ),
                        });
                    }
                } else if !builtins::is_builtin(name) {
                    return Err(LangError::Check {
                        span: *span,
                        msg: format!("call to undefined function `{name}`"),
                    });
                }
                args.iter().try_for_each(|a| self.check_expr(a))
            }
            Expr::Unary(_, inner, _) => self.check_expr(inner),
            Expr::Binary(_, l, r, _) => {
                self.check_expr(l)?;
                self.check_expr(r)
            }
        }
    }

    fn undefined(&self, name: &str, span: Span) -> LangError {
        LangError::Check {
            span,
            msg: format!("undefined variable `{name}`"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), LangError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        check_src(
            "const M = 2; fn g(x) { return x * M; } fn f(a) { let s = 0; for v in a { s = s + g(v); } return s; }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_duplicate_function() {
        assert!(check_src("fn f() { return 1; } fn f() { return 2; }").is_err());
    }

    #[test]
    fn rejects_builtin_shadowing() {
        assert!(check_src("fn ceil(x) { return x; }").is_err());
    }

    #[test]
    fn rejects_duplicate_params_and_consts() {
        assert!(check_src("fn f(a, a) { return a; }").is_err());
        assert!(check_src("const C = 1; const C = 2;").is_err());
    }

    #[test]
    fn rejects_undefined_variable() {
        assert!(check_src("fn f() { return y; }").is_err());
    }

    #[test]
    fn rejects_use_before_const_decl() {
        assert!(check_src("const A = B; const B = 1;").is_err());
    }

    #[test]
    fn rejects_undefined_function_and_bad_arity() {
        assert!(check_src("fn f() { return g(); }").is_err());
        assert!(check_src("fn g(x) { return x; } fn f() { return g(); }").is_err());
    }

    #[test]
    fn rejects_assignment_without_let() {
        assert!(check_src("fn f() { x = 1; return x; }").is_err());
        // Assigning to a const is also an error: consts are not locals.
        assert!(check_src("const C = 1; fn f() { C = 2; return C; }").is_err());
    }

    #[test]
    fn block_scoping_confines_let() {
        // `let` inside `if` is not visible after the block.
        assert!(check_src("fn f(c) { if c { let x = 1; } return x; }").is_err());
    }

    #[test]
    fn loop_variable_scoped_to_body() {
        assert!(check_src("fn f(xs) { for x in xs { let y = x; } return x; }").is_err());
        check_src("fn f(xs) { let s = 0; for x in xs { s = s + x; } return s; }").unwrap();
    }

    #[test]
    fn recursion_allowed() {
        check_src("fn rc(m) { let c = 0; for s in m.subs { c = c + rc(s); } return c + 1; }")
            .unwrap();
    }
}
