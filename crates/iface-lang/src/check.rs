//! Static checks run after parsing and before execution.
//!
//! PIL is dynamically typed, so the checker focuses on name errors a
//! vendor would want caught before shipping an interface: duplicate
//! functions/constants, calls to undefined functions, references to
//! undefined variables, wrong arity for user functions, and assignment
//! to names that were never bound. It also warns about unused function
//! parameters and unused `let` bindings.
//!
//! The checker accumulates: [`diagnostics`] walks the whole program and
//! reports every problem with a `PIL0xx` code through the shared
//! [`perf_core::diag`] model. [`check`] keeps the original fail-fast
//! contract — it returns the first *error*-severity finding — so
//! parsing still rejects broken programs while warnings (unused names)
//! never block execution.

use crate::ast::{Expr, FnDecl, Program, Stmt};
use crate::builtins;
use crate::error::{LangError, Span};
use perf_core::diag::{Diagnostic, Diagnostics, Severity};
use std::collections::{HashMap, HashSet};

/// Checks `prog`, returning the first error-severity finding.
/// Warnings (e.g. unused parameters) do not fail the check.
pub fn check(prog: &Program) -> Result<(), LangError> {
    match diagnostics(prog)
        .items()
        .iter()
        .find(|d| d.severity == Severity::Error)
    {
        None => Ok(()),
        Some(d) => Err(LangError::Check {
            span: Span::at(d.line.unwrap_or(0), d.col.unwrap_or(0)),
            msg: d.message.clone(),
        }),
    }
}

/// Runs every name/arity/usage check on `prog` and reports all findings.
pub fn diagnostics(prog: &Program) -> Diagnostics {
    let mut out = Diagnostics::new();
    let mut fn_arity: HashMap<&str, usize> = HashMap::new();
    for f in &prog.functions {
        if fn_arity.insert(&f.name, f.params.len()).is_some() {
            report(
                &mut out,
                "PIL001",
                Severity::Error,
                format!("duplicate function `{}`", f.name),
                f.span,
            );
        }
        if builtins::is_builtin(&f.name) {
            report(
                &mut out,
                "PIL002",
                Severity::Error,
                format!("function `{}` shadows a builtin", f.name),
                f.span,
            );
        }
        let mut seen = HashSet::new();
        for p in &f.params {
            if !seen.insert(p.as_str()) {
                report(
                    &mut out,
                    "PIL003",
                    Severity::Error,
                    format!("duplicate parameter `{p}` in `{}`", f.name),
                    f.span,
                );
            }
        }
    }

    let mut consts: HashSet<&str> = HashSet::new();
    for c in &prog.consts {
        // Constants may reference earlier constants only.
        {
            let mut scope = Scope {
                fn_arity: &fn_arity,
                consts: &consts,
                locals: Vec::new(),
                out: &mut out,
            };
            scope.check_expr(&c.init);
        }
        if !consts.insert(&c.name) {
            report(
                &mut out,
                "PIL004",
                Severity::Error,
                format!("duplicate constant `{}`", c.name),
                c.span,
            );
        }
    }

    for f in &prog.functions {
        let mut scope = Scope {
            fn_arity: &fn_arity,
            consts: &consts,
            locals: vec![f.params.iter().cloned().collect()],
            out: &mut out,
        };
        scope.check_block(&f.body);
        unused_bindings(f, &mut out);
    }
    out
}

fn report(out: &mut Diagnostics, code: &str, sev: Severity, msg: String, span: Span) {
    out.push(Diagnostic::new(code, sev, msg).with_pos(span.line, span.col));
}

/// PIL009/PIL010: parameters and `let` bindings that are never read.
/// A name is "read" if it appears as a variable reference anywhere in
/// the function; `_`-prefixed names opt out.
fn unused_bindings(f: &FnDecl, out: &mut Diagnostics) {
    let mut used: HashSet<&str> = HashSet::new();
    for s in &f.body {
        collect_reads(s, &mut used);
    }
    for p in &f.params {
        if !p.starts_with('_') && !used.contains(p.as_str()) {
            out.push(
                Diagnostic::warning("PIL009", format!("unused parameter `{p}` in `{}`", f.name))
                    .with_pos(f.span.line, f.span.col)
                    .with_note("prefix it with `_` if the interface shape requires it"),
            );
        }
    }
    let mut lets: Vec<(&str, Span)> = Vec::new();
    for s in &f.body {
        collect_lets(s, &mut lets);
    }
    for (name, span) in lets {
        if !name.starts_with('_') && !used.contains(name) {
            out.push(
                Diagnostic::warning(
                    "PIL010",
                    format!("unused `let` binding `{name}` in `{}`", f.name),
                )
                .with_pos(span.line, span.col)
                .with_note("the value is computed and then dropped"),
            );
        }
    }
}

fn collect_reads<'a>(s: &'a Stmt, used: &mut HashSet<&'a str>) {
    match s {
        Stmt::Let(_, e, _) | Stmt::Assign(_, e, _) | Stmt::Return(e, _) | Stmt::Expr(e, _) => {
            collect_expr_reads(e, used)
        }
        Stmt::If(c, a, b, _) => {
            collect_expr_reads(c, used);
            a.iter().for_each(|s| collect_reads(s, used));
            b.iter().for_each(|s| collect_reads(s, used));
        }
        Stmt::For(_, it, body, _) => {
            collect_expr_reads(it, used);
            body.iter().for_each(|s| collect_reads(s, used));
        }
        Stmt::While(c, body, _) => {
            collect_expr_reads(c, used);
            body.iter().for_each(|s| collect_reads(s, used));
        }
    }
}

fn collect_expr_reads<'a>(e: &'a Expr, used: &mut HashSet<&'a str>) {
    match e {
        Expr::Num(..) | Expr::Str(..) | Expr::Bool(..) => {}
        Expr::Var(name, _) => {
            used.insert(name);
        }
        Expr::List(items, _) => items.iter().for_each(|i| collect_expr_reads(i, used)),
        Expr::Record(fields, _) => fields.iter().for_each(|(_, v)| collect_expr_reads(v, used)),
        Expr::Field(base, _, _) => collect_expr_reads(base, used),
        Expr::Index(base, idx, _) => {
            collect_expr_reads(base, used);
            collect_expr_reads(idx, used);
        }
        Expr::Call(_, args, _) => args.iter().for_each(|a| collect_expr_reads(a, used)),
        Expr::Unary(_, inner, _) => collect_expr_reads(inner, used),
        Expr::Binary(_, l, r, _) => {
            collect_expr_reads(l, used);
            collect_expr_reads(r, used);
        }
    }
}

fn collect_lets<'a>(s: &'a Stmt, lets: &mut Vec<(&'a str, Span)>) {
    match s {
        Stmt::Let(name, _, span) => lets.push((name, *span)),
        Stmt::If(_, a, b, _) => {
            a.iter().for_each(|s| collect_lets(s, lets));
            b.iter().for_each(|s| collect_lets(s, lets));
        }
        Stmt::For(_, _, body, _) | Stmt::While(_, body, _) => {
            body.iter().for_each(|s| collect_lets(s, lets));
        }
        Stmt::Assign(..) | Stmt::Return(..) | Stmt::Expr(..) => {}
    }
}

struct Scope<'a> {
    fn_arity: &'a HashMap<&'a str, usize>,
    consts: &'a HashSet<&'a str>,
    locals: Vec<HashSet<String>>,
    out: &'a mut Diagnostics,
}

impl<'a> Scope<'a> {
    fn is_bound(&self, name: &str) -> bool {
        self.locals.iter().any(|s| s.contains(name)) || self.consts.contains(name)
    }

    fn check_block(&mut self, stmts: &[Stmt]) {
        self.locals.push(HashSet::new());
        for s in stmts {
            self.check_stmt(s);
        }
        self.locals.pop();
    }

    fn check_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let(name, init, _) => {
                self.check_expr(init);
                self.locals
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone());
            }
            Stmt::Assign(name, e, span) => {
                if !self.locals.iter().any(|s| s.contains(name)) {
                    report(
                        self.out,
                        "PIL008",
                        Severity::Error,
                        format!("assignment to unbound variable `{name}` (use `let`)"),
                        *span,
                    );
                }
                self.check_expr(e);
            }
            Stmt::Return(e, _) => self.check_expr(e),
            Stmt::If(cond, then, els, _) => {
                self.check_expr(cond);
                self.check_block(then);
                self.check_block(els);
            }
            Stmt::For(var, iter, body, _) => {
                self.check_expr(iter);
                self.locals.push(HashSet::from([var.clone()]));
                for s in body {
                    self.check_stmt(s);
                }
                self.locals.pop();
            }
            Stmt::While(cond, body, _) => {
                self.check_expr(cond);
                self.check_block(body);
            }
            Stmt::Expr(e, _) => self.check_expr(e),
        }
    }

    fn check_expr(&mut self, e: &Expr) {
        match e {
            Expr::Num(..) | Expr::Str(..) | Expr::Bool(..) => {}
            Expr::Var(name, span) => {
                if !self.is_bound(name) {
                    report(
                        self.out,
                        "PIL005",
                        Severity::Error,
                        format!("undefined variable `{name}`"),
                        *span,
                    );
                }
            }
            Expr::List(items, _) => items.iter().for_each(|i| self.check_expr(i)),
            Expr::Record(fields, _) => fields.iter().for_each(|(_, v)| self.check_expr(v)),
            Expr::Field(base, _, _) => self.check_expr(base),
            Expr::Index(base, idx, _) => {
                self.check_expr(base);
                self.check_expr(idx);
            }
            Expr::Call(name, args, span) => {
                if let Some(&arity) = self.fn_arity.get(name.as_str()) {
                    if args.len() != arity {
                        report(
                            self.out,
                            "PIL007",
                            Severity::Error,
                            format!("`{name}` expects {arity} argument(s), got {}", args.len()),
                            *span,
                        );
                    }
                } else if !builtins::is_builtin(name) {
                    report(
                        self.out,
                        "PIL006",
                        Severity::Error,
                        format!("call to undefined function `{name}`"),
                        *span,
                    );
                }
                args.iter().for_each(|a| self.check_expr(a));
            }
            Expr::Unary(_, inner, _) => self.check_expr(inner),
            Expr::Binary(_, l, r, _) => {
                self.check_expr(l);
                self.check_expr(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), LangError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    fn diag_src(src: &str) -> Diagnostics {
        diagnostics(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        check_src(
            "const M = 2; fn g(x) { return x * M; } fn f(a) { let s = 0; for v in a { s = s + g(v); } return s; }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_duplicate_function() {
        assert!(check_src("fn f() { return 1; } fn f() { return 2; }").is_err());
    }

    #[test]
    fn rejects_builtin_shadowing() {
        assert!(check_src("fn ceil(x) { return x; }").is_err());
    }

    #[test]
    fn rejects_duplicate_params_and_consts() {
        assert!(check_src("fn f(a, a) { return a; }").is_err());
        assert!(check_src("const C = 1; const C = 2;").is_err());
    }

    #[test]
    fn rejects_undefined_variable() {
        assert!(check_src("fn f() { return y; }").is_err());
    }

    #[test]
    fn rejects_use_before_const_decl() {
        assert!(check_src("const A = B; const B = 1;").is_err());
    }

    #[test]
    fn rejects_undefined_function_and_bad_arity() {
        assert!(check_src("fn f() { return g(); }").is_err());
        assert!(check_src("fn g(x) { return x; } fn f() { return g(); }").is_err());
    }

    #[test]
    fn rejects_assignment_without_let() {
        assert!(check_src("fn f() { x = 1; return x; }").is_err());
        // Assigning to a const is also an error: consts are not locals.
        assert!(check_src("const C = 1; fn f() { C = 2; return C; }").is_err());
    }

    #[test]
    fn block_scoping_confines_let() {
        // `let` inside `if` is not visible after the block.
        assert!(check_src("fn f(c) { if c { let x = 1; } return x; }").is_err());
    }

    #[test]
    fn loop_variable_scoped_to_body() {
        assert!(check_src("fn f(xs) { for x in xs { let y = x; } return x; }").is_err());
        check_src("fn f(xs) { let s = 0; for x in xs { s = s + x; } return s; }").unwrap();
    }

    #[test]
    fn recursion_allowed() {
        check_src("fn rc(m) { let c = 0; for s in m.subs { c = c + rc(s); } return c + 1; }")
            .unwrap();
    }

    #[test]
    fn diagnostics_accumulate_every_problem() {
        // Three distinct errors in one program, reported together.
        let ds = diag_src("fn f() { return y; } fn f() { return 2; } fn g() { return h(); }");
        assert!(ds.has_code("PIL001"), "{}", ds.render());
        assert!(ds.has_code("PIL005"), "{}", ds.render());
        assert!(ds.has_code("PIL006"), "{}", ds.render());
        assert_eq!(ds.count(Severity::Error), 3, "{}", ds.render());
    }

    #[test]
    fn unused_parameter_warns_but_does_not_fail() {
        let src = "fn f(a, b) { return a; }";
        check_src(src).unwrap();
        let ds = diag_src(src);
        let d = ds.find("PIL009").expect("unused-param warning");
        assert!(d.message.contains("`b`"), "{}", ds.render());
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn unused_let_warns_but_does_not_fail() {
        let src = "fn f(a) { let waste = a * 2; return a; }";
        check_src(src).unwrap();
        let ds = diag_src(src);
        assert!(ds.has_code("PIL010"), "{}", ds.render());
    }

    #[test]
    fn underscore_prefix_silences_unused_warnings() {
        let ds = diag_src("fn f(a, _shape) { let _x = a; return a; }");
        assert!(ds.is_empty(), "{}", ds.render());
    }

    #[test]
    fn used_in_nested_scope_is_not_unused() {
        let ds = diag_src("fn f(xs, k) { let s = 0; for x in xs { s = s + x * k; } return s; }");
        assert!(ds.is_empty(), "{}", ds.render());
    }

    #[test]
    fn shipped_style_program_is_warning_free() {
        let ds = diag_src(
            "const M = 145;\nfn read_cost(msg) { let c = 0; for s in msg.subs { c = c + read_cost(s); } return c + M; }",
        );
        assert!(ds.is_empty(), "{}", ds.render());
    }
}
