//! The executable performance-interface language (PIL).
//!
//! The HotOS '23 paper represents program-style performance interfaces
//! as small Python functions (its Figs. 2–3). This crate provides an
//! equivalent purpose-built language so interfaces remain what the paper
//! wants them to be: *programs shipped as data* — text a vendor can
//! publish, a human can eyeball, and a tool can execute — rather than
//! compiled-in host-language closures.
//!
//! PIL is a tiny dynamically-typed expression language with functions,
//! `let`/assignment, `if`/`else`, `for`-over-lists, recursion, numeric
//! and record/list values, and a handful of math builtins. A JPEG
//! latency interface looks like:
//!
//! ```text
//! # Latency interface for the JPEG decoder (paper Fig. 2).
//! fn latency_jpeg_decode(img) {
//!     let size = img.orig_size / 64;
//!     return max(size * 136.5,
//!                size / 64 * ((5 / img.compress_rate) * 3 + 6) * 1.5);
//! }
//! ```
//!
//! # Examples
//!
//! ```
//! use perf_iface_lang::{Program, Value};
//!
//! let src = "fn double(x) { return x * 2; }";
//! let prog = Program::parse(src).unwrap();
//! let out = prog.call("double", &[Value::num(21.0)]).unwrap();
//! assert_eq!(out.as_num().unwrap(), 42.0);
//! ```

pub mod ast;
pub mod builtins;
pub mod check;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod printer;
pub mod value;
pub mod vm;

pub use error::{LangError, Span};
pub use interp::{Interp, Limits};
pub use value::Value;

/// A parsed, checked, ready-to-run interface program.
pub struct Program {
    ast: ast::Program,
    src: String,
}

impl Program {
    /// Parses and statically checks PIL source text.
    pub fn parse(src: &str) -> Result<Program, LangError> {
        let tokens = lexer::lex(src)?;
        let ast = parser::parse(&tokens)?;
        check::check(&ast)?;
        Ok(Program {
            ast,
            src: src.to_string(),
        })
    }

    /// The original source text (used for the complexity metric).
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The underlying AST.
    pub fn ast(&self) -> &ast::Program {
        &self.ast
    }

    /// Returns `true` if the program defines function `name`.
    pub fn defines(&self, name: &str) -> bool {
        self.ast.functions.iter().any(|f| f.name == name)
    }

    /// Calls function `name` with `args` under default execution limits.
    ///
    /// # Errors
    ///
    /// Besides ordinary runtime errors, a call whose *result* contains
    /// a non-finite number (`inf`/`NaN` anywhere in the returned value,
    /// including inside lists and records) is a runtime error. Interface
    /// programs exist to predict cycle counts; `1 / 0` is permitted
    /// *mid-expression* (like the paper's Python programs), but an
    /// infinite latency escaping the program boundary is never a
    /// prediction — it flowed unchecked into experiments and the
    /// autotuner before this check existed.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, LangError> {
        self.call_with_limits(name, args, Limits::default())
    }

    /// Calls function `name` with `args` under custom limits.
    ///
    /// # Errors
    ///
    /// Same non-finite-result policy as [`Program::call`].
    pub fn call_with_limits(
        &self,
        name: &str,
        args: &[Value],
        limits: Limits,
    ) -> Result<Value, LangError> {
        let out = Interp::new(&self.ast, limits).call(name, args)?;
        check_finite(&out).map_err(|bad| {
            LangError::runtime(
                Span::default(),
                format!(
                    "function '{name}' returned a non-finite result ({bad}); \
                     a performance interface must yield finite numbers \
                     (check for division by zero or overflow)"
                ),
            )
        })?;
        Ok(out)
    }
}

/// Verifies every numeric leaf of `v` is finite; returns the first
/// offending number otherwise.
pub(crate) fn check_finite(v: &Value) -> Result<(), f64> {
    match v {
        Value::Num(n) if !n.is_finite() => Err(*n),
        Value::List(items) => items.iter().try_for_each(check_finite),
        Value::Record(fields) => fields.values().try_for_each(check_finite),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_call_roundtrip() {
        let p = Program::parse("fn id(x) { return x; }").unwrap();
        assert!(p.defines("id"));
        assert!(!p.defines("nope"));
        let v = p.call("id", &[Value::num(7.0)]).unwrap();
        assert_eq!(v.as_num().unwrap(), 7.0);
    }

    #[test]
    fn source_preserved() {
        let src = "# c\nfn f() { return 1; }\n";
        let p = Program::parse(src).unwrap();
        assert_eq!(p.source(), src);
    }

    #[test]
    fn parse_error_reported() {
        assert!(Program::parse("fn f( { }").is_err());
    }
}
