//! Recursive-descent parser for the interface language.

use crate::ast::{BinOp, ConstDecl, Expr, FnDecl, Program, Stmt, UnOp};
use crate::error::{LangError, Span};
use crate::lexer::{Tok, Token};

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into a
/// [`Program`].
pub fn parse(toks: &[Token]) -> Result<Program, LangError> {
    let mut p = Parser { toks, pos: 0 };
    let mut prog = Program::default();
    loop {
        match p.peek() {
            Tok::Eof => return Ok(prog),
            Tok::Fn => prog.functions.push(p.fn_decl()?),
            Tok::Const => prog.consts.push(p.const_decl()?),
            _ => {
                return Err(p.err("expected `fn` or `const` at top level"));
            }
        }
    }
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> &Token {
        let t = &self.toks[self.pos];
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::Parse {
            span: self.peek_span(),
            msg: msg.into(),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Span, LangError> {
        if self.peek() == want {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), LangError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn const_decl(&mut self) -> Result<ConstDecl, LangError> {
        let span = self.expect(&Tok::Const, "`const`")?;
        let (name, _) = self.ident("constant name")?;
        self.expect(&Tok::Assign, "`=`")?;
        let init = self.expr()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(ConstDecl { name, init, span })
    }

    fn fn_decl(&mut self) -> Result<FnDecl, LangError> {
        let span = self.expect(&Tok::Fn, "`fn`")?;
        let (name, _) = self.ident("function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let (p, _) = self.ident("parameter name")?;
                params.push(p);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return Err(self.err("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // `}`
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let (name, _) = self.ident("binding name")?;
                self.expect(&Tok::Assign, "`=`")?;
                let init = self.expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Let(name, init, span))
            }
            Tok::Return => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Return(e, span))
            }
            Tok::If => {
                self.bump();
                let cond = self.expr()?;
                let then = self.block()?;
                let els = if self.peek() == &Tok::Else {
                    self.bump();
                    if self.peek() == &Tok::If {
                        // `else if` sugar: wrap in a one-statement block.
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els, span))
            }
            Tok::For => {
                self.bump();
                let (var, _) = self.ident("loop variable")?;
                self.expect(&Tok::In, "`in`")?;
                let iter = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For(var, iter, body, span))
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body, span))
            }
            Tok::Ident(name)
                // Either an assignment `x = e;` or an expression stmt.
                if self.toks.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::Assign) => {
                    self.bump();
                    self.bump();
                    let e = self.expr()?;
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Assign(name, e, span))
                }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Expr(e, span))
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            let span = self.bump().span;
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            let span = self.bump().span;
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let span = self.bump().span;
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), span))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let span = self.bump().span;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let span = self.bump().span;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            Tok::Minus => {
                let span = self.bump().span;
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e), span))
            }
            Tok::Bang => {
                let span = self.bump().span;
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e), span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    let span = self.bump().span;
                    let (field, _) = self.ident("field name")?;
                    e = Expr::Field(Box::new(e), field, span);
                }
                Tok::LBracket => {
                    let span = self.bump().span;
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    e = Expr::Index(Box::new(e), Box::new(idx), span);
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n, span))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, span))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true, span))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false, span))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    Ok(Expr::Call(name, args, span))
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket, "`]`")?;
                Ok(Expr::List(items, span))
            }
            Tok::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if self.peek() != &Tok::RBrace {
                    loop {
                        let (k, _) = self.ident("record key")?;
                        self.expect(&Tok::Colon, "`:`")?;
                        let v = self.expr()?;
                        fields.push((k, v));
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace, "`}`")?;
                Ok(Expr::Record(fields, span))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Program, LangError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parse_fn_with_params() {
        let p = parse_src("fn f(a, b) { return a + b; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("fn f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Expr::Binary(BinOp::Add, _, rhs, _), _) = &p.functions[0].body[0] else {
            panic!("expected return of binary add");
        };
        assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn parens_override_precedence() {
        let p = parse_src("fn f() { return (1 + 2) * 3; }").unwrap();
        let Stmt::Return(Expr::Binary(BinOp::Mul, lhs, _, _), _) = &p.functions[0].body[0] else {
            panic!("expected return of binary mul");
        };
        assert!(matches!(**lhs, Expr::Binary(BinOp::Add, _, _, _)));
    }

    #[test]
    fn parse_control_flow() {
        let src = "fn f(xs) { let c = 0; for x in xs { if x > 2 { c = c + x; } else { c = c - 1; } } while c > 100 { c = c - 100; } return c; }";
        let p = parse_src(src).unwrap();
        assert_eq!(p.functions[0].body.len(), 4);
    }

    #[test]
    fn parse_else_if_chain() {
        let src =
            "fn f(x) { if x > 2 { return 1; } else if x > 1 { return 2; } else { return 3; } }";
        let p = parse_src(src).unwrap();
        let Stmt::If(_, _, els, _) = &p.functions[0].body[0] else {
            panic!("expected if");
        };
        assert!(matches!(els[0], Stmt::If(_, _, _, _)));
    }

    #[test]
    fn parse_postfix_chains() {
        let p = parse_src("fn f(m) { return m.subs[0].num_fields; }").unwrap();
        let Stmt::Return(e, _) = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Field(_, _, _)));
    }

    #[test]
    fn parse_const_and_record_literals() {
        let p = parse_src("const M = 150; fn f() { return { a: 1, b: [1, 2] }; }").unwrap();
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.consts[0].name, "M");
    }

    #[test]
    fn error_on_garbage_top_level() {
        assert!(parse_src("let x = 1;").is_err());
        assert!(parse_src("fn f() { return 1 }").is_err()); // Missing `;`.
        assert!(parse_src("fn f() {").is_err());
    }

    #[test]
    fn comparison_is_non_associative() {
        // `a < b < c` parses as `(a < b) < c`? No: cmp is single-shot,
        // so the second `<` terminates the expression and the parser
        // errors on the dangling token.
        assert!(parse_src("fn f(a, b, c) { return a < b < c; }").is_err());
    }
}
