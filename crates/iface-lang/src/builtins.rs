//! Built-in functions available to every interface program.

use crate::error::{LangError, Span};
use crate::value::Value;

/// Returns `true` if `name` is a builtin.
pub fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "ceil"
            | "floor"
            | "round"
            | "abs"
            | "min"
            | "max"
            | "sqrt"
            | "pow"
            | "log2"
            | "len"
            | "sum"
            | "num"
    )
}

/// Calls builtin `name` with `args`.
pub fn call(name: &str, args: &[Value], span: Span) -> Result<Value, LangError> {
    let nargs = |n: usize| -> Result<(), LangError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(LangError::runtime(
                span,
                format!("`{name}` expects {n} argument(s), got {}", args.len()),
            ))
        }
    };
    let num = |i: usize| -> Result<f64, LangError> {
        args[i].as_num().ok_or_else(|| {
            LangError::runtime(
                span,
                format!(
                    "`{name}` argument {} must be a number, got {}",
                    i + 1,
                    args[i].type_name()
                ),
            )
        })
    };
    match name {
        "ceil" => {
            nargs(1)?;
            Ok(Value::num(num(0)?.ceil()))
        }
        "floor" => {
            nargs(1)?;
            Ok(Value::num(num(0)?.floor()))
        }
        "round" => {
            nargs(1)?;
            Ok(Value::num(num(0)?.round()))
        }
        "abs" => {
            nargs(1)?;
            Ok(Value::num(num(0)?.abs()))
        }
        "sqrt" => {
            nargs(1)?;
            Ok(Value::num(num(0)?.sqrt()))
        }
        "log2" => {
            nargs(1)?;
            Ok(Value::num(num(0)?.log2()))
        }
        "pow" => {
            nargs(2)?;
            Ok(Value::num(num(0)?.powf(num(1)?)))
        }
        "min" | "max" => {
            if args.len() < 2 {
                return Err(LangError::runtime(
                    span,
                    format!("`{name}` expects at least 2 arguments"),
                ));
            }
            let mut acc = num(0)?;
            for i in 1..args.len() {
                let v = num(i)?;
                acc = if name == "min" {
                    acc.min(v)
                } else {
                    acc.max(v)
                };
            }
            Ok(Value::num(acc))
        }
        "len" => {
            nargs(1)?;
            match &args[0] {
                Value::List(v) => Ok(Value::num(v.len() as f64)),
                Value::Str(s) => Ok(Value::num(s.len() as f64)),
                other => Err(LangError::runtime(
                    span,
                    format!("`len` expects a list or string, got {}", other.type_name()),
                )),
            }
        }
        "sum" => {
            nargs(1)?;
            let list = args[0].as_list().ok_or_else(|| {
                LangError::runtime(
                    span,
                    format!("`sum` expects a list, got {}", args[0].type_name()),
                )
            })?;
            let mut acc = 0.0;
            for (i, v) in list.iter().enumerate() {
                acc += v.as_num().ok_or_else(|| {
                    LangError::runtime(
                        span,
                        format!("`sum` element {i} is {}, not a number", v.type_name()),
                    )
                })?;
            }
            Ok(Value::num(acc))
        }
        "num" => {
            nargs(1)?;
            match &args[0] {
                Value::Num(n) => Ok(Value::num(*n)),
                Value::Bool(b) => Ok(Value::num(if *b { 1.0 } else { 0.0 })),
                other => Err(LangError::runtime(
                    span,
                    format!("cannot convert {} to number", other.type_name()),
                )),
            }
        }
        _ => Err(LangError::runtime(
            span,
            format!("unknown builtin `{name}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call1(name: &str, v: f64) -> f64 {
        call(name, &[Value::num(v)], Span::default())
            .unwrap()
            .as_num()
            .unwrap()
    }

    #[test]
    fn math_builtins() {
        assert_eq!(call1("ceil", 1.2), 2.0);
        assert_eq!(call1("floor", 1.8), 1.0);
        assert_eq!(call1("round", 1.5), 2.0);
        assert_eq!(call1("abs", -3.0), 3.0);
        assert_eq!(call1("sqrt", 9.0), 3.0);
        assert_eq!(call1("log2", 8.0), 3.0);
    }

    #[test]
    fn min_max_variadic() {
        let v = call(
            "max",
            &[Value::num(1.0), Value::num(5.0), Value::num(3.0)],
            Span::default(),
        )
        .unwrap();
        assert_eq!(v.as_num(), Some(5.0));
        let v = call("min", &[Value::num(2.0), Value::num(-1.0)], Span::default()).unwrap();
        assert_eq!(v.as_num(), Some(-1.0));
        assert!(call("min", &[Value::num(1.0)], Span::default()).is_err());
    }

    #[test]
    fn len_and_sum() {
        let l = Value::list(vec![Value::num(1.0), Value::num(2.0), Value::num(4.0)]);
        assert_eq!(
            call("len", std::slice::from_ref(&l), Span::default())
                .unwrap()
                .as_num(),
            Some(3.0)
        );
        assert_eq!(
            call("sum", &[l], Span::default()).unwrap().as_num(),
            Some(7.0)
        );
        assert!(call("sum", &[Value::num(1.0)], Span::default()).is_err());
        assert!(call(
            "sum",
            &[Value::list(vec![Value::bool(true)])],
            Span::default()
        )
        .is_err());
    }

    #[test]
    fn type_errors_reported() {
        assert!(call("ceil", &[Value::str("x")], Span::default()).is_err());
        assert!(call("ceil", &[], Span::default()).is_err());
        assert!(call("nope", &[], Span::default()).is_err());
    }

    #[test]
    fn builtin_registry() {
        assert!(is_builtin("ceil"));
        assert!(is_builtin("sum"));
        assert!(!is_builtin("read_cost"));
    }
}
