//! Register-based bytecode VM for interface programs.
//!
//! The tree-walking interpreter ([`crate::interp`]) re-traverses the
//! AST, re-resolves every name, and re-evaluates constant
//! subexpressions on every query. A service answering hundreds of
//! thousands of `.pi` queries per second pays that cost per call, so
//! this module compiles a checked [`Program`](crate::Program) once into
//! flat bytecode:
//!
//! * **register machine** — locals and temporaries live in a flat
//!   per-activation register file; variable reads are array indexing,
//!   not scope-stack probing;
//! * **per-program constant pool** — literals, top-level `const`
//!   values, and every workload-independent subexpression are folded at
//!   compile time into pool loads (folding is conservative: a
//!   subexpression that would *error* at runtime is left unfolded so
//!   the error, with its span, still surfaces on the same call);
//! * **structured control flow lowered to jumps** — `if`/`while`/`for`
//!   and the short-circuiting `&&`/`||` become conditional branches.
//!
//! The VM is observably equivalent to the interpreter: same values,
//! same runtime errors (message and span), same non-finite-result
//! policy at the call boundary. The one intentional difference is
//! accounting: [`Limits::max_steps`] counts executed *instructions*
//! here rather than visited AST nodes, so the two engines may diverge
//! only on programs that run into the step ceiling.

use crate::ast::{BinOp, Expr, FnDecl, Program as Ast, Stmt, UnOp};
use crate::builtins;
use crate::error::{LangError, Span};
use crate::interp::{eval_consts, Limits};
use crate::value::Value;
use perf_core::diag::{Diagnostic, Diagnostics};
use std::collections::HashMap;

/// Every bytecode-verifier code (`PBC0xx`) with a one-line
/// description, for docs and tooling. See
/// [`CompiledProgram::verify`].
pub const BYTECODE_CODES: &[(&str, &str)] = &[
    (
        "PBC001",
        "register operand outside the function's register file",
    ),
    (
        "PBC002",
        "jump or loop-exit target outside instruction bounds",
    ),
    ("PBC003", "constant-pool index out of bounds"),
    ("PBC004", "name or record-key pool index out of bounds"),
    ("PBC005", "register read before any definition on some path"),
    (
        "PBC006",
        "user-function call target or argument count inconsistent",
    ),
    (
        "PBC007",
        "malformed `for` loop header (unpaired IterInit/IterNext or missing back edge)",
    ),
    ("PBC008", "function bytecode can fall off the end"),
];

/// One bytecode instruction. Register operands index the activation's
/// register file; `idx`/`name`/`keys` operands index the program's
/// shared pools.
#[derive(Clone, Debug)]
enum Op {
    /// `dst = pool[idx]`.
    Const { dst: u16, idx: u16 },
    /// `dst = src`.
    Copy { dst: u16, src: u16 },
    /// `dst = [base, base+1, ..., base+n-1]`.
    List { dst: u16, base: u16, n: u16 },
    /// `dst = { keys[0]: base, keys[1]: base+1, ... }`.
    Record { dst: u16, keys: u16, base: u16 },
    /// `dst = base.name`; errors when the field is absent.
    Field { dst: u16, base: u16, name: u16 },
    /// `dst = base[idx]`; errors on non-list / non-integral / bounds.
    Index { dst: u16, base: u16, idx: u16 },
    /// `dst = -src` (numbers only).
    Neg { dst: u16, src: u16 },
    /// `dst = !src` (bools only).
    Not { dst: u16, src: u16 },
    /// `dst = lhs op rhs` for every non-short-circuit operator.
    Bin {
        op: BinOp,
        dst: u16,
        lhs: u16,
        rhs: u16,
    },
    /// Errors unless `src` holds a bool (the interpreter's `eval_bool`
    /// coercion point for conditions and `&&`/`||` operands).
    AsBool { src: u16 },
    /// Unconditional branch.
    Jump { to: u32 },
    /// Branch when `src` is `false` (guaranteed bool by `AsBool`).
    JumpIfFalse { src: u16, to: u32 },
    /// `for` prologue: errors unless `src` is a list, then snapshots it
    /// into `list` and zeroes the counter register.
    IterInit { list: u16, src: u16, ctr: u16 },
    /// `for` step: loads the next element into `item` or exits.
    IterNext {
        item: u16,
        list: u16,
        ctr: u16,
        exit: u32,
    },
    /// Call user function `f` with `n` args at `base`.
    CallFn { dst: u16, f: u16, base: u16, n: u16 },
    /// Call builtin `names[name]` with `n` args at `base`.
    CallBuiltin {
        dst: u16,
        name: u16,
        base: u16,
        n: u16,
    },
    /// Return `src` from the current activation.
    Ret { src: u16 },
    /// Raise the deterministic runtime error this site always produces
    /// (undefined variable, assignment to unbound name, fall-off-end).
    Fail { kind: FailKind, name: u16 },
}

/// Which deterministic error a [`Op::Fail`] site raises.
#[derive(Clone, Copy, Debug)]
enum FailKind {
    /// `undefined variable `x``.
    UndefVar,
    /// `assignment to unbound variable `x``.
    AssignUnbound,
    /// `function `f` finished without `return``.
    NoReturn,
}

/// One compiled function.
#[derive(Debug)]
struct CFn {
    name: String,
    params: usize,
    /// Register-file size (params + locals + temporaries).
    regs: usize,
    code: Vec<Op>,
    /// Per-instruction source spans (error attribution).
    spans: Vec<Span>,
}

/// A program compiled to bytecode, ready for repeated cheap calls.
///
/// Compile once per program (e.g. at service-worker startup), then
/// [`CompiledProgram::call`] per query. Not `Send` — like the
/// interpreter it shares [`Value`]s via `Rc`, so each worker thread
/// compiles its own copy.
///
/// # Examples
///
/// ```
/// use perf_iface_lang::vm::CompiledProgram;
/// use perf_iface_lang::{Program, Value};
///
/// let p = Program::parse("const K = 4; fn f(x) { return x * K + 1; }").unwrap();
/// let vm = CompiledProgram::compile(&p).unwrap();
/// let out = vm.call("f", &[Value::num(10.0)]).unwrap();
/// assert_eq!(out.as_num(), Some(41.0));
/// ```
pub struct CompiledProgram {
    funcs: Vec<CFn>,
    by_name: HashMap<String, usize>,
    /// The constant pool: literals, folded `const` values, and folded
    /// workload-independent subexpressions.
    pool: Vec<Value>,
    /// Interned identifiers (field names, builtin names, error names).
    names: Vec<String>,
    /// Interned record key lists.
    rec_keys: Vec<Vec<String>>,
}

impl CompiledProgram {
    /// Compiles a parsed, checked program to bytecode. Top-level
    /// constants are evaluated eagerly (same order and semantics as the
    /// interpreter) and folded into the constant pool.
    pub fn compile(prog: &crate::Program) -> Result<CompiledProgram, LangError> {
        Self::compile_ast(prog.ast())
    }

    /// Compiles directly from an AST (for callers that hold one).
    pub fn compile_ast(ast: &Ast) -> Result<CompiledProgram, LangError> {
        let consts = eval_consts(ast, Limits::default())?;
        let fn_index: HashMap<&str, usize> = ast
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();
        let mut shared = Pools::default();
        let mut funcs = Vec::with_capacity(ast.functions.len());
        for f in &ast.functions {
            funcs.push(FnCompiler::compile(f, &consts, &fn_index, &mut shared)?);
        }
        let by_name = ast
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        let cp = CompiledProgram {
            funcs,
            by_name,
            pool: shared.pool,
            names: shared.names,
            rec_keys: shared.rec_keys,
        };
        // Debug gate: the VM executes this bytecode with unchecked
        // structural trust, so in debug builds every compile re-proves
        // the invariants on its own output.
        #[cfg(debug_assertions)]
        {
            let ds = cp.verify();
            debug_assert!(
                ds.items().is_empty(),
                "bytecode verifier rejected compiler output:\n{}",
                ds.render()
            );
        }
        Ok(cp)
    }

    /// Returns `true` if the program defines function `name`.
    pub fn defines(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Calls function `name` under default limits, with the same
    /// non-finite-result policy as [`Program::call`](crate::Program::call).
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, LangError> {
        self.call_with_limits(name, args, Limits::default())
    }

    /// Calls function `name` under custom limits.
    pub fn call_with_limits(
        &self,
        name: &str,
        args: &[Value],
        limits: Limits,
    ) -> Result<Value, LangError> {
        let fi = *self.by_name.get(name).ok_or_else(|| {
            LangError::runtime(
                Span::default(),
                format!("call to undefined function `{name}`"),
            )
        })?;
        let mut vm = Vm {
            prog: self,
            limits,
            steps: 0,
            depth: 0,
        };
        let out = vm.run_fn(fi, args.to_vec(), Span::default())?;
        crate::check_finite(&out).map_err(|bad| {
            LangError::runtime(
                Span::default(),
                format!(
                    "function '{name}' returned a non-finite result ({bad}); \
                     a performance interface must yield finite numbers \
                     (check for division by zero or overflow)"
                ),
            )
        })?;
        Ok(out)
    }

    /// Disassembly-ish summary for diagnostics: per-function register
    /// and instruction counts plus the pool size.
    pub fn stats(&self) -> String {
        let insns: usize = self.funcs.iter().map(|f| f.code.len()).sum();
        format!(
            "{} fn(s), {} insn(s), pool {} value(s)",
            self.funcs.len(),
            insns,
            self.pool.len()
        )
    }

    /// Verifies the bytecode against the VM's structural invariants
    /// (`PBC0xx`, see [`BYTECODE_CODES`]): every register operand within
    /// the function's register file, every jump target within
    /// instruction bounds, every pool index valid, user-function calls
    /// target-and-arity consistent, `for` loop headers well formed, and
    /// — via a must-be-defined forward dataflow over the instruction
    /// CFG — no reachable instruction reading a register that some path
    /// leaves unwritten. The VM itself trusts these invariants (it
    /// indexes registers and pools unchecked-by-construction), so
    /// [`CompiledProgram::compile`] re-runs this as a debug-build gate
    /// on its own output; `pil verify` exposes it for shipped
    /// artifacts. A clean program returns an empty [`Diagnostics`].
    ///
    /// Calls to *unknown* builtins are deliberately accepted: the
    /// interpreter reports "call to undefined function" at runtime, so
    /// faithful bytecode must reproduce — not reject — that error.
    pub fn verify(&self) -> Diagnostics {
        let mut out = Diagnostics::new();
        for f in &self.funcs {
            self.verify_fn(f, &mut out);
        }
        out.sort();
        out
    }

    fn verify_fn(&self, f: &CFn, out: &mut Diagnostics) {
        let report = |out: &mut Diagnostics, code: &str, pc: usize, msg: String| {
            let span = f.spans.get(pc).copied().unwrap_or_default();
            out.push(
                Diagnostic::error(code, msg)
                    .with_at(format!("fn `{}` @{pc}", f.name))
                    .with_pos(span.line, span.col),
            );
        };
        let n_ins = f.code.len();
        match f.code.last() {
            Some(Op::Ret { .. } | Op::Jump { .. } | Op::Fail { .. }) => {}
            _ => report(
                out,
                "PBC008",
                n_ins.saturating_sub(1),
                format!("`{}` does not end in a terminator (Ret/Jump/Fail)", f.name),
            ),
        }

        // Structural pass: operand bounds, call consistency, loop
        // headers. Collects per-instruction reads/writes/successors for
        // the dataflow; a function with structural errors skips the
        // dataflow (its indices cannot be trusted).
        let mut structurally_ok = true;
        let mut reads: Vec<Vec<u16>> = Vec::with_capacity(n_ins);
        let mut writes: Vec<Vec<u16>> = Vec::with_capacity(n_ins);
        let mut succs: Vec<Vec<usize>> = Vec::with_capacity(n_ins);
        for (pc, op) in f.code.iter().enumerate() {
            let mut r: Vec<u16> = Vec::new();
            let mut w: Vec<u16> = Vec::new();
            let mut s: Vec<usize> = vec![pc + 1];
            let mut bad = false;
            let check_target = |out: &mut Diagnostics, to: u32, bad: &mut bool| {
                if (to as usize) < n_ins {
                    true
                } else {
                    report(
                        out,
                        "PBC002",
                        pc,
                        format!("jump target {to} outside {n_ins} instruction(s)"),
                    );
                    *bad = true;
                    false
                }
            };
            let check_window =
                |out: &mut Diagnostics, base: u16, n: u16, r: &mut Vec<u16>, bad: &mut bool| {
                    if (base as usize) + (n as usize) <= f.regs {
                        r.extend((base..base + n).collect::<Vec<u16>>());
                    } else {
                        report(
                            out,
                            "PBC001",
                            pc,
                            format!(
                                "register window [{base}, {base}+{n}) outside file of {}",
                                f.regs
                            ),
                        );
                        *bad = true;
                    }
                };
            match op {
                Op::Const { dst, idx } => {
                    w.push(*dst);
                    if (*idx as usize) >= self.pool.len() {
                        report(
                            out,
                            "PBC003",
                            pc,
                            format!("pool index {idx} outside {} value(s)", self.pool.len()),
                        );
                        bad = true;
                    }
                }
                Op::Copy { dst, src } => {
                    r.push(*src);
                    w.push(*dst);
                }
                Op::List { dst, base, n } => {
                    check_window(out, *base, *n, &mut r, &mut bad);
                    w.push(*dst);
                }
                Op::Record { dst, keys, base } => {
                    if let Some(ks) = self.rec_keys.get(*keys as usize) {
                        check_window(out, *base, ks.len() as u16, &mut r, &mut bad);
                    } else {
                        report(
                            out,
                            "PBC004",
                            pc,
                            format!(
                                "record-key index {keys} outside {} list(s)",
                                self.rec_keys.len()
                            ),
                        );
                        bad = true;
                    }
                    w.push(*dst);
                }
                Op::Field { dst, base, name } => {
                    r.push(*base);
                    w.push(*dst);
                    if (*name as usize) >= self.names.len() {
                        report(
                            out,
                            "PBC004",
                            pc,
                            format!("name index {name} outside {} name(s)", self.names.len()),
                        );
                        bad = true;
                    }
                }
                Op::Index { dst, base, idx } => {
                    r.push(*base);
                    r.push(*idx);
                    w.push(*dst);
                }
                Op::Neg { dst, src } | Op::Not { dst, src } => {
                    r.push(*src);
                    w.push(*dst);
                }
                Op::Bin { dst, lhs, rhs, .. } => {
                    r.push(*lhs);
                    r.push(*rhs);
                    w.push(*dst);
                }
                Op::AsBool { src } => r.push(*src),
                Op::Jump { to } => {
                    s.clear();
                    if check_target(out, *to, &mut bad) {
                        s.push(*to as usize);
                    }
                }
                Op::JumpIfFalse { src, to } => {
                    r.push(*src);
                    if check_target(out, *to, &mut bad) {
                        s.push(*to as usize);
                    }
                }
                Op::IterInit { list, src, ctr } => {
                    r.push(*src);
                    w.push(*list);
                    w.push(*ctr);
                }
                Op::IterNext {
                    item,
                    list,
                    ctr,
                    exit,
                } => {
                    r.push(*list);
                    r.push(*ctr);
                    w.push(*item);
                    w.push(*ctr);
                    if check_target(out, *exit, &mut bad) {
                        s.push(*exit as usize);
                    }
                    // Loop header: the back-jump from the body bottom
                    // lands on this IterNext, and the slot right before
                    // it is the IterInit that set up this (list, ctr)
                    // pair — the only shape the compiler emits and the
                    // only one IterNext's unchecked `expect`s are safe
                    // under.
                    let paired = pc > 0
                        && matches!(
                            f.code[pc - 1],
                            Op::IterInit { list: l, ctr: c, .. } if l == *list && c == *ctr
                        );
                    let back_edge = f
                        .code
                        .iter()
                        .any(|o| matches!(o, Op::Jump { to } if *to as usize == pc));
                    if !paired || !back_edge {
                        report(
                            out,
                            "PBC007",
                            pc,
                            format!(
                                "IterNext at {pc} {}",
                                if paired {
                                    "has no back edge jumping to it"
                                } else {
                                    "is not preceded by its IterInit"
                                }
                            ),
                        );
                        bad = true;
                    }
                }
                Op::CallFn {
                    dst,
                    f: fi,
                    base,
                    n,
                } => {
                    check_window(out, *base, *n, &mut r, &mut bad);
                    w.push(*dst);
                    match self.funcs.get(*fi as usize) {
                        Some(callee) if callee.params == *n as usize => {}
                        Some(callee) => {
                            report(
                                out,
                                "PBC006",
                                pc,
                                format!(
                                    "calls `{}` with {n} arg(s) but it takes {}",
                                    callee.name, callee.params
                                ),
                            );
                            bad = true;
                        }
                        None => {
                            report(
                                out,
                                "PBC006",
                                pc,
                                format!(
                                    "call target {fi} outside {} function(s)",
                                    self.funcs.len()
                                ),
                            );
                            bad = true;
                        }
                    }
                }
                Op::CallBuiltin { dst, name, base, n } => {
                    check_window(out, *base, *n, &mut r, &mut bad);
                    w.push(*dst);
                    if (*name as usize) >= self.names.len() {
                        report(
                            out,
                            "PBC004",
                            pc,
                            format!("name index {name} outside {} name(s)", self.names.len()),
                        );
                        bad = true;
                    }
                }
                Op::Ret { src } => {
                    r.push(*src);
                    s.clear();
                }
                Op::Fail { name, .. } => {
                    s.clear();
                    if (*name as usize) >= self.names.len() {
                        report(
                            out,
                            "PBC004",
                            pc,
                            format!("name index {name} outside {} name(s)", self.names.len()),
                        );
                        bad = true;
                    }
                }
            }
            for &reg in r.iter().chain(&w) {
                if (reg as usize) >= f.regs {
                    report(
                        out,
                        "PBC001",
                        pc,
                        format!("register r{reg} outside file of {}", f.regs),
                    );
                    bad = true;
                }
            }
            // A fall-through successor past the last instruction is the
            // PBC008 case already reported above; drop it so the
            // dataflow stays in bounds.
            s.retain(|&t| t < n_ins);
            structurally_ok &= !bad;
            reads.push(r);
            writes.push(w);
            succs.push(s);
        }
        if !structurally_ok || n_ins == 0 {
            return;
        }

        // Must-be-defined forward dataflow: a register is safe to read
        // at `pc` only when every path from entry writes it first.
        // Params arrive defined; merge is set intersection.
        let words = f.regs.div_ceil(64);
        let mut entry = vec![0u64; words];
        for p in 0..f.params {
            entry[p / 64] |= 1 << (p % 64);
        }
        let mut state: Vec<Option<Vec<u64>>> = vec![None; n_ins];
        state[0] = Some(entry);
        let mut work = vec![0usize];
        let mut flagged = vec![false; n_ins];
        while let Some(pc) = work.pop() {
            let mut cur = state[pc].clone().expect("on worklist implies reachable");
            for &reg in &reads[pc] {
                let (wi, bit) = (reg as usize / 64, 1u64 << (reg as usize % 64));
                if cur[wi] & bit == 0 && !flagged[pc] {
                    flagged[pc] = true;
                    report(
                        out,
                        "PBC005",
                        pc,
                        format!("reads r{reg} before any definition on some path"),
                    );
                }
            }
            for &reg in &writes[pc] {
                cur[reg as usize / 64] |= 1 << (reg as usize % 64);
            }
            for &nx in &succs[pc] {
                let changed = match &mut state[nx] {
                    Some(old) => {
                        let mut any = false;
                        for (o, c) in old.iter_mut().zip(&cur) {
                            let meet = *o & *c;
                            any |= meet != *o;
                            *o = meet;
                        }
                        any
                    }
                    slot @ None => {
                        *slot = Some(cur.clone());
                        true
                    }
                };
                if changed {
                    work.push(nx);
                }
            }
        }
    }
}

/// Pools shared by every function of one compiled program.
#[derive(Default)]
struct Pools {
    pool: Vec<Value>,
    names: Vec<String>,
    rec_keys: Vec<Vec<String>>,
}

impl Pools {
    fn intern_value(&mut self, v: Value) -> u16 {
        if let Some(i) = self.pool.iter().position(|p| *p == v) {
            return i as u16;
        }
        self.pool.push(v);
        (self.pool.len() - 1) as u16
    }

    fn intern_name(&mut self, s: &str) -> u16 {
        if let Some(i) = self.names.iter().position(|n| n == s) {
            return i as u16;
        }
        self.names.push(s.to_string());
        (self.names.len() - 1) as u16
    }

    fn intern_keys(&mut self, keys: Vec<String>) -> u16 {
        if let Some(i) = self.rec_keys.iter().position(|k| *k == keys) {
            return i as u16;
        }
        self.rec_keys.push(keys);
        (self.rec_keys.len() - 1) as u16
    }
}

/// Compiles one function body to bytecode.
struct FnCompiler<'a> {
    consts: &'a HashMap<String, Value>,
    fn_index: &'a HashMap<&'a str, usize>,
    shared: &'a mut Pools,
    code: Vec<Op>,
    spans: Vec<Span>,
    /// Lexical scopes mapping names to registers; mirrors the
    /// interpreter's scope-stack push/pop points exactly, so a name
    /// resolves (or fails to) identically in both engines.
    scopes: Vec<Vec<(String, u16)>>,
    /// Next free register; statement boundaries reset it to reclaim
    /// temporaries, scope exits reclaim locals.
    next_reg: u32,
    max_reg: u32,
}

impl<'a> FnCompiler<'a> {
    fn compile(
        f: &FnDecl,
        consts: &'a HashMap<String, Value>,
        fn_index: &'a HashMap<&'a str, usize>,
        shared: &'a mut Pools,
    ) -> Result<CFn, LangError> {
        let mut c = FnCompiler {
            consts,
            fn_index,
            shared,
            code: Vec::new(),
            spans: Vec::new(),
            scopes: vec![f
                .params
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i as u16))
                .collect()],
            next_reg: f.params.len() as u32,
            max_reg: f.params.len() as u32,
        };
        c.block(&f.body)?;
        // Falling off the end is the interpreter's
        // "finished without `return`" error, attributed to the decl.
        let name = c.shared.intern_name(&f.name);
        c.emit(
            Op::Fail {
                kind: FailKind::NoReturn,
                name,
            },
            f.span,
        );
        if c.max_reg > u16::MAX as u32 {
            return Err(LangError::Check {
                span: f.span,
                msg: format!("function `{}` needs too many registers", f.name),
            });
        }
        Ok(CFn {
            name: f.name.clone(),
            params: f.params.len(),
            regs: c.max_reg as usize,
            code: c.code,
            spans: c.spans,
        })
    }

    fn emit(&mut self, op: Op, span: Span) -> usize {
        self.code.push(op);
        self.spans.push(span);
        self.code.len() - 1
    }

    fn alloc(&mut self) -> u16 {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        r as u16
    }

    fn resolve_local(&self, name: &str) -> Option<u16> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(k, _)| k == name).map(|&(_, r)| r))
    }

    /// Compiles a statement block inside its own lexical scope (the
    /// interpreter pushes a scope per block).
    fn block(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        let base = self.next_reg;
        self.scopes.push(Vec::new());
        for s in stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        self.next_reg = base;
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        let save = self.next_reg;
        match s {
            Stmt::Let(name, init, _) => {
                let r = self.expr_value(init)?;
                // Keep the value register alive as the binding (or pin
                // a fresh one when the init resolved to an existing
                // binding's register, which must stay independent).
                let reg = if (r as u32) >= save {
                    self.next_reg = r as u32 + 1;
                    r
                } else {
                    self.next_reg = save;
                    let dst = self.alloc();
                    self.emit(Op::Copy { dst, src: r }, s_span(s));
                    dst
                };
                self.next_reg = (reg as u32) + 1;
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .push((name.clone(), reg));
            }
            Stmt::Assign(name, e, span) => {
                let r = self.expr_value(e)?;
                match self.resolve_local(name) {
                    Some(dst) => {
                        self.emit(Op::Copy { dst, src: r }, *span);
                    }
                    None => {
                        // Constants are not assignable; the interpreter
                        // fails the same way after evaluating the rhs.
                        let n = self.shared.intern_name(name);
                        self.emit(
                            Op::Fail {
                                kind: FailKind::AssignUnbound,
                                name: n,
                            },
                            *span,
                        );
                    }
                }
                self.next_reg = save;
            }
            Stmt::Return(e, span) => {
                let r = self.expr_value(e)?;
                self.emit(Op::Ret { src: r }, *span);
                self.next_reg = save;
            }
            Stmt::If(cond, then, els, _) => {
                let c = self.cond(cond)?;
                let jf = self.emit(Op::JumpIfFalse { src: c, to: 0 }, cond.span());
                self.next_reg = save;
                self.block(then)?;
                let je = self.emit(Op::Jump { to: 0 }, cond.span());
                self.patch(jf, self.code.len() as u32);
                self.block(els)?;
                self.patch(je, self.code.len() as u32);
            }
            Stmt::While(cond, body, _) => {
                let top = self.code.len() as u32;
                let c = self.cond(cond)?;
                let jf = self.emit(Op::JumpIfFalse { src: c, to: 0 }, cond.span());
                self.next_reg = save;
                self.block(body)?;
                self.emit(Op::Jump { to: top }, cond.span());
                self.patch(jf, self.code.len() as u32);
            }
            Stmt::For(var, iter, body, span) => {
                let src = self.expr_value(iter)?;
                self.next_reg = save;
                let list = self.alloc();
                let ctr = self.alloc();
                let item = self.alloc();
                self.emit(Op::IterInit { list, src, ctr }, *span);
                let top = self.code.len() as u32;
                let next = self.emit(
                    Op::IterNext {
                        item,
                        list,
                        ctr,
                        exit: 0,
                    },
                    *span,
                );
                // The interpreter opens one scope per iteration holding
                // the loop variable, then executes the body statements
                // directly inside it.
                self.scopes.push(vec![(var.clone(), item)]);
                for st in body {
                    self.stmt(st)?;
                }
                self.scopes.pop();
                self.emit(Op::Jump { to: top }, *span);
                let end = self.code.len() as u32;
                self.patch(next, end);
                self.next_reg = save;
            }
            Stmt::Expr(e, _) => {
                self.expr_value(e)?;
                self.next_reg = save;
            }
        }
        Ok(())
    }

    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.code[at] {
            Op::Jump { to: t } | Op::JumpIfFalse { to: t, .. } | Op::IterNext { exit: t, .. } => {
                *t = to
            }
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Compiles a condition: value + bool coercion (the interpreter's
    /// `eval_bool`, with the error span on the condition expression).
    fn cond(&mut self, e: &Expr) -> Result<u16, LangError> {
        let r = self.expr_value(e)?;
        self.emit(Op::AsBool { src: r }, e.span());
        Ok(r)
    }

    /// Compiles `e`, returning the register holding its value (possibly
    /// an existing binding's register; callers must not write to it).
    fn expr_value(&mut self, e: &Expr) -> Result<u16, LangError> {
        if let Some(v) = self.fold(e) {
            let idx = self.shared.intern_value(v);
            let dst = self.alloc();
            self.emit(Op::Const { dst, idx }, e.span());
            return Ok(dst);
        }
        match e {
            // Unfoldable literals don't exist; `fold` covers them.
            Expr::Num(..) | Expr::Str(..) | Expr::Bool(..) => unreachable!("literals fold"),
            Expr::Var(name, span) => {
                if let Some(r) = self.resolve_local(name) {
                    Ok(r)
                } else {
                    // Not a local and not a constant (`fold` checked):
                    // this site always raises "undefined variable".
                    let n = self.shared.intern_name(name);
                    self.emit(
                        Op::Fail {
                            kind: FailKind::UndefVar,
                            name: n,
                        },
                        *span,
                    );
                    Ok(self.alloc())
                }
            }
            Expr::List(items, _) => {
                let base = self.next_reg as u16;
                for _ in items {
                    self.alloc();
                }
                for (i, it) in items.iter().enumerate() {
                    self.expr_into(it, base + i as u16)?;
                }
                let dst = self.alloc();
                self.emit(
                    Op::List {
                        dst,
                        base,
                        n: items.len() as u16,
                    },
                    e.span(),
                );
                Ok(dst)
            }
            Expr::Record(fields, _) => {
                let base = self.next_reg as u16;
                for _ in fields {
                    self.alloc();
                }
                for (i, (_, v)) in fields.iter().enumerate() {
                    self.expr_into(v, base + i as u16)?;
                }
                let keys = self
                    .shared
                    .intern_keys(fields.iter().map(|(k, _)| k.clone()).collect());
                let dst = self.alloc();
                self.emit(Op::Record { dst, keys, base }, e.span());
                Ok(dst)
            }
            Expr::Field(b, field, span) => {
                let base = self.expr_value(b)?;
                let name = self.shared.intern_name(field);
                let dst = self.alloc();
                self.emit(Op::Field { dst, base, name }, *span);
                Ok(dst)
            }
            Expr::Index(b, i, span) => {
                let base = self.expr_value(b)?;
                let idx = self.expr_value(i)?;
                let dst = self.alloc();
                self.emit(Op::Index { dst, base, idx }, *span);
                Ok(dst)
            }
            Expr::Call(name, args, span) => {
                let base = self.next_reg as u16;
                for _ in args {
                    self.alloc();
                }
                for (i, a) in args.iter().enumerate() {
                    self.expr_into(a, base + i as u16)?;
                }
                let dst = self.alloc();
                let n = args.len() as u16;
                match self.fn_index.get(name.as_str()) {
                    Some(&fi) => {
                        self.emit(
                            Op::CallFn {
                                dst,
                                f: fi as u16,
                                base,
                                n,
                            },
                            *span,
                        );
                    }
                    None => {
                        let ni = self.shared.intern_name(name);
                        self.emit(
                            Op::CallBuiltin {
                                dst,
                                name: ni,
                                base,
                                n,
                            },
                            *span,
                        );
                    }
                }
                Ok(dst)
            }
            Expr::Unary(op, inner, span) => {
                let src = self.expr_value(inner)?;
                let dst = self.alloc();
                match op {
                    UnOp::Neg => self.emit(Op::Neg { dst, src }, *span),
                    UnOp::Not => self.emit(Op::Not { dst, src }, *span),
                };
                Ok(dst)
            }
            Expr::Binary(op @ (BinOp::And | BinOp::Or), l, r, _) => {
                // Short-circuit: the lhs bool is the result unless
                // evaluation must continue into the rhs.
                let dst = self.alloc();
                self.expr_into(l, dst)?;
                self.emit(Op::AsBool { src: dst }, l.span());
                let j = match op {
                    BinOp::And => self.emit(Op::JumpIfFalse { src: dst, to: 0 }, l.span()),
                    _ => {
                        // `||`: skip the rhs when the lhs is true.
                        self.emit(Op::Not { dst, src: dst }, l.span());
                        let j = self.emit(Op::JumpIfFalse { src: dst, to: 0 }, l.span());
                        self.emit(Op::Not { dst, src: dst }, l.span());
                        j
                    }
                };
                self.expr_into(r, dst)?;
                self.emit(Op::AsBool { src: dst }, r.span());
                let end = self.code.len() as u32;
                self.patch(j, end);
                if matches!(op, BinOp::Or) {
                    // The skip path left `dst` negated; restore it.
                    // Reached only via the jump, whose target points at
                    // this un-negation.
                    self.patch(j, end);
                    self.emit(Op::Jump { to: end + 2 }, l.span());
                    self.patch(j, self.code.len() as u32);
                    self.emit(Op::Not { dst, src: dst }, l.span());
                }
                Ok(dst)
            }
            Expr::Binary(op, l, r, span) => {
                let lhs = self.expr_value(l)?;
                let rhs = self.expr_value(r)?;
                let dst = self.alloc();
                self.emit(
                    Op::Bin {
                        op: *op,
                        dst,
                        lhs,
                        rhs,
                    },
                    *span,
                );
                Ok(dst)
            }
        }
    }

    /// Compiles `e` and ensures the value lands in `dst`.
    fn expr_into(&mut self, e: &Expr, dst: u16) -> Result<(), LangError> {
        let save = self.next_reg;
        let r = self.expr_value(e)?;
        if r != dst {
            self.emit(Op::Copy { dst, src: r }, e.span());
        }
        self.next_reg = save;
        Ok(())
    }

    /// Constant-folds a workload-independent subexpression, returning
    /// its value. Conservative: anything that could error at runtime
    /// (type mismatch, bad index, missing field) returns `None` so the
    /// bytecode reproduces the error. Locals never fold — only
    /// literals, `const` references and pure operators over them.
    fn fold(&self, e: &Expr) -> Option<Value> {
        match e {
            Expr::Num(n, _) => Some(Value::num(*n)),
            Expr::Str(s, _) => Some(Value::str(s.clone())),
            Expr::Bool(b, _) => Some(Value::bool(*b)),
            Expr::Var(name, _) => {
                if self.resolve_local(name).is_some() {
                    None
                } else {
                    self.consts.get(name).cloned()
                }
            }
            Expr::List(items, _) => Some(Value::list(
                items.iter().map(|i| self.fold(i)).collect::<Option<_>>()?,
            )),
            Expr::Record(fields, _) => Some(Value::record_owned(
                fields
                    .iter()
                    .map(|(k, v)| Some((k.clone(), self.fold(v)?)))
                    .collect::<Option<Vec<_>>>()?,
            )),
            Expr::Field(b, field, _) => self.fold(b)?.field(field).cloned(),
            Expr::Index(b, i, _) => {
                let list = self.fold(b)?;
                let list = list.as_list()?;
                let n = self.fold(i)?.as_num()?;
                if n < 0.0 || n.fract() != 0.0 || (n as usize) >= list.len() {
                    return None;
                }
                Some(list[n as usize].clone())
            }
            Expr::Call(name, args, span) => {
                // User functions may recurse or diverge: never folded.
                if self.fn_index.contains_key(name.as_str()) || !builtins::is_builtin(name) {
                    return None;
                }
                let vals: Vec<Value> = args.iter().map(|a| self.fold(a)).collect::<Option<_>>()?;
                builtins::call(name, &vals, *span).ok()
            }
            Expr::Unary(op, inner, _) => {
                let v = self.fold(inner)?;
                match op {
                    UnOp::Neg => Some(Value::num(-v.as_num()?)),
                    UnOp::Not => Some(Value::bool(!v.as_bool()?)),
                }
            }
            Expr::Binary(op, l, r, _) => {
                let lv = self.fold(l)?;
                if matches!(op, BinOp::And | BinOp::Or) {
                    let lb = lv.as_bool()?;
                    return match (op, lb) {
                        (BinOp::And, false) => Some(Value::bool(false)),
                        (BinOp::Or, true) => Some(Value::bool(true)),
                        _ => Some(Value::bool(self.fold(r)?.as_bool()?)),
                    };
                }
                let rv = self.fold(r)?;
                if matches!(op, BinOp::Eq | BinOp::Ne) {
                    let eq = lv == rv;
                    return Some(Value::bool(if *op == BinOp::Eq { eq } else { !eq }));
                }
                let (a, b) = (lv.as_num()?, rv.as_num()?);
                Some(match op {
                    BinOp::Add => Value::num(a + b),
                    BinOp::Sub => Value::num(a - b),
                    BinOp::Mul => Value::num(a * b),
                    BinOp::Div => Value::num(a / b),
                    BinOp::Rem => Value::num(a % b),
                    BinOp::Lt => Value::bool(a < b),
                    BinOp::Le => Value::bool(a <= b),
                    BinOp::Gt => Value::bool(a > b),
                    BinOp::Ge => Value::bool(a >= b),
                    _ => unreachable!("handled above"),
                })
            }
        }
    }
}

fn s_span(s: &Stmt) -> Span {
    match s {
        Stmt::Let(_, _, sp)
        | Stmt::Assign(_, _, sp)
        | Stmt::Return(_, sp)
        | Stmt::If(_, _, _, sp)
        | Stmt::For(_, _, _, sp)
        | Stmt::While(_, _, sp)
        | Stmt::Expr(_, sp) => *sp,
    }
}

/// One VM execution (counters shared across nested calls).
struct Vm<'p> {
    prog: &'p CompiledProgram,
    limits: Limits,
    steps: u64,
    depth: u32,
}

impl Vm<'_> {
    fn run_fn(&mut self, fi: usize, args: Vec<Value>, call_span: Span) -> Result<Value, LangError> {
        let f = &self.prog.funcs[fi];
        if args.len() != f.params {
            return Err(LangError::runtime(
                call_span,
                format!(
                    "`{}` expects {} argument(s), got {}",
                    f.name,
                    f.params,
                    args.len()
                ),
            ));
        }
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            self.depth -= 1;
            return Err(LangError::LimitExceeded(format!(
                "call depth {} exceeded in `{}`",
                self.limits.max_depth, f.name
            )));
        }
        let out = self.exec(f, args);
        self.depth -= 1;
        out
    }

    fn exec(&mut self, f: &CFn, args: Vec<Value>) -> Result<Value, LangError> {
        let mut regs: Vec<Value> = args;
        regs.resize(f.regs, Value::bool(false));
        let mut pc = 0usize;
        let err = |pc: usize, msg: String| LangError::runtime(f.spans[pc], msg);
        loop {
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(LangError::LimitExceeded(format!(
                    "step limit {} exceeded at {}",
                    self.limits.max_steps, f.spans[pc]
                )));
            }
            match &f.code[pc] {
                Op::Const { dst, idx } => {
                    regs[*dst as usize] = self.prog.pool[*idx as usize].clone();
                }
                Op::Copy { dst, src } => regs[*dst as usize] = regs[*src as usize].clone(),
                Op::List { dst, base, n } => {
                    let b = *base as usize;
                    regs[*dst as usize] = Value::list(regs[b..b + *n as usize].to_vec());
                }
                Op::Record { dst, keys, base } => {
                    let ks = &self.prog.rec_keys[*keys as usize];
                    let b = *base as usize;
                    regs[*dst as usize] = Value::record_owned(
                        ks.iter()
                            .enumerate()
                            .map(|(i, k)| (k.clone(), regs[b + i].clone())),
                    );
                }
                Op::Field { dst, base, name } => {
                    let b = &regs[*base as usize];
                    let field = &self.prog.names[*name as usize];
                    let v = b.field(field).cloned().ok_or_else(|| {
                        err(pc, format!("{} has no field `{field}`", b.type_name()))
                    })?;
                    regs[*dst as usize] = v;
                }
                Op::Index { dst, base, idx } => {
                    let b = &regs[*base as usize];
                    let i = &regs[*idx as usize];
                    let list = b
                        .as_list()
                        .ok_or_else(|| err(pc, format!("cannot index into {}", b.type_name())))?;
                    let n = i.as_num().ok_or_else(|| {
                        err(pc, format!("index must be a number, got {}", i.type_name()))
                    })?;
                    if n < 0.0 || n.fract() != 0.0 || (n as usize) >= list.len() {
                        return Err(err(
                            pc,
                            format!("index {n} out of bounds for list of length {}", list.len()),
                        ));
                    }
                    regs[*dst as usize] = list[n as usize].clone();
                }
                Op::Neg { dst, src } => {
                    let v = &regs[*src as usize];
                    let n = v
                        .as_num()
                        .ok_or_else(|| err(pc, format!("cannot negate {}", v.type_name())))?;
                    regs[*dst as usize] = Value::num(-n);
                }
                Op::Not { dst, src } => {
                    let v = &regs[*src as usize];
                    let b = v
                        .as_bool()
                        .ok_or_else(|| err(pc, format!("cannot apply `!` to {}", v.type_name())))?;
                    regs[*dst as usize] = Value::bool(!b);
                }
                Op::Bin { op, dst, lhs, rhs } => {
                    let lv = &regs[*lhs as usize];
                    let rv = &regs[*rhs as usize];
                    let v = if matches!(op, BinOp::Eq | BinOp::Ne) {
                        let eq = lv == rv;
                        Value::bool(if *op == BinOp::Eq { eq } else { !eq })
                    } else {
                        let (a, b) = match (lv.as_num(), rv.as_num()) {
                            (Some(a), Some(b)) => (a, b),
                            _ => {
                                return Err(err(
                                    pc,
                                    format!(
                                        "numeric operator on {} and {}",
                                        lv.type_name(),
                                        rv.type_name()
                                    ),
                                ))
                            }
                        };
                        match op {
                            BinOp::Add => Value::num(a + b),
                            BinOp::Sub => Value::num(a - b),
                            BinOp::Mul => Value::num(a * b),
                            BinOp::Div => Value::num(a / b),
                            BinOp::Rem => Value::num(a % b),
                            BinOp::Lt => Value::bool(a < b),
                            BinOp::Le => Value::bool(a <= b),
                            BinOp::Gt => Value::bool(a > b),
                            BinOp::Ge => Value::bool(a >= b),
                            BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or => {
                                unreachable!("compiled separately")
                            }
                        }
                    };
                    regs[*dst as usize] = v;
                }
                Op::AsBool { src } => {
                    let v = &regs[*src as usize];
                    if v.truthy().is_none() {
                        return Err(err(
                            pc,
                            format!("condition must be a bool, got {}", v.type_name()),
                        ));
                    }
                }
                Op::Jump { to } => {
                    pc = *to as usize;
                    continue;
                }
                Op::JumpIfFalse { src, to } => {
                    if regs[*src as usize] == Value::bool(false) {
                        pc = *to as usize;
                        continue;
                    }
                }
                Op::IterInit { list, src, ctr } => {
                    let v = &regs[*src as usize];
                    if v.as_list().is_none() {
                        return Err(err(
                            pc,
                            format!("`for` needs a list, got {}", v.type_name()),
                        ));
                    }
                    // Snapshot semantics: the interpreter clones the
                    // list before iterating; values are immutable, so
                    // holding the same Rc is the same snapshot.
                    regs[*list as usize] = v.clone();
                    regs[*ctr as usize] = Value::num(0.0);
                }
                Op::IterNext {
                    item,
                    list,
                    ctr,
                    exit,
                } => {
                    let i = regs[*ctr as usize].as_num().expect("counter is numeric") as usize;
                    let items = regs[*list as usize].as_list().expect("checked by IterInit");
                    if i >= items.len() {
                        pc = *exit as usize;
                        continue;
                    }
                    regs[*item as usize] = items[i].clone();
                    regs[*ctr as usize] = Value::num((i + 1) as f64);
                }
                Op::CallFn {
                    dst,
                    f: fi,
                    base,
                    n,
                } => {
                    let b = *base as usize;
                    let args = regs[b..b + *n as usize].to_vec();
                    let v = self.run_fn(*fi as usize, args, f.spans[pc])?;
                    regs[*dst as usize] = v;
                }
                Op::CallBuiltin { dst, name, base, n } => {
                    let b = *base as usize;
                    let v = builtins::call(
                        &self.prog.names[*name as usize],
                        &regs[b..b + *n as usize],
                        f.spans[pc],
                    )?;
                    regs[*dst as usize] = v;
                }
                Op::Ret { src } => return Ok(regs[*src as usize].clone()),
                Op::Fail { kind, name } => {
                    let n = &self.prog.names[*name as usize];
                    return Err(err(
                        pc,
                        match kind {
                            FailKind::UndefVar => format!("undefined variable `{n}`"),
                            FailKind::AssignUnbound => {
                                format!("assignment to unbound variable `{n}`")
                            }
                            FailKind::NoReturn => {
                                format!("function `{n}` finished without `return`")
                            }
                        },
                    ));
                }
            }
            pc += 1;
        }
    }
}

/// A parsed program paired with (optionally) its bytecode-compiled
/// form: the engine-choice façade interface adapters hold.
///
/// Calls route to the VM when compiled, to the tree-walking
/// interpreter otherwise; both produce identical values and identical
/// error messages (enforced by the differential suite in
/// `tests/vm_props.rs`), so callers choose purely on cost.
///
/// # Examples
///
/// ```
/// use perf_iface_lang::vm::Executable;
/// use perf_iface_lang::{Program, Value};
///
/// let prog = Program::parse("fn f(x) { return x * 2; }").unwrap();
/// let exec = Executable::compiled(prog).unwrap();
/// let out = exec.call("f", &[Value::num(21.0)]).unwrap();
/// assert_eq!(out.as_num().unwrap(), 42.0);
/// ```
pub struct Executable {
    prog: crate::Program,
    vm: Option<CompiledProgram>,
}

impl Executable {
    /// Wraps a program for tree-walk evaluation.
    pub fn interpreted(prog: crate::Program) -> Executable {
        Executable { prog, vm: None }
    }

    /// Compiles the program to bytecode once; calls run the VM.
    pub fn compiled(prog: crate::Program) -> Result<Executable, LangError> {
        let vm = CompiledProgram::compile(&prog)?;
        Ok(Executable { prog, vm: Some(vm) })
    }

    /// Whether calls run the bytecode VM.
    pub fn is_compiled(&self) -> bool {
        self.vm.is_some()
    }

    /// The wrapped program (source, AST, metadata).
    pub fn program(&self) -> &crate::Program {
        &self.prog
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        self.prog.source()
    }

    /// Returns `true` if the program defines function `name`.
    pub fn defines(&self, name: &str) -> bool {
        self.prog.defines(name)
    }

    /// Calls function `name` with `args` under default limits.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, LangError> {
        match &self.vm {
            Some(vm) => vm.call(name, args),
            None => self.prog.call(name, args),
        }
    }

    /// Calls function `name` with `args` under custom limits.
    pub fn call_with_limits(
        &self,
        name: &str,
        args: &[Value],
        limits: Limits,
    ) -> Result<Value, LangError> {
        match &self.vm {
            Some(vm) => vm.call_with_limits(name, args, limits),
            None => self.prog.call_with_limits(name, args, limits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn both(
        src: &str,
        f: &str,
        args: &[Value],
    ) -> (Result<Value, LangError>, Result<Value, LangError>) {
        let p = Program::parse(src).unwrap();
        let vm = CompiledProgram::compile(&p).unwrap();
        (p.call(f, args), vm.call(f, args))
    }

    fn assert_same(src: &str, f: &str, args: &[Value]) {
        let (i, v) = both(src, f, args);
        match (&i, &v) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "value divergence on {src}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "error divergence on {src}")
            }
            _ => panic!("outcome divergence on {src}: interp={i:?} vm={v:?}"),
        }
    }

    #[test]
    fn arithmetic_and_consts_fold() {
        let p = Program::parse("const K = 6; fn f(x) { return (K * 7 + 2) + x; }").unwrap();
        let vm = CompiledProgram::compile(&p).unwrap();
        assert_eq!(
            vm.call("f", &[Value::num(1.0)]).unwrap().as_num(),
            Some(45.0)
        );
        // The folded subexpression is a single pool constant: the
        // function body is Const, Bin, Ret (+ trailing Fail).
        assert_eq!(vm.funcs[0].code.len(), 4);
    }

    #[test]
    fn control_flow_matches_interp() {
        let src = "fn f(n) {\n\
                   let acc = 0;\n\
                   let i = 0;\n\
                   while i < n {\n\
                     if i % 2 == 0 { acc = acc + i; } else { acc = acc - 1; }\n\
                     i = i + 1;\n\
                   }\n\
                   for x in [10, 20, 30] { acc = acc + x; }\n\
                   return acc;\n\
                   }";
        for n in [0.0, 1.0, 2.0, 9.0] {
            assert_same(src, "f", &[Value::num(n)]);
        }
    }

    #[test]
    fn short_circuit_and_or() {
        let src = "fn f(x) { return (x > 0 && 10 / x > 2) || x == 0; }";
        for x in [-1.0, 0.0, 1.0, 4.0, 10.0] {
            assert_same(src, "f", &[Value::num(x)]);
        }
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // The rhs would be a type error; short-circuit must skip it.
        let src = "fn f() { return false && \"no\"; }";
        assert_same(src, "f", &[]);
        let src = "fn g() { return true || \"no\"; }";
        assert_same(src, "g", &[]);
    }

    #[test]
    fn records_lists_builtins() {
        let src = "fn f(r) {\n\
                   let xs = [r.a, r.b, r.a + r.b];\n\
                   return { s: sum(xs), m: max(r.a, r.b, len(xs)), p: pow(2, r.a) };\n\
                   }";
        let arg = Value::record([("a", Value::num(3.0)), ("b", Value::num(5.0))]);
        assert_same(src, "f", &[arg]);
    }

    #[test]
    fn recursion_and_depth_limit() {
        let src = "fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); }";
        assert_same(src, "fib", &[Value::num(10.0)]);
        let p = Program::parse("fn f(n) { return f(n + 1); }").unwrap();
        let vm = CompiledProgram::compile(&p).unwrap();
        assert!(matches!(
            vm.call("f", &[Value::num(0.0)]),
            Err(LangError::LimitExceeded(_))
        ));
    }

    #[test]
    fn runtime_errors_match_interp() {
        for (src, f, args) in [
            ("fn f(x) { return x.nope; }", "f", vec![Value::num(1.0)]),
            (
                "fn f(x) { return x[3]; }",
                "f",
                vec![Value::list(vec![Value::num(1.0)])],
            ),
            ("fn f(x) { return x + \"s\"; }", "f", vec![Value::num(1.0)]),
            (
                "fn f(x) { if x { return 1; } return 2; }",
                "f",
                vec![Value::num(1.0)],
            ),
            (
                "fn f(x) { for i in x { return i; } return 0; }",
                "f",
                vec![Value::num(1.0)],
            ),
            ("fn f() { let y = 1; return 1 / 0; }", "f", vec![]),
            ("fn f(x) { return -x; }", "f", vec![Value::bool(true)]),
            ("fn f(x) { x = 1; return x; }", "f", vec![Value::num(0.0)]),
        ] {
            assert_same(src, f, &args);
        }
    }

    #[test]
    fn non_finite_result_rejected_like_interp() {
        assert_same("fn f() { return 1 / 0; }", "f", &[]);
        assert_same("fn f() { return [1, 1 / 0]; }", "f", &[]);
    }

    #[test]
    fn no_return_falls_through_identically() {
        assert_same("fn f(x) { let y = x; }", "f", &[Value::num(1.0)]);
    }

    #[test]
    fn shadowing_and_scoping() {
        let src = "const C = 5;\n\
                   fn f(x) {\n\
                   let c = C + 1;\n\
                   if x > 0 { let c = 100; x = x + c; }\n\
                   return x + c + C;\n\
                   }";
        for x in [-1.0, 0.0, 3.0] {
            assert_same(src, "f", &[Value::num(x)]);
        }
    }

    #[test]
    fn stats_mention_pool() {
        let p = Program::parse("const K = 2; fn f() { return K * 3; }").unwrap();
        let vm = CompiledProgram::compile(&p).unwrap();
        assert!(vm.stats().contains("pool"));
    }

    // -- bytecode verifier (PBC) mutation corpus ----------------------
    //
    // Op/CFn are private, so seeded-defect coverage for the verifier
    // lives here: compile a clean program, corrupt one instruction, and
    // assert exactly the intended PBC code fires. Together with the
    // shipped-artifact sweep in `repro --xcheck` this gives the
    // verifier the same fires-on-defects / silent-on-clean contract as
    // the other lint passes.

    /// A program whose bytecode exercises every op class: calls, loops,
    /// records, lists, branches, short-circuits and builtins.
    const RICH: &str = "\
        const K = 3;\n\
        fn helper(a, b) { return a * b + K; }\n\
        fn f(w) {\n\
            let t = 0;\n\
            for x in w.items {\n\
                if x.kind > 0 && x.cost < 100 { t = t + helper(x.cost, 2); }\n\
            }\n\
            let r = { total: t, tail: ceil(t / 7) };\n\
            return r.total + r.tail + len(w.items);\n\
        }";

    fn compiled(src: &str) -> CompiledProgram {
        CompiledProgram::compile(&Program::parse(src).unwrap()).unwrap()
    }

    fn find_op(vm: &CompiledProgram, fi: usize, pred: impl Fn(&Op) -> bool) -> usize {
        vm.funcs[fi]
            .code
            .iter()
            .position(pred)
            .expect("expected op shape present")
    }

    #[test]
    fn verifier_accepts_clean_compiles() {
        for src in [
            RICH,
            "fn f() { return 1; }",
            "fn g(x) { while x > 0 { x = x - 1; } return x; }",
        ] {
            let vm = compiled(src);
            let ds = vm.verify();
            assert!(ds.items().is_empty(), "{}", ds.render());
        }
    }

    #[test]
    fn pbc001_register_out_of_file() {
        let mut vm = compiled(RICH);
        let fi = vm.by_name["f"];
        let bad = vm.funcs[fi].regs as u16;
        let pc = find_op(&vm, fi, |o| matches!(o, Op::Bin { .. }));
        if let Op::Bin { lhs, .. } = &mut vm.funcs[fi].code[pc] {
            *lhs = bad;
        }
        assert!(vm.verify().has_code("PBC001"), "{}", vm.verify().render());
    }

    #[test]
    fn pbc002_jump_target_out_of_bounds() {
        let mut vm = compiled(RICH);
        let fi = vm.by_name["f"];
        let pc = find_op(&vm, fi, |o| matches!(o, Op::JumpIfFalse { .. }));
        if let Op::JumpIfFalse { to, .. } = &mut vm.funcs[fi].code[pc] {
            *to = 9999;
        }
        assert!(vm.verify().has_code("PBC002"), "{}", vm.verify().render());
    }

    #[test]
    fn pbc003_pool_index_out_of_bounds() {
        let mut vm = compiled(RICH);
        let fi = vm.by_name["f"];
        let pool = vm.pool.len() as u16;
        let pc = find_op(&vm, fi, |o| matches!(o, Op::Const { .. }));
        if let Op::Const { idx, .. } = &mut vm.funcs[fi].code[pc] {
            *idx = pool;
        }
        assert!(vm.verify().has_code("PBC003"), "{}", vm.verify().render());
    }

    #[test]
    fn pbc004_name_and_key_indices_out_of_bounds() {
        let mut vm = compiled(RICH);
        let fi = vm.by_name["f"];
        let names = vm.names.len() as u16;
        let pc = find_op(&vm, fi, |o| matches!(o, Op::Field { .. }));
        if let Op::Field { name, .. } = &mut vm.funcs[fi].code[pc] {
            *name = names;
        }
        assert!(vm.verify().has_code("PBC004"), "{}", vm.verify().render());

        let mut vm = compiled(RICH);
        let fi = vm.by_name["f"];
        let nkeys = vm.rec_keys.len() as u16;
        let pc = find_op(&vm, fi, |o| matches!(o, Op::Record { .. }));
        if let Op::Record { keys, .. } = &mut vm.funcs[fi].code[pc] {
            *keys = nkeys;
        }
        assert!(vm.verify().has_code("PBC004"), "{}", vm.verify().render());
    }

    #[test]
    fn pbc005_read_before_definition() {
        // `let t = 0;` materializes as a Const into t's register; wipe
        // the initialization by retargeting it to a scratch register,
        // so the later `t + ...` reads an undefined register.
        let mut vm = compiled("fn f(x) { let t = 7; return t + x; }");
        let fi = vm.by_name["f"];
        let regs = vm.funcs[fi].regs as u16;
        let pc = find_op(&vm, fi, |o| matches!(o, Op::Const { .. }));
        vm.funcs[fi].regs += 1;
        if let Op::Const { dst, .. } = &mut vm.funcs[fi].code[pc] {
            *dst = regs;
        }
        assert!(vm.verify().has_code("PBC005"), "{}", vm.verify().render());
    }

    #[test]
    fn pbc005_branch_local_definition_does_not_reach_join() {
        // Writing only on the taken branch must not count as defined
        // after the join: reroute the else-branch write elsewhere.
        let mut vm =
            compiled("fn f(x) { let t = 0; if x > 0 { t = 1; } else { t = 2; } return t; }");
        let fi = vm.by_name["f"];
        let regs = vm.funcs[fi].regs as u16;
        vm.funcs[fi].regs += 1;
        // Every write into t: the initial Const plus both branch
        // Consts+Copies. Divert the initial one and one branch's copy.
        let pc = find_op(&vm, fi, |o| matches!(o, Op::Const { .. }));
        if let Op::Const { dst, .. } = &mut vm.funcs[fi].code[pc] {
            *dst = regs;
        }
        let ds = vm.verify();
        assert!(
            ds.has_code("PBC005") || ds.items().is_empty(),
            "{}",
            ds.render()
        );
        // The initial definition was load-bearing only if neither
        // branch redefines t before the return; with both branches
        // assigning, the program stays clean — so also check the
        // stronger mutation: divert one branch's Copy too.
        let copies: Vec<usize> = vm.funcs[fi]
            .code
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, Op::Copy { .. }))
            .map(|(i, _)| i)
            .collect();
        assert!(!copies.is_empty());
        if let Op::Copy { dst, .. } = &mut vm.funcs[fi].code[copies[0]] {
            *dst = regs;
        }
        assert!(vm.verify().has_code("PBC005"), "{}", vm.verify().render());
    }

    #[test]
    fn pbc006_call_arity_and_target() {
        let mut vm = compiled(RICH);
        let fi = vm.by_name["f"];
        let pc = find_op(&vm, fi, |o| matches!(o, Op::CallFn { .. }));
        if let Op::CallFn { n, .. } = &mut vm.funcs[fi].code[pc] {
            *n -= 1;
        }
        assert!(vm.verify().has_code("PBC006"), "{}", vm.verify().render());

        let mut vm = compiled(RICH);
        let fi = vm.by_name["f"];
        let nfuncs = vm.funcs.len() as u16;
        let pc = find_op(&vm, fi, |o| matches!(o, Op::CallFn { .. }));
        if let Op::CallFn { f, .. } = &mut vm.funcs[fi].code[pc] {
            *f = nfuncs;
        }
        assert!(vm.verify().has_code("PBC006"), "{}", vm.verify().render());
    }

    #[test]
    fn pbc007_loop_header_integrity() {
        // Remove the IterInit pairing by swapping it for a Copy.
        let mut vm = compiled(RICH);
        let fi = vm.by_name["f"];
        let pc = find_op(&vm, fi, |o| matches!(o, Op::IterInit { .. }));
        if let Op::IterInit { list, src, .. } = vm.funcs[fi].code[pc] {
            vm.funcs[fi].code[pc] = Op::Copy { dst: list, src };
        }
        assert!(vm.verify().has_code("PBC007"), "{}", vm.verify().render());

        // Break the back edge: retarget the loop-closing jump.
        let mut vm = compiled(RICH);
        let fi = vm.by_name["f"];
        let next = find_op(&vm, fi, |o| matches!(o, Op::IterNext { .. }));
        let back = find_op(
            &vm,
            fi,
            |o| matches!(o, Op::Jump { to } if *to as usize == next),
        );
        if let Op::Jump { to } = &mut vm.funcs[fi].code[back] {
            *to += 1;
        }
        assert!(vm.verify().has_code("PBC007"), "{}", vm.verify().render());
    }

    #[test]
    fn pbc008_missing_terminator() {
        let mut vm = compiled("fn f(x) { return x; }");
        let fi = vm.by_name["f"];
        // Drop the trailing fall-off-end Fail.
        assert!(matches!(vm.funcs[fi].code.last(), Some(Op::Fail { .. })));
        vm.funcs[fi].code.pop();
        vm.funcs[fi].spans.pop();
        let ds = vm.verify();
        // Popping the Fail leaves Ret last — still a terminator — so
        // pop again to expose a genuine fall-off.
        assert!(ds.items().is_empty(), "{}", ds.render());
        vm.funcs[fi].code.pop();
        vm.funcs[fi].spans.pop();
        assert!(vm.verify().has_code("PBC008"), "{}", vm.verify().render());
    }

    #[test]
    fn verifier_accepts_unknown_builtin_calls() {
        // Undefined function calls are legitimate bytecode: they defer
        // the interpreter's runtime error. (`Program::parse` would
        // reject the name at check time, so compile the raw AST the way
        // the differential suite does.)
        let ast =
            crate::parser::parse(&crate::lexer::lex("fn f() { return mystery(1); }").unwrap())
                .unwrap();
        let vm = CompiledProgram::compile_ast(&ast).unwrap();
        assert!(vm.verify().items().is_empty());
    }

    #[test]
    fn bytecode_codes_table_is_consistent() {
        let mut seen = std::collections::HashSet::new();
        for (code, desc) in BYTECODE_CODES {
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(code.starts_with("PBC"));
            assert!(!desc.is_empty());
        }
    }
}
