//! `perf-lint` static analyses for interface programs.
//!
//! A PIL program shipped as a performance interface is a contract about
//! numbers: it claims to map workloads to latencies. This module audits
//! the contract with a small abstract interpreter over intervals plus a
//! concrete monotonicity probe, reporting through the shared
//! [`perf_core::diag`] model:
//!
//! * `PIL101` — division (or modulo) by a provably-zero divisor;
//! * `PIL102` — dead branch: an `if` condition that is constantly
//!   true/false, so one arm can never run;
//! * `PIL103` — unreachable statements after a `return`;
//! * `PIL104` — a `while` loop whose condition is provably true and
//!   whose body contains no `return`: it cannot terminate;
//! * `PIL105` — a `latency_*`/`min_latency*`/`max_latency*` function
//!   whose result is provably negative for every workload;
//! * `PIL107` — constant arithmetic that overflows finite operands to
//!   infinity (or NaN);
//! * `PIL108` — a latency function that *decreases* as a size-like
//!   workload field grows, found by concretely probing the function on
//!   a geometric grid.
//!
//! The interval domain is deliberately coarse: workload parameters and
//! their fields abstract to "any non-negative number" when used
//! arithmetically (performance inputs are sizes and counts), and only
//! *provable* facts are reported, so a clean bill of health on the
//! shipped interfaces stays meaningful.
//!
//! The same interpreter doubles as a **bound extractor** for the
//! cross-tier consistency pass (`perf-xcheck`): [`bound_fn`] evaluates
//! a function with its workload parameter bound to a declared *box*
//! ([`BoxVal`] — per-feature intervals, possibly nested records and
//! bounded-length lists) and returns a guaranteed `[lo, hi]` enclosure
//! of every value the function can return inside that box. Simple
//! accumulation loops (`for x in w.items { acc = acc + cost(x); }`)
//! are summarized as `len * delta` instead of widened, so list-shaped
//! workloads still yield finite bounds.

use crate::ast::{BinOp, Expr, FnDecl, Program, Stmt, UnOp};
use crate::error::Span;
use crate::interp::{eval_consts, Interp, Limits};
use crate::value::Value;
use perf_core::diag::{Diagnostic, Diagnostics};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Every PIL lint code (checker `PIL0xx` and analyzer `PIL1xx`) with a
/// one-line description, for docs and tooling.
pub const CODES: &[(&str, &str)] = &[
    ("PIL001", "duplicate function definition"),
    ("PIL002", "function shadows a builtin"),
    ("PIL003", "duplicate parameter name"),
    ("PIL004", "duplicate constant definition"),
    ("PIL005", "reference to an undefined variable"),
    ("PIL006", "call to an undefined function"),
    ("PIL007", "call with the wrong number of arguments"),
    (
        "PIL008",
        "assignment to a variable that was never bound with `let`",
    ),
    ("PIL009", "unused function parameter"),
    ("PIL010", "unused `let` binding"),
    ("PIL011", "file cannot be read"),
    ("PIL012", "syntax error: source failed to lex or parse"),
    ("PIL101", "division or modulo by a provably-zero divisor"),
    ("PIL102", "dead branch: `if` condition is constant"),
    ("PIL103", "unreachable statement after `return`"),
    ("PIL104", "`while` loop provably never terminates"),
    (
        "PIL105",
        "latency function returns a provably-negative value",
    ),
    (
        "PIL107",
        "constant arithmetic overflows finite operands to infinity",
    ),
    (
        "PIL108",
        "latency decreases as a size-like workload field grows",
    ),
];

/// How deep user-function calls are inlined before giving up on
/// precision (recursion is cut immediately).
const INLINE_DEPTH: usize = 8;

/// Geometric probe grid for the monotonicity check.
const PROBES: [f64; 8] = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0];

/// Value every non-probed scalar field is pinned to while probing.
const FIXED_FIELD: f64 = 64.0;

/// Lints PIL source text end to end: lex/parse failures become a
/// `PIL012` diagnostic, and a well-formed program goes through both the
/// accumulating checker ([`crate::check::diagnostics`]) and the
/// analyses in [`lint`]. Every finding carries `origin` as its file
/// label. This is the one-call entry point used by the accelerator
/// crates' `interface::lint()` audits.
pub fn lint_src(origin: &str, src: &str) -> Diagnostics {
    let mut out = Diagnostics::new();
    let ast = match crate::lexer::lex(src).and_then(|t| crate::parser::parse(&t)) {
        Ok(ast) => ast,
        Err(e) => {
            let span = match &e {
                crate::error::LangError::Lex { span, .. }
                | crate::error::LangError::Parse { span, .. } => *span,
                _ => Span::default(),
            };
            out.push(
                Diagnostic::error("PIL012", e.to_string())
                    .with_origin(origin)
                    .with_pos(span.line, span.col),
            );
            return out;
        }
    };
    out.merge(crate::check::diagnostics(&ast));
    out.merge(lint(&ast));
    out.set_origin(origin);
    out.sort();
    out
}

/// Runs every static analysis on `prog` (assumed parsed; name errors
/// are tolerated — unknown names abstract to "any value").
pub fn lint(prog: &Program) -> Diagnostics {
    let mut out = Diagnostics::new();
    let consts = const_env(prog);
    for f in &prog.functions {
        let mut az = Analyzer {
            prog,
            consts: &consts,
            out: &mut out,
            report: true,
            stack: vec![f.name.clone()],
        };
        let env: Env = f.params.iter().map(|p| (p.clone(), AbsVal::Any)).collect();
        let ret = az.run_fn(f, env);
        unreachable_after_return(&f.body, &mut out);
        if is_latency_fn(&f.name) {
            if let AbsVal::Num(iv) = ret {
                if iv.hi < 0.0 {
                    out.push(
                        Diagnostic::error(
                            "PIL105",
                            format!(
                                "`{}` returns a negative latency for every workload (at most {})",
                                f.name, iv.hi
                            ),
                        )
                        .with_pos(f.span.line, f.span.col)
                        .with_at(format!("fn `{}`", f.name))
                        .with_note(
                            "workload fields are assumed non-negative; cycles cannot be negative",
                        ),
                    );
                }
            }
        }
    }
    monotonicity(prog, &mut out);
    out.sort();
    out
}

fn is_latency_fn(name: &str) -> bool {
    name.starts_with("latency_")
        || name.starts_with("min_latency")
        || name.starts_with("max_latency")
}

/// Evaluates the program's constants concretely (the runtime does the
/// same before any call); failures simply leave the name abstract.
fn const_env(prog: &Program) -> HashMap<String, AbsVal> {
    match eval_consts(prog, Limits::default()) {
        Ok(vals) => vals.into_iter().map(|(k, v)| (k, AbsVal::of(&v))).collect(),
        Err(_) => prog
            .consts
            .iter()
            .map(|c| (c.name.clone(), AbsVal::Any))
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------

/// A closed numeric interval; bounds may be infinite.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// The whole real line: `[-inf, +inf]`.
    pub const FULL: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };
    /// The non-negative half-line: `[0, +inf]`.
    pub const NONNEG: Interval = Interval {
        lo: 0.0,
        hi: f64::INFINITY,
    };

    /// Builds `[lo, hi]`; callers are trusted to pass `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Interval {
        Interval { lo, hi }
    }

    /// Builds the degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Both bounds finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// The midpoint of a finite interval (`lo` when unbounded above).
    pub fn mid(&self) -> f64 {
        if self.is_finite() {
            (self.lo + self.hi) / 2.0
        } else {
            self.lo
        }
    }

    fn is_finite_point(&self) -> bool {
        self.lo == self.hi && self.lo.is_finite()
    }

    /// The smallest interval containing both `self` and `o`.
    pub fn hull(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    fn map(self, f: impl Fn(f64) -> f64) -> Interval {
        // Valid for monotone non-decreasing f only.
        Interval {
            lo: f(self.lo),
            hi: f(self.hi),
        }
    }

    /// Interval negation.
    // Not `std::ops` impls: these are plain by-value methods so callers in
    // the bound extractor can fold over operator lists uniformly without
    // importing the trait per operator.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Interval addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }

    /// Interval subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Interval) -> Interval {
        self.add(o.neg())
    }

    /// Builds the hull of candidate products, mapping the indeterminate
    /// `0 * inf` (NaN) to 0 — correct for the value *sets* involved.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Interval) -> Interval {
        let cands = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cands {
            let c = if c.is_nan() { 0.0 } else { c };
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval { lo, hi }
    }

    /// Interval division; a divisor straddling zero yields [`FULL`]
    /// (the runtime produces `+/-inf` there).
    ///
    /// [`FULL`]: Interval::FULL
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, o: Interval) -> Interval {
        if o.lo <= 0.0 && o.hi >= 0.0 {
            // Divisor may be zero: the runtime yields +/-inf there.
            return Interval::FULL;
        }
        let cands = [
            self.lo / o.lo,
            self.lo / o.hi,
            self.hi / o.lo,
            self.hi / o.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cands {
            let c = if c.is_nan() { 0.0 } else { c };
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval { lo, hi }
    }
}

/// Abstract value: a numeric interval, a (possibly-known) boolean, a
/// record with per-field abstractions, a homogeneous list with a
/// length interval, or an unknown of any type. The record and list
/// shapes only arise when a declared workload box is in play (see
/// [`bound_fn`]); plain lints keep abstracting structures to `Any`.
#[derive(Clone, Debug, PartialEq)]
enum AbsVal {
    Num(Interval),
    Bool(Option<bool>),
    Rec(Rc<Vec<(String, AbsVal)>>),
    ListOf { elem: Rc<AbsVal>, len: Interval },
    Any,
}

impl AbsVal {
    fn of(v: &Value) -> AbsVal {
        match v {
            Value::Num(n) => AbsVal::Num(Interval::point(*n)),
            Value::Bool(b) => AbsVal::Bool(Some(*b)),
            _ => AbsVal::Any,
        }
    }

    /// Coerces to an interval for arithmetic. Unknowns coerce to
    /// `[0, +inf)`: performance inputs are sizes, counts and rates,
    /// which are non-negative by convention — the assumption that lets
    /// `0 - 5 - w.size` be *provably* negative.
    fn as_interval(&self) -> Interval {
        match self {
            AbsVal::Num(i) => *i,
            AbsVal::Bool(Some(b)) => Interval::point(if *b { 1.0 } else { 0.0 }),
            AbsVal::Bool(None) => Interval { lo: 0.0, hi: 1.0 },
            AbsVal::Rec(_) | AbsVal::ListOf { .. } | AbsVal::Any => Interval::NONNEG,
        }
    }

    fn join(&self, o: &AbsVal) -> AbsVal {
        match (self, o) {
            (AbsVal::Num(a), AbsVal::Num(b)) => AbsVal::Num(a.hull(*b)),
            (AbsVal::Bool(a), AbsVal::Bool(b)) => AbsVal::Bool(if a == b { *a } else { None }),
            (AbsVal::Rec(a), AbsVal::Rec(b)) => {
                if a.len() == b.len() && a.iter().zip(b.iter()).all(|((k, _), (j, _))| k == j) {
                    AbsVal::Rec(Rc::new(
                        a.iter()
                            .zip(b.iter())
                            .map(|((k, va), (_, vb))| (k.clone(), va.join(vb)))
                            .collect(),
                    ))
                } else {
                    AbsVal::Any
                }
            }
            (AbsVal::ListOf { elem: ea, len: la }, AbsVal::ListOf { elem: eb, len: lb }) => {
                AbsVal::ListOf {
                    elem: Rc::new(ea.join(eb)),
                    len: la.hull(*lb),
                }
            }
            _ => AbsVal::Any,
        }
    }

    /// Field lookup on a record abstraction (`Any` otherwise).
    fn field(&self, name: &str) -> AbsVal {
        match self {
            AbsVal::Rec(fs) => fs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap_or(AbsVal::Any),
            _ => AbsVal::Any,
        }
    }
}

type Env = HashMap<String, AbsVal>;

// ---------------------------------------------------------------------
// Abstract interpreter
// ---------------------------------------------------------------------

struct Analyzer<'a> {
    prog: &'a Program,
    consts: &'a HashMap<String, AbsVal>,
    out: &'a mut Diagnostics,
    /// Findings are only reported while analyzing the top-level subject
    /// function; inlined callees are analyzed separately on their own.
    report: bool,
    /// Call stack of function names, for recursion cut-off.
    stack: Vec<String>,
}

impl<'a> Analyzer<'a> {
    fn push(&mut self, d: Diagnostic) {
        if self.report {
            self.out.push(d);
        }
    }

    /// Analyzes a function body in `env`, returning the join of its
    /// return values.
    fn run_fn(&mut self, f: &FnDecl, mut env: Env) -> AbsVal {
        let mut ret: Option<AbsVal> = None;
        self.run_block(&f.body, &mut env, &mut ret);
        ret.unwrap_or(AbsVal::Num(Interval::point(0.0)))
    }

    fn run_block(&mut self, stmts: &[Stmt], env: &mut Env, ret: &mut Option<AbsVal>) {
        for s in stmts {
            self.run_stmt(s, env, ret);
        }
    }

    fn run_stmt(&mut self, stmt: &Stmt, env: &mut Env, ret: &mut Option<AbsVal>) {
        match stmt {
            Stmt::Let(name, init, _) | Stmt::Assign(name, init, _) => {
                let v = self.eval(init, env);
                env.insert(name.clone(), v);
            }
            Stmt::Return(e, _) => {
                let v = self.eval(e, env);
                *ret = Some(match ret.take() {
                    None => v,
                    Some(prev) => prev.join(&v),
                });
            }
            Stmt::If(cond, then, els, span) => {
                let c = self.eval(cond, env);
                match c {
                    AbsVal::Bool(Some(true)) => {
                        if !els.is_empty() {
                            self.push(
                                Diagnostic::warning(
                                    "PIL102",
                                    "`if` condition is constantly true: the `else` branch is dead",
                                )
                                .with_pos(span.line, span.col),
                            );
                        }
                        self.run_block(then, env, ret);
                    }
                    AbsVal::Bool(Some(false)) => {
                        self.push(
                            Diagnostic::warning(
                                "PIL102",
                                "`if` condition is constantly false: the `then` branch is dead",
                            )
                            .with_pos(span.line, span.col),
                        );
                        self.run_block(els, env, ret);
                    }
                    _ => {
                        let mut then_env = env.clone();
                        let mut then_ret = ret.clone();
                        self.run_block(then, &mut then_env, &mut then_ret);
                        self.run_block(els, env, ret);
                        join_env(env, &then_env);
                        *ret = match (ret.take(), then_ret) {
                            (None, r) | (r, None) => r,
                            (Some(a), Some(b)) => Some(a.join(&b)),
                        };
                    }
                }
            }
            Stmt::While(cond, body, span) => {
                // Widen every variable the body assigns before judging
                // the condition, so induction variables don't look
                // constant on the first lap.
                widen_assigned(body, env);
                let c = self.eval(cond, env);
                if c == AbsVal::Bool(Some(true)) && !block_returns(body) {
                    self.push(
                        Diagnostic::error(
                            "PIL104",
                            "`while` condition is constantly true and the body never returns: the loop cannot terminate",
                        )
                        .with_pos(span.line, span.col)
                        .with_note("the runtime's step budget will abort the evaluation"),
                    );
                }
                self.run_block(body, env, ret);
                widen_assigned(body, env);
            }
            Stmt::For(var, iter, body, _) => {
                let it = self.eval(iter, env);
                if let AbsVal::ListOf { elem, len } = &it {
                    let len = Interval {
                        lo: len.lo.max(0.0),
                        hi: len.hi.max(0.0),
                    };
                    if let Some(deltas) = self.for_summary(var, elem, body, env) {
                        // Summarized bodies contain no `return`, so `ret`
                        // is untouched; diagnostics still come from one
                        // ordinary pass in a scratch env (per-iteration
                        // state must not leak into the post-loop env).
                        let mut scratch = env.clone();
                        scratch.insert(var.clone(), (**elem).clone());
                        let mut scratch_ret = ret.clone();
                        self.run_block(body, &mut scratch, &mut scratch_ret);
                        for (x, d) in deltas {
                            let start = env
                                .get(&x)
                                .map(|v| v.as_interval())
                                .unwrap_or(Interval::NONNEG);
                            env.insert(x, AbsVal::Num(start.add(len.mul(d))));
                        }
                        return;
                    }
                }
                widen_assigned(body, env);
                env.insert(var.clone(), AbsVal::Any);
                self.run_block(body, env, ret);
                widen_assigned(body, env);
            }
            Stmt::Expr(e, _) => {
                self.eval(e, env);
            }
        }
    }

    fn eval(&mut self, e: &Expr, env: &Env) -> AbsVal {
        match e {
            Expr::Num(n, _) => AbsVal::Num(Interval::point(*n)),
            Expr::Bool(b, _) => AbsVal::Bool(Some(*b)),
            Expr::Str(..) | Expr::List(..) | Expr::Record(..) => AbsVal::Any,
            Expr::Var(name, _) => env
                .get(name)
                .or_else(|| self.consts.get(name))
                .cloned()
                .unwrap_or(AbsVal::Any),
            Expr::Field(base, name, _) => {
                let b = self.eval(base, env);
                b.field(name)
            }
            Expr::Index(base, idx, _) => {
                let b = self.eval(base, env);
                self.eval(idx, env);
                match b {
                    AbsVal::ListOf { elem, .. } => (*elem).clone(),
                    _ => AbsVal::Any,
                }
            }
            Expr::Unary(op, inner, _) => {
                let v = self.eval(inner, env);
                match op {
                    UnOp::Neg => AbsVal::Num(v.as_interval().neg()),
                    UnOp::Not => match v {
                        AbsVal::Bool(b) => AbsVal::Bool(b.map(|b| !b)),
                        _ => AbsVal::Bool(None),
                    },
                }
            }
            Expr::Binary(op, l, r, span) => {
                let lv = self.eval(l, env);
                let rv = self.eval(r, env);
                self.eval_binary(*op, &lv, &rv, *span)
            }
            Expr::Call(name, args, span) => {
                let avs: Vec<AbsVal> = args.iter().map(|a| self.eval(a, env)).collect();
                self.eval_call(name, &avs, *span)
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, lv: &AbsVal, rv: &AbsVal, span: Span) -> AbsVal {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div | Rem => {
                let a = lv.as_interval();
                let b = rv.as_interval();
                if matches!(op, Div | Rem) && b == Interval::point(0.0) {
                    self.push(
                        Diagnostic::error(
                            "PIL101",
                            format!(
                                "{} by a divisor that is always zero",
                                if op == Div { "division" } else { "modulo" }
                            ),
                        )
                        .with_pos(span.line, span.col)
                        .with_note("the runtime yields infinity here, poisoning every prediction downstream"),
                    );
                }
                let res = match op {
                    Add => a.add(b),
                    Sub => a.sub(b),
                    Mul => a.mul(b),
                    Div => a.div(b),
                    _ => rem_interval(a, b),
                };
                if a.is_finite_point() && b.is_finite_point() && !res.lo.is_finite() {
                    self.push(
                        Diagnostic::warning(
                            "PIL107",
                            format!(
                                "constant arithmetic overflows: {} and {} produce a non-finite result",
                                a.lo, b.lo
                            ),
                        )
                        .with_pos(span.line, span.col),
                    );
                }
                AbsVal::Num(res)
            }
            Lt | Le | Gt | Ge => {
                let a = lv.as_interval();
                let b = rv.as_interval();
                let (a, b, strict) = match op {
                    Lt => (a, b, true),
                    Le => (a, b, false),
                    Gt => (b, a, true),
                    _ => (b, a, false),
                };
                // Now deciding `a < b` (or `a <= b`).
                let known = if strict {
                    if a.hi < b.lo {
                        Some(true)
                    } else if a.lo >= b.hi {
                        Some(false)
                    } else {
                        None
                    }
                } else if a.hi <= b.lo {
                    Some(true)
                } else if a.lo > b.hi {
                    Some(false)
                } else {
                    None
                };
                AbsVal::Bool(known)
            }
            Eq | Ne => {
                let known = match (lv, rv) {
                    (AbsVal::Num(a), AbsVal::Num(b)) => {
                        if a.is_finite_point() && *a == *b {
                            Some(true)
                        } else if a.hi < b.lo || b.hi < a.lo {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    (AbsVal::Bool(Some(a)), AbsVal::Bool(Some(b))) => Some(a == b),
                    _ => None,
                };
                AbsVal::Bool(match op {
                    Eq => known,
                    _ => known.map(|k| !k),
                })
            }
            And => match (truthy(lv), truthy(rv)) {
                (Some(false), _) | (_, Some(false)) => AbsVal::Bool(Some(false)),
                (Some(true), Some(true)) => AbsVal::Bool(Some(true)),
                _ => AbsVal::Bool(None),
            },
            Or => match (truthy(lv), truthy(rv)) {
                (Some(true), _) | (_, Some(true)) => AbsVal::Bool(Some(true)),
                (Some(false), Some(false)) => AbsVal::Bool(Some(false)),
                _ => AbsVal::Bool(None),
            },
        }
    }

    fn eval_call(&mut self, name: &str, args: &[AbsVal], span: Span) -> AbsVal {
        // Builtins get precise transfer functions where cheap.
        let iv = |i: usize| {
            args.get(i)
                .map(|a| a.as_interval())
                .unwrap_or(Interval::FULL)
        };
        match name {
            "ceil" => return AbsVal::Num(iv(0).map(f64::ceil)),
            "floor" => return AbsVal::Num(iv(0).map(f64::floor)),
            "round" => return AbsVal::Num(iv(0).map(f64::round)),
            "abs" => {
                let a = iv(0);
                return AbsVal::Num(if a.lo >= 0.0 {
                    a
                } else if a.hi <= 0.0 {
                    a.neg()
                } else {
                    Interval {
                        lo: 0.0,
                        hi: a.hi.max(-a.lo),
                    }
                });
            }
            "min" | "max" => {
                let mut acc = iv(0);
                for i in 1..args.len().max(1) {
                    let b = iv(i);
                    acc = if name == "min" {
                        Interval {
                            lo: acc.lo.min(b.lo),
                            hi: acc.hi.min(b.hi),
                        }
                    } else {
                        Interval {
                            lo: acc.lo.max(b.lo),
                            hi: acc.hi.max(b.hi),
                        }
                    };
                }
                return AbsVal::Num(acc);
            }
            "sqrt" => {
                let a = iv(0);
                return AbsVal::Num(Interval {
                    lo: a.lo.max(0.0).sqrt(),
                    hi: a.hi.max(0.0).sqrt(),
                });
            }
            "pow" => {
                let (a, b) = (iv(0), iv(1));
                if a.is_finite_point() && b.is_finite_point() {
                    let r = a.lo.powf(b.lo);
                    if !r.is_finite() {
                        self.push(
                            Diagnostic::warning(
                                "PIL107",
                                format!("constant `pow({}, {})` is non-finite", a.lo, b.lo),
                            )
                            .with_pos(span.line, span.col),
                        );
                    }
                    return AbsVal::Num(Interval::point(r));
                }
                return AbsVal::Num(if a.lo >= 0.0 {
                    Interval::NONNEG
                } else {
                    Interval::FULL
                });
            }
            "log2" => {
                let a = iv(0);
                return AbsVal::Num(if a.lo > 0.0 {
                    Interval {
                        lo: a.lo.log2(),
                        hi: a.hi.log2(),
                    }
                } else {
                    Interval::FULL
                });
            }
            "len" => {
                return AbsVal::Num(match args.first() {
                    Some(AbsVal::ListOf { len, .. }) => *len,
                    _ => Interval::NONNEG,
                })
            }
            "sum" => {
                return AbsVal::Num(match args.first() {
                    // Sum of `k` values each inside the element interval,
                    // `k` inside the length interval: the interval product
                    // covers every combination (including the empty sum).
                    Some(AbsVal::ListOf { elem, len }) => len.mul(elem.as_interval()),
                    _ => Interval::FULL,
                });
            }
            "num" => {
                // num(bool) yields 0 or 1; num(number) is the identity.
                return AbsVal::Num(match args.first() {
                    Some(AbsVal::Bool(Some(b))) => Interval::point(f64::from(*b)),
                    Some(AbsVal::Bool(None)) => Interval { lo: 0.0, hi: 1.0 },
                    Some(AbsVal::Num(a)) => *a,
                    _ => Interval::FULL,
                });
            }
            _ => {}
        }
        // User function: inline unless recursive or too deep.
        let Some(f) = self.prog.function(name) else {
            return AbsVal::Any;
        };
        if self.stack.len() > INLINE_DEPTH || self.stack.iter().any(|s| s == name) {
            return AbsVal::Any;
        }
        let env: Env = f
            .params
            .iter()
            .zip(args.iter().cloned().chain(std::iter::repeat(AbsVal::Any)))
            .map(|(p, a)| (p.clone(), a))
            .collect();
        self.stack.push(name.to_string());
        let was = std::mem::replace(&mut self.report, false);
        let ret = self.run_fn(f, env);
        self.report = was;
        self.stack.pop();
        ret
    }

    /// Attempts to summarize a `for` body as per-iteration interval
    /// deltas: every write must be an accumulation `x = x + d` (in
    /// either operand order) whose delta `d` reads no accumulated
    /// variable; `if` branches hull their branch sums; `let` locals
    /// are allowed. Returns `None` (the caller falls back to widening)
    /// for any other shape — `while`/`for`/`return` in the body,
    /// non-additive writes, or self-referential deltas.
    fn for_summary(
        &mut self,
        var: &str,
        elem: &AbsVal,
        body: &[Stmt],
        env: &Env,
    ) -> Option<Vec<(String, Interval)>> {
        let mut acc = HashSet::new();
        collect_assigned(body, &mut acc);
        if acc.is_empty() || acc.contains(var) {
            return None;
        }
        let mut denv = env.clone();
        for x in &acc {
            denv.remove(x);
        }
        denv.insert(var.to_string(), elem.clone());
        // Diagnostics come from the caller's scratch pass; suppress
        // them here so nothing is double-reported.
        let was = std::mem::replace(&mut self.report, false);
        let out = self.path_deltas(body, &mut denv, &acc);
        self.report = was;
        out.map(|m| m.into_iter().collect())
    }

    /// Per-variable interval sum of the accumulation deltas along one
    /// straight-line path: sequential deltas add, `if` alternatives
    /// hull (a conditionally-skipped accumulation contributes 0).
    fn path_deltas(
        &mut self,
        stmts: &[Stmt],
        denv: &mut Env,
        acc: &HashSet<String>,
    ) -> Option<HashMap<String, Interval>> {
        let zero = Interval::point(0.0);
        let mut out: HashMap<String, Interval> = HashMap::new();
        for s in stmts {
            match s {
                Stmt::Let(name, e, _) => {
                    if acc.contains(name) || expr_mentions(e, acc) {
                        return None;
                    }
                    let v = self.eval(e, denv);
                    denv.insert(name.clone(), v);
                }
                Stmt::Assign(x, e, _) => {
                    let d = match e {
                        Expr::Binary(BinOp::Add, l, r, _) => {
                            if matches!(&**l, Expr::Var(v, _) if v == x) {
                                r
                            } else if matches!(&**r, Expr::Var(v, _) if v == x) {
                                l
                            } else {
                                return None;
                            }
                        }
                        _ => return None,
                    };
                    if expr_mentions(d, acc) {
                        return None;
                    }
                    let dv = self.eval(d, denv).as_interval();
                    let cur = out.get(x).copied().unwrap_or(zero);
                    out.insert(x.clone(), cur.add(dv));
                }
                Stmt::If(c, a, b, _) => {
                    if expr_mentions(c, acc) {
                        return None;
                    }
                    self.eval(c, denv);
                    let da = self.path_deltas(a, &mut denv.clone(), acc)?;
                    let db = self.path_deltas(b, &mut denv.clone(), acc)?;
                    let keys: HashSet<&String> = da.keys().chain(db.keys()).collect();
                    for k in keys {
                        let d = da
                            .get(k)
                            .copied()
                            .unwrap_or(zero)
                            .hull(db.get(k).copied().unwrap_or(zero));
                        let cur = out.get(k.as_str()).copied().unwrap_or(zero);
                        out.insert((*k).clone(), cur.add(d));
                    }
                }
                Stmt::Expr(e, _) => {
                    if expr_mentions(e, acc) {
                        return None;
                    }
                    self.eval(e, denv);
                }
                Stmt::Return(..) | Stmt::While(..) | Stmt::For(..) => return None,
            }
        }
        Some(out)
    }
}

/// Variables written by `=` assignment anywhere in `stmts`.
fn collect_assigned(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Assign(name, _, _) => {
                out.insert(name.clone());
            }
            Stmt::If(_, a, b, _) => {
                collect_assigned(a, out);
                collect_assigned(b, out);
            }
            Stmt::For(_, _, body, _) | Stmt::While(_, body, _) => collect_assigned(body, out),
            Stmt::Let(..) | Stmt::Return(..) | Stmt::Expr(..) => {}
        }
    }
}

/// Whether `e` reads any variable in `names`.
fn expr_mentions(e: &Expr, names: &HashSet<String>) -> bool {
    match e {
        Expr::Var(name, _) => names.contains(name),
        Expr::Field(b, _, _) => expr_mentions(b, names),
        Expr::Index(b, i, _) => expr_mentions(b, names) || expr_mentions(i, names),
        Expr::Unary(_, inner, _) => expr_mentions(inner, names),
        Expr::Binary(_, l, r, _) => expr_mentions(l, names) || expr_mentions(r, names),
        Expr::Call(_, args, _) => args.iter().any(|a| expr_mentions(a, names)),
        Expr::List(items, _) => items.iter().any(|i| expr_mentions(i, names)),
        Expr::Record(fs, _) => fs.iter().any(|(_, v)| expr_mentions(v, names)),
        Expr::Num(..) | Expr::Str(..) | Expr::Bool(..) => false,
    }
}

fn truthy(v: &AbsVal) -> Option<bool> {
    match v {
        AbsVal::Bool(b) => *b,
        AbsVal::Num(i) if i.is_finite_point() => Some(i.lo != 0.0),
        _ => None,
    }
}

fn rem_interval(a: Interval, b: Interval) -> Interval {
    if a.is_finite_point() && b.is_finite_point() && b.lo != 0.0 {
        return Interval::point(a.lo % b.lo);
    }
    if a.lo >= 0.0 {
        // f64 remainder keeps the dividend's sign and magnitude bound.
        Interval { lo: 0.0, hi: a.hi }
    } else {
        Interval::FULL
    }
}

fn join_env(into: &mut Env, other: &Env) {
    let keys: Vec<String> = into.keys().cloned().collect();
    for k in keys {
        match other.get(&k) {
            Some(v) => {
                let j = into[&k].join(v);
                into.insert(k, j);
            }
            None => {
                into.insert(k, AbsVal::Any);
            }
        }
    }
    for (k, _) in other.iter() {
        into.entry(k.clone()).or_insert(AbsVal::Any);
    }
}

/// Widens every variable assigned anywhere in `stmts` to "unknown".
fn widen_assigned(stmts: &[Stmt], env: &mut Env) {
    for s in stmts {
        match s {
            Stmt::Let(name, _, _) | Stmt::Assign(name, _, _) => {
                env.insert(name.clone(), AbsVal::Any);
            }
            Stmt::If(_, a, b, _) => {
                widen_assigned(a, env);
                widen_assigned(b, env);
            }
            Stmt::For(var, _, body, _) => {
                env.insert(var.clone(), AbsVal::Any);
                widen_assigned(body, env);
            }
            Stmt::While(_, body, _) => widen_assigned(body, env),
            Stmt::Return(..) | Stmt::Expr(..) => {}
        }
    }
}

/// Whether any statement in the block (transitively) is a `return`.
fn block_returns(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Return(..) => true,
        Stmt::If(_, a, b, _) => block_returns(a) || block_returns(b),
        Stmt::For(_, _, body, _) | Stmt::While(_, body, _) => block_returns(body),
        _ => false,
    })
}

/// PIL103: statements after a `return` in the same block.
fn unreachable_after_return(stmts: &[Stmt], out: &mut Diagnostics) {
    let mut returned = false;
    for s in stmts {
        if returned {
            let span = stmt_span(s);
            out.push(
                Diagnostic::warning("PIL103", "unreachable statement after `return`")
                    .with_pos(span.line, span.col),
            );
            break; // one report per block is enough
        }
        match s {
            Stmt::Return(..) => returned = true,
            Stmt::If(_, a, b, _) => {
                unreachable_after_return(a, out);
                unreachable_after_return(b, out);
            }
            Stmt::For(_, _, body, _) | Stmt::While(_, body, _) => {
                unreachable_after_return(body, out);
            }
            _ => {}
        }
    }
}

fn stmt_span(s: &Stmt) -> Span {
    match s {
        Stmt::Let(_, _, sp)
        | Stmt::Assign(_, _, sp)
        | Stmt::Return(_, sp)
        | Stmt::If(_, _, _, sp)
        | Stmt::For(_, _, _, sp)
        | Stmt::While(_, _, sp)
        | Stmt::Expr(_, sp) => *sp,
    }
}

// ---------------------------------------------------------------------
// Monotonicity probing (PIL108)
// ---------------------------------------------------------------------

/// Field names treated as workload *sizes*: predicted latency must not
/// decrease as one of these grows (with everything else held fixed).
fn is_size_like(field: &str) -> bool {
    const HINTS: [&str; 10] = [
        "size", "count", "bytes", "len", "writes", "fields", "blocks", "ops", "macs", "items",
    ];
    field == "n" || HINTS.iter().any(|h| field.contains(h))
}

#[derive(Clone, Copy, PartialEq)]
enum FieldKind {
    Scalar,
    List,
}

/// Probes every single-parameter `latency_*` function on a geometric
/// grid over each size-like field and reports strict decreases.
fn monotonicity(prog: &Program, out: &mut Diagnostics) {
    let Ok(consts) = eval_consts(prog, Limits::default()) else {
        return;
    };
    let consts = Rc::new(consts);
    for f in &prog.functions {
        if !is_latency_fn(&f.name) || f.params.len() != 1 {
            continue;
        }
        let mut fields: HashMap<String, FieldKind> = HashMap::new();
        let mut visited = HashSet::new();
        collect_fields(prog, f, &f.params[0], &mut fields, &mut visited);
        let size_fields: Vec<&String> = fields
            .iter()
            .filter(|(name, kind)| **kind == FieldKind::Scalar && is_size_like(name))
            .map(|(name, _)| name)
            .collect();
        for probe_field in size_fields {
            let eval_at = |x: f64| -> Option<f64> {
                let rec = Value::record_owned(fields.iter().map(|(name, kind)| {
                    let v = match kind {
                        FieldKind::List => Value::list(Vec::new()),
                        FieldKind::Scalar if name == probe_field => Value::num(x),
                        FieldKind::Scalar => Value::num(FIXED_FIELD),
                    };
                    (name.clone(), v)
                }));
                Interp::with_consts(prog, Limits::default(), Rc::clone(&consts))
                    .call(&f.name, &[rec])
                    .ok()
                    .and_then(|v| v.as_num())
                    .filter(|n| n.is_finite())
            };
            let ys: Vec<(f64, f64)> = PROBES
                .iter()
                .filter_map(|&x| eval_at(x).map(|y| (x, y)))
                .collect();
            if ys.len() < PROBES.len() {
                continue; // some probe failed to evaluate: inconclusive
            }
            if let Some(w) = ys.windows(2).find(|w| w[1].1 + 1e-6 < w[0].1) {
                out.push(
                    Diagnostic::warning(
                        "PIL108",
                        format!(
                            "`{}` is not monotone in `{}`: f({{{probe}: {}}}) = {} but f({{{probe}: {}}}) = {}",
                            f.name,
                            probe_field,
                            w[0].0,
                            w[0].1,
                            w[1].0,
                            w[1].1,
                            probe = probe_field,
                        ),
                    )
                    .with_pos(f.span.line, f.span.col)
                    .with_at(format!("fn `{}`", f.name))
                    .with_note("predicted latency decreased as the workload grew; check the formula's sign"),
                );
            }
        }
    }
}

/// Collects the fields read off `param` in `f`, transitively through
/// calls that forward the whole parameter. A field is list-typed if it
/// is iterated with `for` or passed to `len`/`sum`.
fn collect_fields(
    prog: &Program,
    f: &FnDecl,
    param: &str,
    fields: &mut HashMap<String, FieldKind>,
    visited: &mut HashSet<String>,
) {
    if !visited.insert(format!("{}#{param}", f.name)) {
        return;
    }
    fn walk_expr(
        prog: &Program,
        e: &Expr,
        param: &str,
        fields: &mut HashMap<String, FieldKind>,
        visited: &mut HashSet<String>,
    ) {
        match e {
            Expr::Field(base, name, _) => {
                if matches!(&**base, Expr::Var(v, _) if v == param) {
                    fields.entry(name.clone()).or_insert(FieldKind::Scalar);
                } else {
                    walk_expr(prog, base, param, fields, visited);
                }
            }
            Expr::Call(fname, args, _) => {
                if matches!(fname.as_str(), "len" | "sum") {
                    if let Some(Expr::Field(base, name, _)) = args.first() {
                        if matches!(&**base, Expr::Var(v, _) if v == param) {
                            fields.insert(name.clone(), FieldKind::List);
                        }
                    }
                }
                for (i, a) in args.iter().enumerate() {
                    if matches!(a, Expr::Var(v, _) if v == param) {
                        if let Some(g) = prog.function(fname) {
                            if let Some(p2) = g.params.get(i) {
                                collect_fields(prog, g, p2, fields, visited);
                            }
                        }
                    }
                    walk_expr(prog, a, param, fields, visited);
                }
            }
            Expr::List(items, _) => {
                for i in items {
                    walk_expr(prog, i, param, fields, visited);
                }
            }
            Expr::Record(fs, _) => {
                for (_, v) in fs {
                    walk_expr(prog, v, param, fields, visited);
                }
            }
            Expr::Index(b, i, _) => {
                walk_expr(prog, b, param, fields, visited);
                walk_expr(prog, i, param, fields, visited);
            }
            Expr::Unary(_, inner, _) => walk_expr(prog, inner, param, fields, visited),
            Expr::Binary(_, l, r, _) => {
                walk_expr(prog, l, param, fields, visited);
                walk_expr(prog, r, param, fields, visited);
            }
            Expr::Num(..) | Expr::Str(..) | Expr::Bool(..) | Expr::Var(..) => {}
        }
    }
    fn walk_stmt(
        prog: &Program,
        s: &Stmt,
        param: &str,
        fields: &mut HashMap<String, FieldKind>,
        visited: &mut HashSet<String>,
    ) {
        match s {
            Stmt::Let(_, e, _) | Stmt::Assign(_, e, _) | Stmt::Return(e, _) | Stmt::Expr(e, _) => {
                walk_expr(prog, e, param, fields, visited)
            }
            Stmt::If(c, a, b, _) => {
                walk_expr(prog, c, param, fields, visited);
                for s in a.iter().chain(b) {
                    walk_stmt(prog, s, param, fields, visited);
                }
            }
            Stmt::For(_, it, body, _) => {
                if let Expr::Field(base, name, _) = it {
                    if matches!(&**base, Expr::Var(v, _) if v == param) {
                        fields.insert(name.clone(), FieldKind::List);
                    }
                }
                walk_expr(prog, it, param, fields, visited);
                for s in body {
                    walk_stmt(prog, s, param, fields, visited);
                }
            }
            Stmt::While(c, body, _) => {
                walk_expr(prog, c, param, fields, visited);
                for s in body {
                    walk_stmt(prog, s, param, fields, visited);
                }
            }
        }
    }
    for s in &f.body {
        walk_stmt(prog, s, param, fields, visited);
    }
}

// ---------------------------------------------------------------------
// Workload boxes and bound extraction (perf-xcheck layer 1)
// ---------------------------------------------------------------------

/// A *workload box*: the abstract shape of every workload an
/// accelerator declares it accepts. Scalars are intervals, lists carry
/// an element box plus a length interval, and records mirror the
/// workload's field structure. [`bound_fn`] evaluates a `.pi` function
/// over a box and returns a guaranteed enclosure of its result.
#[derive(Clone, Debug, PartialEq)]
pub enum BoxVal {
    /// A scalar feature constrained to an interval.
    Num(Interval),
    /// A list whose every element fits `elem` and whose length lies in
    /// `len`.
    List {
        /// Box every element is drawn from.
        elem: Box<BoxVal>,
        /// Interval the list length lies in (clamped to `>= 0`).
        len: Interval,
    },
    /// A record with per-field boxes, in declaration order.
    Record(Vec<(String, BoxVal)>),
}

impl BoxVal {
    /// Scalar box `[lo, hi]`.
    pub fn num(lo: f64, hi: f64) -> BoxVal {
        BoxVal::Num(Interval::new(lo, hi))
    }

    /// Scalar box pinned to a single value.
    pub fn point(v: f64) -> BoxVal {
        BoxVal::Num(Interval::point(v))
    }

    /// List box with element shape `elem` and length in `[lo, hi]`.
    pub fn list(elem: BoxVal, lo: f64, hi: f64) -> BoxVal {
        BoxVal::List {
            elem: Box::new(elem),
            len: Interval::new(lo, hi),
        }
    }

    /// Record box from `(field, box)` pairs.
    pub fn record(fields: impl IntoIterator<Item = (&'static str, BoxVal)>) -> BoxVal {
        BoxVal::Record(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Returns the box for `name` if this is a record containing it.
    pub fn field(&self, name: &str) -> Option<&BoxVal> {
        match self {
            BoxVal::Record(fs) => fs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Replaces (or appends) the box for record field `name`. No-op on
    /// non-records. Used to narrow a box to a pipeline stage's fixed
    /// fields or to sweep one claim axis.
    pub fn with_field(mut self, name: &str, val: BoxVal) -> BoxVal {
        if let BoxVal::Record(fs) = &mut self {
            if let Some(slot) = fs.iter_mut().find(|(k, _)| k == name) {
                slot.1 = val;
            } else {
                fs.push((name.to_string(), val));
            }
        }
        self
    }

    /// Concretizes the box into one runtime [`Value`]: scalars take
    /// `lo + t * (hi - lo)` for `t` in `[0, 1]`, list lengths round the
    /// interpolated length, records recurse. Returns `None` when any
    /// bound involved is infinite — such boxes abstract fine but cannot
    /// be sampled. Used by the xcheck NL probes to test claims with the
    /// concrete interpreter, no simulation involved.
    pub fn sample(&self, t: f64) -> Option<Value> {
        let t = t.clamp(0.0, 1.0);
        match self {
            BoxVal::Num(iv) => {
                if !iv.is_finite() {
                    return None;
                }
                Some(Value::num(iv.lo + t * (iv.hi - iv.lo)))
            }
            BoxVal::List { elem, len } => {
                if !len.is_finite() {
                    return None;
                }
                let n = (len.lo + t * (len.hi - len.lo)).round().max(0.0) as usize;
                let item = elem.sample(t)?;
                Some(Value::list(vec![item; n]))
            }
            BoxVal::Record(fs) => {
                let mut out = Vec::with_capacity(fs.len());
                for (k, v) in fs {
                    out.push((k.clone(), v.sample(t)?));
                }
                Some(Value::record_owned(out))
            }
        }
    }
}

/// Converts a box to the analyzer's abstract domain.
fn absval_of_box(b: &BoxVal) -> AbsVal {
    match b {
        BoxVal::Num(iv) => AbsVal::Num(*iv),
        BoxVal::List { elem, len } => AbsVal::ListOf {
            elem: Rc::new(absval_of_box(elem)),
            len: Interval {
                lo: len.lo.max(0.0),
                hi: len.hi.max(0.0),
            },
        },
        BoxVal::Record(fs) => AbsVal::Rec(Rc::new(
            fs.iter()
                .map(|(k, v)| (k.clone(), absval_of_box(v)))
                .collect(),
        )),
    }
}

/// Evaluates function `fname` of `prog` abstractly with its single
/// workload parameter bound to `arg`, returning a guaranteed interval
/// enclosure of every value the function can return for workloads
/// inside the box. Errors if the function is missing or does not take
/// exactly one parameter; a function that provably never returns a
/// number yields an error rather than a silent `FULL`.
pub fn bound_fn(prog: &Program, fname: &str, arg: &BoxVal) -> Result<Interval, String> {
    bound_call(prog, fname, std::slice::from_ref(arg))
}

/// Multi-argument form of [`bound_fn`]: each parameter is bound to the
/// corresponding box. Used for the generated `.pnet` delay wrappers
/// `__delay(t, ts)`, which take the token payload and the payload list.
pub fn bound_call(prog: &Program, fname: &str, args: &[BoxVal]) -> Result<Interval, String> {
    let f = prog
        .functions
        .iter()
        .find(|f| f.name == fname)
        .ok_or_else(|| format!("no function `{fname}` in program"))?;
    if f.params.len() != args.len() {
        return Err(format!(
            "`{fname}` takes {} parameters but {} boxes were supplied",
            f.params.len(),
            args.len()
        ));
    }
    let consts = const_env(prog);
    let mut sink = Diagnostics::new();
    let mut az = Analyzer {
        prog,
        consts: &consts,
        out: &mut sink,
        report: false,
        stack: vec![f.name.clone()],
    };
    let env: Env = f
        .params
        .iter()
        .zip(args)
        .map(|(p, b)| (p.clone(), absval_of_box(b)))
        .collect();
    match az.run_fn(f, env) {
        AbsVal::Num(iv) => Ok(iv),
        AbsVal::Bool(_) => Err(format!("`{fname}` returns a boolean, not a latency")),
        _ => Ok(Interval::NONNEG),
    }
}

/// Convenience wrapper: parses `src` and runs [`bound_fn`]. Parse
/// failures surface as the error string.
pub fn bound_src(src: &str, fname: &str, arg: &BoxVal) -> Result<Interval, String> {
    let ast = crate::lexer::lex(src)
        .and_then(|t| crate::parser::parse(&t))
        .map_err(|e| e.to_string())?;
    bound_fn(&ast, fname, arg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use perf_core::Severity;

    fn lint_src(src: &str) -> Diagnostics {
        lint(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn clean_program_has_no_findings() {
        let ds = lint_src(
            "const M = 10;\nfn latency_x(w) { return M + w.size * 2; }\nfn tput_x(w) { return 1 / latency_x(w); }",
        );
        assert_eq!(ds.count(Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn division_by_constant_zero_flagged() {
        let ds = lint_src("fn f(w) { return w.size / 0; }");
        assert!(ds.has_code("PIL101"), "{}", ds.render());
        // Dividing by an unknown field is fine: it is not *provably* 0.
        let ds = lint_src("fn f(w) { return w.size / w.rate; }");
        assert!(!ds.has_code("PIL101"), "{}", ds.render());
    }

    #[test]
    fn division_by_zero_const_chain_flagged() {
        let ds = lint_src("const A = 4;\nconst B = A - 4;\nfn f(w) { return w.size / B; }");
        assert!(ds.has_code("PIL101"), "{}", ds.render());
    }

    #[test]
    fn dead_branch_flagged() {
        let ds = lint_src("fn f(w) { if 1 > 2 { return 0; } else { return w.size; } }");
        assert!(ds.has_code("PIL102"), "{}", ds.render());
        let ds = lint_src("fn f(w) { if w.size > 2 { return 0; } else { return 1; } }");
        assert!(!ds.has_code("PIL102"), "{}", ds.render());
    }

    #[test]
    fn unreachable_after_return_flagged() {
        let ds = lint_src("fn f(w) { return w.size; let x = 1; }");
        assert!(ds.has_code("PIL103"), "{}", ds.render());
    }

    #[test]
    fn nonterminating_while_flagged() {
        let ds = lint_src("fn f(w) { let x = 0; while true { x = x + w.size; } return x; }");
        assert!(ds.has_code("PIL104"), "{}", ds.render());
        // A return inside the loop makes it terminable.
        let ds = lint_src("fn f(w) { while true { return w.size; } return 0; }");
        assert!(!ds.has_code("PIL104"), "{}", ds.render());
        // An induction variable is not "constantly true".
        let ds = lint_src("fn f(w) { let i = 0; while i < w.size { i = i + 1; } return i; }");
        assert!(!ds.has_code("PIL104"), "{}", ds.render());
    }

    #[test]
    fn provably_negative_latency_flagged() {
        let ds = lint_src("fn latency_bad(w) { return 0 - 5 - w.size; }");
        assert!(ds.has_code("PIL105"), "{}", ds.render());
        // Could be positive for small sizes: not provable, not flagged.
        let ds = lint_src("fn latency_ok(w) { return 100 - w.size; }");
        assert!(!ds.has_code("PIL105"), "{}", ds.render());
    }

    #[test]
    fn constant_overflow_flagged() {
        let ds = lint_src("fn f(w) { return w.size * pow(10, 400); }");
        assert!(ds.has_code("PIL107"), "{}", ds.render());
    }

    #[test]
    fn monotonicity_violation_flagged() {
        let ds = lint_src("fn latency_dec(w) { return 100000 - w.size * 2; }");
        assert!(ds.has_code("PIL108"), "{}", ds.render());
        let d = ds.find("PIL108").unwrap();
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn monotone_latency_not_flagged() {
        let ds = lint_src(
            "fn latency_inc(w) { return 100 + w.size / w.rate; }\nfn min_latency_q(w) { return w.count * 3; }",
        );
        assert!(!ds.has_code("PIL108"), "{}", ds.render());
    }

    #[test]
    fn recursive_program_lints_without_diverging() {
        let ds = lint_src(
            "fn read_cost(m) { let c = 0; for s in m.subs { c = c + read_cost(s); } return c + 6; }\nfn max_latency_r(m) { return read_cost(m) + m.wire_bytes / 16; }",
        );
        assert_eq!(ds.count(Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn inlined_callee_findings_not_duplicated() {
        // `bad` divides by zero; calling it twice must not triple-report.
        let ds = lint_src("fn bad(w) { return w.size / 0; }\nfn f(w) { return bad(w) + bad(w); }");
        let n = ds.items().iter().filter(|d| d.code == "PIL101").count();
        assert_eq!(n, 1, "{}", ds.render());
    }

    #[test]
    fn lint_src_reports_syntax_errors_as_diagnostics() {
        let ds = crate::lint::lint_src("broken.pi", "fn f( { return 1; }");
        assert!(ds.has_code("PIL012"), "{}", ds.render());
        assert_eq!(ds.find("PIL012").unwrap().origin, "broken.pi");
        // Checker and analyzer findings both flow through, with origin.
        let ds = crate::lint::lint_src("w.pi", "fn f(a, b) { return a / 0; }");
        assert!(ds.has_code("PIL009"), "{}", ds.render());
        assert!(ds.has_code("PIL101"), "{}", ds.render());
        assert!(ds.items().iter().all(|d| d.origin == "w.pi"));
    }

    #[test]
    fn codes_table_is_consistent() {
        let mut seen = std::collections::HashSet::new();
        for (code, desc) in CODES {
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(code.starts_with("PIL"));
            assert!(!desc.is_empty());
        }
    }

    // -- bound extraction ---------------------------------------------

    #[test]
    fn bound_scalar_formula() {
        // jpeg-like affine formula over a scalar box.
        let b = BoxVal::record([
            ("size", BoxVal::num(100.0, 200.0)),
            ("rate", BoxVal::num(2.0, 4.0)),
        ]);
        let iv = bound_src(
            "fn latency_f(w) { return 50 + w.size / w.rate; }",
            "latency_f",
            &b,
        )
        .unwrap();
        assert_eq!(iv, Interval::new(75.0, 150.0));
    }

    #[test]
    fn bound_accumulation_loop_is_finite() {
        // The for-summary must give len * delta, not widen to +inf.
        let b = BoxVal::record([(
            "items",
            BoxVal::list(BoxVal::record([("cost", BoxVal::num(3.0, 5.0))]), 2.0, 10.0),
        )]);
        let iv = bound_src(
            "fn latency_f(w) { let t = 7; for x in w.items { t = t + x.cost; } return t; }",
            "latency_f",
            &b,
        )
        .unwrap();
        assert!(iv.is_finite(), "widened: {iv:?}");
        assert_eq!(iv, Interval::new(7.0 + 2.0 * 3.0, 7.0 + 10.0 * 5.0));
    }

    #[test]
    fn bound_conditional_accumulation_hulls_with_zero() {
        // A conditionally-skipped accumulation contributes [0, delta].
        let b = BoxVal::record([(
            "items",
            BoxVal::list(BoxVal::record([("big", BoxVal::num(0.0, 1.0))]), 4.0, 4.0),
        )]);
        let iv = bound_src(
            "fn latency_f(w) { let t = 0; for x in w.items { if x.big > 0 { t = t + 10; } } return t; }",
            "latency_f",
            &b,
        )
        .unwrap();
        assert_eq!(iv, Interval::new(0.0, 40.0));
    }

    #[test]
    fn bound_len_and_sum_builtins() {
        let b = BoxVal::record([("items", BoxVal::list(BoxVal::num(1.0, 2.0), 3.0, 5.0))]);
        let iv = bound_src(
            "fn latency_f(w) { return len(w.items) * 4 + sum(w.items); }",
            "latency_f",
            &b,
        )
        .unwrap();
        assert_eq!(
            iv,
            Interval::new(3.0 * 4.0 + 3.0 * 1.0, 5.0 * 4.0 + 5.0 * 2.0)
        );
    }

    #[test]
    fn bound_fn_rejects_bad_signatures() {
        let src = "fn two(a, b) { return a + b; }";
        let ast = parse(&lex(src).unwrap()).unwrap();
        assert!(bound_fn(&ast, "missing", &BoxVal::point(1.0)).is_err());
        assert!(bound_fn(&ast, "two", &BoxVal::point(1.0)).is_err());
    }

    #[test]
    fn bound_fn_does_not_emit_diagnostics() {
        // report=false: extraction must stay silent even over code that
        // would lint (dead branch under the box).
        let b = BoxVal::record([("size", BoxVal::num(1.0, 2.0))]);
        let iv = bound_src(
            "fn latency_f(w) { if w.size < 100 { return w.size; } return 1000; }",
            "latency_f",
            &b,
        )
        .unwrap();
        assert!(iv.lo >= 1.0 && iv.hi <= 1000.0, "{iv:?}");
    }

    #[test]
    fn box_sampling_concretizes_endpoints() {
        let b = BoxVal::record([
            ("size", BoxVal::num(10.0, 20.0)),
            ("items", BoxVal::list(BoxVal::point(1.0), 0.0, 4.0)),
        ]);
        let lo = b.sample(0.0).unwrap();
        let hi = b.sample(1.0).unwrap();
        assert_eq!(lo.field("size").unwrap().as_num(), Some(10.0));
        assert_eq!(hi.field("size").unwrap().as_num(), Some(20.0));
        assert_eq!(lo.field("items").unwrap().as_list().unwrap().len(), 0);
        assert_eq!(hi.field("items").unwrap().as_list().unwrap().len(), 4);
        // Unbounded boxes cannot be sampled.
        assert!(BoxVal::num(0.0, f64::INFINITY).sample(0.5).is_none());
    }

    #[test]
    fn sampled_values_fall_inside_extracted_bounds() {
        // Soundness spot-check: concrete runs at several box points must
        // land inside the abstract enclosure.
        let src = "fn latency_f(w) { let t = 12; for x in w.items { if x.kind > 0 { t = t + x.cost * 2; } else { t = t + x.cost; } } return t + w.size / 8; }";
        let b = BoxVal::record([
            ("size", BoxVal::num(64.0, 512.0)),
            (
                "items",
                BoxVal::list(
                    BoxVal::record([
                        ("kind", BoxVal::num(0.0, 1.0)),
                        ("cost", BoxVal::num(2.0, 9.0)),
                    ]),
                    1.0,
                    6.0,
                ),
            ),
        ]);
        let iv = bound_src(src, "latency_f", &b).unwrap();
        assert!(iv.is_finite(), "{iv:?}");
        let prog = crate::Program::parse(src).unwrap();
        for i in 0..=4 {
            let w = b.sample(i as f64 / 4.0).unwrap();
            let got = prog.call("latency_f", &[w]).unwrap().as_num().unwrap();
            assert!(
                iv.lo <= got && got <= iv.hi,
                "sample {i}: {got} outside {iv:?}"
            );
        }
    }
}
