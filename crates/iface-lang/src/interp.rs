//! Tree-walking interpreter for the interface language.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::builtins;
use crate::error::{LangError, Span};
use crate::value::Value;
use std::collections::HashMap;
use std::rc::Rc;

/// Execution limits protecting callers from runaway interfaces.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum number of evaluated expressions/statements.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: u32,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_steps: 10_000_000,
            max_depth: 256,
        }
    }
}

/// An interpreter instance bound to a program's AST.
pub struct Interp<'a> {
    prog: &'a Program,
    limits: Limits,
    steps: u64,
    depth: u32,
    consts: Rc<HashMap<String, Value>>,
}

/// Result of executing a statement list: either fall-through or an early
/// `return`.
enum Flow {
    Normal,
    Return(Value),
}

/// A lexical scope stack for one function activation. Scopes are
/// association vectors: interface functions have a handful of locals,
/// where linear probing beats hashing.
struct Frame {
    scopes: Vec<Vec<(String, Value)>>,
}

impl Frame {
    fn lookup(&self, name: &str) -> Option<&Value> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(k, _)| k == name).map(|(_, v)| v))
    }

    fn assign(&mut self, name: &str, v: Value) -> bool {
        for s in self.scopes.iter_mut().rev() {
            if let Some((_, slot)) = s.iter_mut().rev().find(|(k, _)| k == name) {
                *slot = v;
                return true;
            }
        }
        false
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.scopes
            .last_mut()
            .expect("frame has at least one scope")
            .push((name.to_string(), v));
    }
}

impl<'a> Interp<'a> {
    /// Creates an interpreter and evaluates top-level constants.
    pub fn new(prog: &'a Program, limits: Limits) -> Interp<'a> {
        Interp {
            prog,
            limits,
            steps: 0,
            depth: 0,
            consts: Rc::new(HashMap::new()),
        }
    }

    /// Creates an interpreter with pre-evaluated constants (callers
    /// that invoke the same program many times cache the result of
    /// [`eval_consts`] and skip re-evaluating initializers).
    pub fn with_consts(
        prog: &'a Program,
        limits: Limits,
        consts: Rc<HashMap<String, Value>>,
    ) -> Interp<'a> {
        Interp {
            prog,
            limits,
            steps: 0,
            depth: 0,
            consts,
        }
    }

    /// Calls function `name` with `args`.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, LangError> {
        self.eval_consts()?;
        self.call_fn(name, args.to_vec(), Span::default())
    }

    fn eval_consts(&mut self) -> Result<(), LangError> {
        if !self.consts.is_empty() || self.prog.consts.is_empty() {
            return Ok(());
        }
        self.consts = Rc::new(eval_consts(self.prog, self.limits)?);
        Ok(())
    }

    fn tick(&mut self, span: Span) -> Result<(), LangError> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            Err(LangError::LimitExceeded(format!(
                "step limit {} exceeded at {span}",
                self.limits.max_steps
            )))
        } else {
            Ok(())
        }
    }

    fn call_fn(&mut self, name: &str, args: Vec<Value>, span: Span) -> Result<Value, LangError> {
        let f = self.prog.function(name).ok_or_else(|| {
            LangError::runtime(span, format!("call to undefined function `{name}`"))
        })?;
        if args.len() != f.params.len() {
            return Err(LangError::runtime(
                span,
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    f.params.len(),
                    args.len()
                ),
            ));
        }
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            self.depth -= 1;
            return Err(LangError::LimitExceeded(format!(
                "call depth {} exceeded in `{name}`",
                self.limits.max_depth
            )));
        }
        let mut frame = Frame {
            scopes: vec![f.params.iter().cloned().zip(args).collect()],
        };
        let flow = self.exec_block(&f.body, &mut frame)?;
        self.depth -= 1;
        match flow {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Err(LangError::runtime(
                f.span,
                format!("function `{name}` finished without `return`"),
            )),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], frame: &mut Frame) -> Result<Flow, LangError> {
        frame.scopes.push(Vec::new());
        let mut flow = Flow::Normal;
        for s in stmts {
            flow = self.exec_stmt(s, frame)?;
            if matches!(flow, Flow::Return(_)) {
                break;
            }
        }
        frame.scopes.pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<Flow, LangError> {
        match stmt {
            Stmt::Let(name, init, span) => {
                self.tick(*span)?;
                let v = self.eval(init, frame)?;
                frame.declare(name, v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(name, e, span) => {
                self.tick(*span)?;
                let v = self.eval(e, frame)?;
                if frame.assign(name, v) {
                    Ok(Flow::Normal)
                } else {
                    Err(LangError::runtime(
                        *span,
                        format!("assignment to unbound variable `{name}`"),
                    ))
                }
            }
            Stmt::Return(e, span) => {
                self.tick(*span)?;
                Ok(Flow::Return(self.eval(e, frame)?))
            }
            Stmt::If(cond, then, els, span) => {
                self.tick(*span)?;
                let c = self.eval_bool(cond, frame)?;
                if c {
                    self.exec_block(then, frame)
                } else {
                    self.exec_block(els, frame)
                }
            }
            Stmt::For(var, iter, body, span) => {
                self.tick(*span)?;
                let list = self.eval(iter, frame)?;
                let items = list
                    .as_list()
                    .ok_or_else(|| {
                        LangError::runtime(
                            *span,
                            format!("`for` needs a list, got {}", list.type_name()),
                        )
                    })?
                    .to_vec();
                for item in items {
                    frame.scopes.push(Vec::new());
                    frame.declare(var, item);
                    let mut returned = None;
                    for s in body {
                        match self.exec_stmt(s, frame)? {
                            Flow::Normal => {}
                            Flow::Return(v) => {
                                returned = Some(v);
                                break;
                            }
                        }
                    }
                    frame.scopes.pop();
                    if let Some(v) = returned {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While(cond, body, span) => loop {
                self.tick(*span)?;
                if !self.eval_bool(cond, frame)? {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(body, frame)? {
                    Flow::Normal => {}
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            },
            Stmt::Expr(e, span) => {
                self.tick(*span)?;
                self.eval(e, frame)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn eval_bool(&mut self, e: &Expr, frame: &mut Frame) -> Result<bool, LangError> {
        let v = self.eval(e, frame)?;
        v.truthy().ok_or_else(|| {
            LangError::runtime(
                e.span(),
                format!("condition must be a bool, got {}", v.type_name()),
            )
        })
    }

    fn eval(&mut self, e: &Expr, frame: &mut Frame) -> Result<Value, LangError> {
        self.tick(e.span())?;
        match e {
            Expr::Num(n, _) => Ok(Value::num(*n)),
            Expr::Str(s, _) => Ok(Value::str(s.clone())),
            Expr::Bool(b, _) => Ok(Value::bool(*b)),
            Expr::Var(name, span) => frame
                .lookup(name)
                .or_else(|| self.consts.get(name))
                .cloned()
                .ok_or_else(|| LangError::runtime(*span, format!("undefined variable `{name}`"))),
            Expr::List(items, _) => {
                let mut out = Vec::with_capacity(items.len());
                for i in items {
                    out.push(self.eval(i, frame)?);
                }
                Ok(Value::list(out))
            }
            Expr::Record(fields, _) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, v) in fields {
                    out.push((k.clone(), self.eval(v, frame)?));
                }
                Ok(Value::record_owned(out))
            }
            Expr::Field(base, field, span) => {
                let b = self.eval(base, frame)?;
                b.field(field).cloned().ok_or_else(|| {
                    LangError::runtime(*span, format!("{} has no field `{field}`", b.type_name()))
                })
            }
            Expr::Index(base, idx, span) => {
                let b = self.eval(base, frame)?;
                let i = self.eval(idx, frame)?;
                let list = b.as_list().ok_or_else(|| {
                    LangError::runtime(*span, format!("cannot index into {}", b.type_name()))
                })?;
                let n = i.as_num().ok_or_else(|| {
                    LangError::runtime(
                        *span,
                        format!("index must be a number, got {}", i.type_name()),
                    )
                })?;
                if n < 0.0 || n.fract() != 0.0 || (n as usize) >= list.len() {
                    return Err(LangError::runtime(
                        *span,
                        format!("index {n} out of bounds for list of length {}", list.len()),
                    ));
                }
                Ok(list[n as usize].clone())
            }
            Expr::Call(name, args, span) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                if self.prog.function(name).is_some() {
                    self.call_fn(name, vals, *span)
                } else {
                    builtins::call(name, &vals, *span)
                }
            }
            Expr::Unary(op, inner, span) => {
                let v = self.eval(inner, frame)?;
                match op {
                    UnOp::Neg => v.as_num().map(|n| Value::num(-n)).ok_or_else(|| {
                        LangError::runtime(*span, format!("cannot negate {}", v.type_name()))
                    }),
                    UnOp::Not => v.as_bool().map(|b| Value::bool(!b)).ok_or_else(|| {
                        LangError::runtime(*span, format!("cannot apply `!` to {}", v.type_name()))
                    }),
                }
            }
            Expr::Binary(op, l, r, span) => self.eval_binary(*op, l, r, *span, frame),
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        span: Span,
        frame: &mut Frame,
    ) -> Result<Value, LangError> {
        // Short-circuit logical operators first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let lv = self.eval_bool(l, frame)?;
            return match (op, lv) {
                (BinOp::And, false) => Ok(Value::bool(false)),
                (BinOp::Or, true) => Ok(Value::bool(true)),
                _ => Ok(Value::bool(self.eval_bool(r, frame)?)),
            };
        }
        let lv = self.eval(l, frame)?;
        let rv = self.eval(r, frame)?;
        // Equality works on any pair of same-typed values.
        if matches!(op, BinOp::Eq | BinOp::Ne) {
            let eq = lv == rv;
            return Ok(Value::bool(if op == BinOp::Eq { eq } else { !eq }));
        }
        let (a, b) = match (lv.as_num(), rv.as_num()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(LangError::runtime(
                    span,
                    format!(
                        "numeric operator on {} and {}",
                        lv.type_name(),
                        rv.type_name()
                    ),
                ))
            }
        };
        Ok(match op {
            BinOp::Add => Value::num(a + b),
            BinOp::Sub => Value::num(a - b),
            BinOp::Mul => Value::num(a * b),
            BinOp::Div => Value::num(a / b),
            BinOp::Rem => Value::num(a % b),
            BinOp::Lt => Value::bool(a < b),
            BinOp::Le => Value::bool(a <= b),
            BinOp::Gt => Value::bool(a > b),
            BinOp::Ge => Value::bool(a >= b),
            BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or => unreachable!("handled above"),
        })
    }
}

/// Evaluates a program's top-level constants once, for caching by
/// repeat callers (e.g. the Petri engine's expression behaviors).
pub fn eval_consts(prog: &Program, limits: Limits) -> Result<HashMap<String, Value>, LangError> {
    let mut interp = Interp {
        prog,
        limits,
        steps: 0,
        depth: 0,
        consts: Rc::new(HashMap::new()),
    };
    let mut frame = Frame {
        scopes: vec![Vec::new()],
    };
    let mut out = HashMap::new();
    for c in &prog.consts {
        let v = interp.eval(&c.init, &mut frame)?;
        out.insert(c.name.clone(), v.clone());
        // Make earlier constants visible to later initializers.
        frame.declare(&c.name, v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program as Checked;

    fn run(src: &str, f: &str, args: &[Value]) -> Result<Value, LangError> {
        Checked::parse(src)?.call(f, args)
    }

    fn run_num(src: &str, f: &str, args: &[Value]) -> f64 {
        run(src, f, args).unwrap().as_num().unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run_num("fn f() { return 2 + 3 * 4; }", "f", &[]), 14.0);
        assert_eq!(run_num("fn f() { return (2 + 3) * 4; }", "f", &[]), 20.0);
        assert_eq!(run_num("fn f() { return 7 % 4; }", "f", &[]), 3.0);
        assert_eq!(run_num("fn f() { return -3 + 1; }", "f", &[]), -2.0);
    }

    #[test]
    fn division_by_zero_is_infinity_mid_expression_but_errors_at_boundary() {
        // Like the paper's Python programs, 1/0 is inf *inside* an
        // expression — `1/0 > 5` is a legitimate (true) comparison —
        // but an interface whose returned value is non-finite is a
        // runtime error at the call boundary, not a prediction.
        assert_eq!(
            run("fn f() { return 1 / 0 > 5; }", "f", &[]).unwrap(),
            Value::bool(true)
        );
        let err = run("fn f() { return 1 / 0; }", "f", &[]).unwrap_err();
        assert!(matches!(err, LangError::Runtime { .. }), "got {err:?}");
        assert!(err.to_string().contains("non-finite"), "got {err}");
        // NaN and nested non-finite values are caught too.
        assert!(run("fn f() { return 0 / 0; }", "f", &[]).is_err());
        let err = run("fn f() { return [1, 2 / 0]; }", "f", &[]).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn let_assign_and_scoping() {
        let src = "fn f() { let x = 1; if true { x = x + 10; } return x; }";
        assert_eq!(run_num(src, "f", &[]), 11.0);
    }

    #[test]
    fn for_loop_accumulates() {
        let src = "fn f(xs) { let s = 0; for x in xs { s = s + x; } return s; }";
        let xs = Value::list(vec![Value::num(1.0), Value::num(2.0), Value::num(3.0)]);
        assert_eq!(run_num(src, "f", &[xs]), 6.0);
    }

    #[test]
    fn for_loop_early_return() {
        let src = "fn f(xs) { for x in xs { if x > 1 { return x; } } return 0; }";
        let xs = Value::list(vec![Value::num(1.0), Value::num(5.0), Value::num(9.0)]);
        assert_eq!(run_num(src, "f", &[xs]), 5.0);
    }

    #[test]
    fn while_loop() {
        let src =
            "fn f(n) { let i = 0; let s = 0; while i < n { s = s + i; i = i + 1; } return s; }";
        assert_eq!(run_num(src, "f", &[Value::num(5.0)]), 10.0);
    }

    #[test]
    fn recursion_with_records() {
        // The Protoacc read_cost shape from the paper's Fig. 3.
        let src = "fn rc(m) { let c = 0; for s in m.subs { c = c + rc(s); } return c + ceil(m.nf / 32); }";
        let leaf = Value::record([("subs", Value::list(vec![])), ("nf", Value::num(40.0))]);
        let root = Value::record([
            ("subs", Value::list(vec![leaf.clone(), leaf])),
            ("nf", Value::num(10.0)),
        ]);
        assert_eq!(run_num(src, "rc", &[root]), 2.0 + 2.0 + 1.0);
    }

    #[test]
    fn consts_evaluated_in_order() {
        let src = "const A = 2; const B = A * 3; fn f() { return B; }";
        assert_eq!(run_num(src, "f", &[]), 6.0);
    }

    #[test]
    fn short_circuit_semantics() {
        // The right operand would error (1/0 is inf but `inf > 0` is a
        // valid bool, so use a type error instead: `!1` is invalid).
        let src = "fn f() { return false && !1; }";
        assert_eq!(run(src, "f", &[]).unwrap(), Value::bool(false));
        let src = "fn g() { return true || !1; }";
        assert_eq!(run(src, "g", &[]).unwrap(), Value::bool(true));
    }

    #[test]
    fn equality_on_structures() {
        let src = "fn f(a, b) { return a == b; }";
        let l1 = Value::list(vec![Value::num(1.0)]);
        let l2 = Value::list(vec![Value::num(1.0)]);
        assert_eq!(run(src, "f", &[l1, l2]).unwrap(), Value::bool(true));
    }

    #[test]
    fn index_and_bounds() {
        let src = "fn f(xs) { return xs[1]; }";
        let xs = Value::list(vec![Value::num(10.0), Value::num(20.0)]);
        assert_eq!(run_num(src, "f", std::slice::from_ref(&xs)), 20.0);
        let bad = "fn f(xs) { return xs[5]; }";
        assert!(run(bad, "f", &[xs]).is_err());
    }

    #[test]
    fn missing_field_is_runtime_error() {
        let src = "fn f(m) { return m.nope; }";
        let m = Value::record([("a", Value::num(1.0))]);
        assert!(matches!(
            run(src, "f", &[m]),
            Err(LangError::Runtime { .. })
        ));
    }

    #[test]
    fn missing_return_is_error() {
        let src = "fn f() { let x = 1; }";
        assert!(run(src, "f", &[]).is_err());
    }

    #[test]
    fn wrong_arity_at_call_time() {
        let src = "fn f(x) { return x; }";
        assert!(run(src, "f", &[]).is_err());
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let src = "fn f() { while true { let x = 1; } return 0; }";
        let p = Checked::parse(src).unwrap();
        let r = p.call_with_limits(
            "f",
            &[],
            Limits {
                max_steps: 10_000,
                max_depth: 16,
            },
        );
        assert!(matches!(r, Err(LangError::LimitExceeded(_))));
    }

    #[test]
    fn depth_limit_stops_runaway_recursion() {
        let src = "fn f(x) { return f(x); }";
        let p = Checked::parse(src).unwrap();
        let r = p.call_with_limits(
            "f",
            &[Value::num(0.0)],
            Limits {
                max_steps: 1_000_000,
                max_depth: 32,
            },
        );
        assert!(matches!(r, Err(LangError::LimitExceeded(_))));
    }

    #[test]
    fn record_and_list_literals() {
        let src = "fn f() { let r = { a: 1, b: [2, 3] }; return r.a + r.b[1]; }";
        assert_eq!(run_num(src, "f", &[]), 4.0);
    }

    #[test]
    fn paper_fig2_jpeg_formula() {
        // The exact Fig. 2 formula, transliterated.
        let src = "fn latency_jpeg_decode(img) {
            let size = img.orig_size / 64;
            return max(size * 136.5, size / 64 * ((5 / img.compress_rate) * 3 + 6) * 1.5);
        }
        fn tput_jpeg_decode(img) { return 1 / latency_jpeg_decode(img); }";
        let img = Value::record([
            ("orig_size", Value::num(64000.0)),
            ("compress_rate", Value::num(10.0)),
        ]);
        let lat = run_num(src, "latency_jpeg_decode", std::slice::from_ref(&img));
        assert_eq!(
            lat,
            (1000.0f64 * 136.5).max(1000.0 / 64.0 * ((5.0 / 10.0) * 3.0 + 6.0) * 1.5)
        );
        let tput = run_num(src, "tput_jpeg_decode", &[img]);
        assert!((tput - 1.0 / lat).abs() < 1e-15);
    }
}
