//! Errors and source positions for the interface language.

use core::fmt;

/// A half-open byte range in the source, with line/column of its start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line and column.
    pub fn at(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error raised while lexing, parsing, checking or running a PIL
/// program.
#[derive(Clone, Debug, PartialEq)]
pub enum LangError {
    /// Lexical error: unexpected character or malformed literal.
    Lex {
        /// Where the error occurred.
        span: Span,
        /// What went wrong.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// Where the error occurred.
        span: Span,
        /// What went wrong.
        msg: String,
    },
    /// Static check failure (duplicate function, undefined name, ...).
    Check {
        /// Where the error occurred.
        span: Span,
        /// What went wrong.
        msg: String,
    },
    /// Runtime error (type mismatch, missing field, division by zero is
    /// permitted and yields `inf`, but calling a number is not).
    Runtime {
        /// Where the error occurred.
        span: Span,
        /// What went wrong.
        msg: String,
    },
    /// The interpreter hit its step or recursion limit.
    LimitExceeded(String),
}

impl LangError {
    /// Convenience constructor for runtime errors.
    pub fn runtime(span: Span, msg: impl Into<String>) -> LangError {
        LangError::Runtime {
            span,
            msg: msg.into(),
        }
    }

    /// The stable diagnostic code for this error class (`PILR0x` —
    /// runtime-family codes, disjoint from the `PIL0xx` static lints).
    pub fn code(&self) -> &'static str {
        match self {
            LangError::Lex { .. } => "PILR01",
            LangError::Parse { .. } => "PILR02",
            LangError::Check { .. } => "PILR03",
            LangError::Runtime { .. } => "PILR04",
            LangError::LimitExceeded(_) => "PILR05",
        }
    }

    /// Renders this error as a structured [`perf_core::diag::Diagnostic`]
    /// attributed to `origin` (typically the `.pi` asset path), so
    /// interpreter failures flow through the same reporting pipeline as
    /// static lints.
    pub fn to_diagnostic(&self, origin: &str) -> perf_core::diag::Diagnostic {
        let d =
            perf_core::diag::Diagnostic::error(self.code(), self.to_string()).with_origin(origin);
        match self {
            LangError::Lex { span, .. }
            | LangError::Parse { span, .. }
            | LangError::Check { span, .. }
            | LangError::Runtime { span, .. } => d.with_pos(span.line, span.col),
            LangError::LimitExceeded(_) => d,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { span, msg } => write!(f, "lex error at {span}: {msg}"),
            LangError::Parse { span, msg } => write!(f, "parse error at {span}: {msg}"),
            LangError::Check { span, msg } => write!(f, "check error at {span}: {msg}"),
            LangError::Runtime { span, msg } => write!(f, "runtime error at {span}: {msg}"),
            LangError::LimitExceeded(msg) => write!(f, "limit exceeded: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::Parse {
            span: Span::at(3, 14),
            msg: "expected `)`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:14: expected `)`");
    }

    #[test]
    fn runtime_constructor() {
        let e = LangError::runtime(Span::at(1, 1), "boom");
        assert!(matches!(e, LangError::Runtime { .. }));
    }
}
