//! `pil` — command-line tooling for interface programs.
//!
//! ```text
//! pil check FILE                # parse + static checks
//! pil lint FILE [--json]        # all static checks + perf-lint analyses
//! pil verify FILE [--json]      # compile to bytecode + run the verifier
//! pil fmt FILE                  # canonical formatting to stdout
//! pil run FILE FUNC [ARG...]    # evaluate a function
//! ```
//!
//! Arguments are numbers (`42`, `3.5`) or records
//! (`orig_size=65536,compress_rate=8`).
//!
//! Malformed inputs are reported as rendered diagnostics with exit
//! code 1; the tool never panics on user-supplied files.

use perf_core::diag::{Diagnostic, Diagnostics};
use perf_iface_lang::{check, lexer, lint, parser, printer, vm, LangError, Program, Value};

/// Full help text: every subcommand with every flag. The `--help`
/// output and the short usage line are kept in sync by the
/// `help_mentions_every_subcommand` integration test.
const HELP: &str = "\
pil — command-line tooling for interface programs

usage:
  pil check FILE               parse + static checks
  pil lint FILE [--json]       all static checks + perf-lint analyses;
                               --json renders diagnostics as JSON;
                               exit 1 on errors
  pil verify FILE [--json]     compile to bytecode and run the machine-
                               level verifier (PBC codes: stack balance,
                               jump targets, operand kinds); exit 1 on
                               errors
  pil fmt FILE                 canonical formatting to stdout
  pil run FILE FUNC [ARG...]   evaluate a function; arguments are
                               numbers (42, 3.5), booleans, or records
                               (orig_size=65536,compress_rate=8)
  pil --help                   this text
";

fn usage() -> ! {
    eprintln!(
        "usage: pil check FILE | pil lint FILE [--json] | pil verify FILE [--json] \
         | pil fmt FILE | pil run FILE FUNC [ARG...] | pil --help"
    );
    std::process::exit(2);
}

/// Renders a single load-time diagnostic and exits with code 1.
fn fail(d: Diagnostic, json: bool) -> ! {
    let mut ds = Diagnostics::new();
    ds.push(d);
    if json {
        println!("{}", ds.render_json());
    } else {
        eprint!("{}", ds.render());
    }
    std::process::exit(1);
}

fn read(path: &str, json: bool) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        fail(
            Diagnostic::error("PIL011", format!("cannot read file: {e}")).with_origin(path),
            json,
        )
    })
}

/// Turns a lex/parse/check failure into the corresponding diagnostic.
fn lang_diag(path: &str, e: &LangError) -> Diagnostic {
    let (code, span, msg) = match e {
        LangError::Lex { span, msg } | LangError::Parse { span, msg } => ("PIL012", *span, msg),
        LangError::Check { span, msg } => ("PIL005", *span, msg),
        other => {
            return Diagnostic::error("PIL012", other.to_string()).with_origin(path);
        }
    };
    Diagnostic::error(code, msg.clone())
        .with_origin(path)
        .with_pos(span.line, span.col)
}

fn load(path: &str) -> Program {
    let src = read(path, false);
    Program::parse(&src).unwrap_or_else(|e| fail(lang_diag(path, &e), false))
}

fn parse_arg(raw: &str) -> Value {
    if let Ok(n) = raw.parse::<f64>() {
        return Value::num(n);
    }
    if raw == "true" || raw == "false" {
        return Value::bool(raw == "true");
    }
    // Record syntax: k=v,k=v with numeric values.
    let mut fields = Vec::new();
    for pair in raw.split(',') {
        let Some((k, v)) = pair.split_once('=') else {
            eprintln!("pil: cannot parse argument `{raw}` (want NUMBER or k=v,k=v)");
            std::process::exit(2);
        };
        let Ok(n) = v.parse::<f64>() else {
            eprintln!("pil: field `{k}` has non-numeric value `{v}`");
            std::process::exit(2);
        };
        fields.push((k.to_string(), Value::num(n)));
    }
    Value::record_owned(fields)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") => {
            print!("{HELP}");
        }
        Some("check") if args.len() == 2 => {
            let p = load(&args[1]);
            let fns: Vec<&str> = p.ast().functions.iter().map(|f| f.name.as_str()).collect();
            println!(
                "{}: ok ({} consts, {} functions: {})",
                args[1],
                p.ast().consts.len(),
                fns.len(),
                fns.join(", ")
            );
        }
        Some("lint") if args.len() >= 2 => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let json = rest.iter().any(|a| a == "--json");
            rest.retain(|a| a != "--json");
            let [path] = rest.as_slice() else { usage() };
            let src = read(path, json);
            // Lex + parse directly (not `Program::parse`) so the
            // accumulating checker reports every name error at once
            // instead of stopping at the first.
            let toks = lexer::lex(&src).unwrap_or_else(|e| fail(lang_diag(path, &e), json));
            let ast = parser::parse(&toks).unwrap_or_else(|e| fail(lang_diag(path, &e), json));
            let mut ds = check::diagnostics(&ast);
            ds.merge(lint::lint(&ast));
            ds.set_origin(path);
            ds.sort();
            if json {
                println!("{}", ds.render_json());
            } else {
                print!("{}", ds.render());
            }
            if ds.has_errors() {
                std::process::exit(1);
            }
        }
        Some("verify") if args.len() >= 2 => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let json = rest.iter().any(|a| a == "--json");
            rest.retain(|a| a != "--json");
            let [path] = rest.as_slice() else { usage() };
            let src = read(path, json);
            let p = Program::parse(&src).unwrap_or_else(|e| fail(lang_diag(path, &e), json));
            let compiled = vm::CompiledProgram::compile(&p)
                .unwrap_or_else(|e| fail(lang_diag(path, &e), json));
            let mut ds = compiled.verify();
            ds.set_origin(path);
            ds.sort();
            if json {
                println!("{}", ds.render_json());
            } else if ds.items().is_empty() {
                println!(
                    "{path}: bytecode verified ({} functions)",
                    p.ast().functions.len()
                );
            } else {
                print!("{}", ds.render());
            }
            if ds.has_errors() {
                std::process::exit(1);
            }
        }
        Some("fmt") if args.len() == 2 => {
            let p = load(&args[1]);
            print!("{}", printer::print_program(p.ast()));
        }
        Some("run") if args.len() >= 3 => {
            let p = load(&args[1]);
            let vals: Vec<Value> = args[3..].iter().map(|a| parse_arg(a)).collect();
            match p.call(&args[2], &vals) {
                Ok(v) => println!("{v}"),
                Err(e) => {
                    eprintln!("pil: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
