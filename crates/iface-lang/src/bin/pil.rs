//! `pil` — command-line tooling for interface programs.
//!
//! ```text
//! pil check FILE                # parse + static checks
//! pil fmt FILE                  # canonical formatting to stdout
//! pil run FILE FUNC [ARG...]    # evaluate a function
//! ```
//!
//! Arguments are numbers (`42`, `3.5`) or records
//! (`orig_size=65536,compress_rate=8`).

use perf_iface_lang::{printer, Program, Value};

fn usage() -> ! {
    eprintln!("usage: pil check FILE | pil fmt FILE | pil run FILE FUNC [ARG...]");
    std::process::exit(2);
}

fn load(path: &str) -> Program {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("pil: cannot read {path}: {e}");
        std::process::exit(1);
    });
    Program::parse(&src).unwrap_or_else(|e| {
        eprintln!("pil: {path}: {e}");
        std::process::exit(1);
    })
}

fn parse_arg(raw: &str) -> Value {
    if let Ok(n) = raw.parse::<f64>() {
        return Value::num(n);
    }
    if raw == "true" || raw == "false" {
        return Value::bool(raw == "true");
    }
    // Record syntax: k=v,k=v with numeric values.
    let mut fields = Vec::new();
    for pair in raw.split(',') {
        let Some((k, v)) = pair.split_once('=') else {
            eprintln!("pil: cannot parse argument `{raw}` (want NUMBER or k=v,k=v)");
            std::process::exit(2);
        };
        let Ok(n) = v.parse::<f64>() else {
            eprintln!("pil: field `{k}` has non-numeric value `{v}`");
            std::process::exit(2);
        };
        fields.push((k.to_string(), Value::num(n)));
    }
    Value::record_owned(fields)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") if args.len() == 2 => {
            let p = load(&args[1]);
            let fns: Vec<&str> = p.ast().functions.iter().map(|f| f.name.as_str()).collect();
            println!(
                "{}: ok ({} consts, {} functions: {})",
                args[1],
                p.ast().consts.len(),
                fns.len(),
                fns.join(", ")
            );
        }
        Some("fmt") if args.len() == 2 => {
            let p = load(&args[1]);
            print!("{}", printer::print_program(p.ast()));
        }
        Some("run") if args.len() >= 3 => {
            let p = load(&args[1]);
            let vals: Vec<Value> = args[3..].iter().map(|a| parse_arg(a)).collect();
            match p.call(&args[2], &vals) {
                Ok(v) => println!("{v}"),
                Err(e) => {
                    eprintln!("pil: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
