//! Abstract syntax tree of the interface language.

use crate::error::Span;

/// Binary operators, grouped by precedence in the parser.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuiting)
    And,
    /// `||` (short-circuiting)
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression node.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64, Span),
    /// String literal.
    Str(String, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Variable reference.
    Var(String, Span),
    /// `[a, b, c]` list literal.
    List(Vec<Expr>, Span),
    /// `{ k: v, ... }` record literal.
    Record(Vec<(String, Expr)>, Span),
    /// Field access `e.field`.
    Field(Box<Expr>, String, Span),
    /// Indexing `e[i]`.
    Index(Box<Expr>, Box<Expr>, Span),
    /// Function or builtin call `f(a, b)`.
    Call(String, Vec<Expr>, Span),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    /// The source position of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Num(_, s)
            | Expr::Str(_, s)
            | Expr::Bool(_, s)
            | Expr::Var(_, s)
            | Expr::List(_, s)
            | Expr::Record(_, s)
            | Expr::Field(_, _, s)
            | Expr::Index(_, _, s)
            | Expr::Call(_, _, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s) => *s,
        }
    }
}

/// A statement node.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let name = expr;` — introduces a new local binding.
    Let(String, Expr, Span),
    /// `name = expr;` — assigns to an existing binding.
    Assign(String, Expr, Span),
    /// `return expr;`
    Return(Expr, Span),
    /// `if cond { .. } else { .. }` (else optional).
    If(Expr, Vec<Stmt>, Vec<Stmt>, Span),
    /// `for x in expr { .. }` — iterates a list.
    For(String, Expr, Vec<Stmt>, Span),
    /// `while cond { .. }`.
    While(Expr, Vec<Stmt>, Span),
    /// A bare expression statement (evaluated for effect/errors).
    Expr(Expr, Span),
}

/// A function declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Position of the `fn` keyword.
    pub span: Span,
}

/// A `const NAME = expr;` declaration at the top level. Constants are
/// evaluated once before any call, in declaration order; later constants
/// may reference earlier ones.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstDecl {
    /// Constant name.
    pub name: String,
    /// Initializer expression.
    pub init: Expr,
    /// Position of the `const` keyword.
    pub span: Span,
}

/// A complete interface program: constants plus functions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Top-level constants.
    pub consts: Vec<ConstDecl>,
    /// Function declarations.
    pub functions: Vec<FnDecl>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDecl> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accessors() {
        let s = Span::at(2, 5);
        let e = Expr::Num(1.0, s);
        assert_eq!(e.span(), s);
        let e2 = Expr::Binary(BinOp::Add, Box::new(e.clone()), Box::new(e), s);
        assert_eq!(e2.span(), s);
    }

    #[test]
    fn program_function_lookup() {
        let p = Program {
            consts: vec![],
            functions: vec![FnDecl {
                name: "f".into(),
                params: vec![],
                body: vec![],
                span: Span::default(),
            }],
        };
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
    }
}
