//! Pretty-printer: AST back to canonical PIL source.
//!
//! Interfaces are artifacts that get diffed, reviewed and versioned;
//! a canonical printer lets tools normalize them. `parse(print(ast))`
//! is the identity on ASTs (checked by property tests).

use crate::ast::{BinOp, ConstDecl, Expr, FnDecl, Program, Stmt, UnOp};

/// Renders a program as canonical source text.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for c in &p.consts {
        out.push_str(&print_const(c));
        out.push('\n');
    }
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 || !p.consts.is_empty() {
            out.push('\n');
        }
        out.push_str(&print_fn(f));
    }
    out
}

fn print_const(c: &ConstDecl) -> String {
    format!("const {} = {};", c.name, print_expr(&c.init))
}

fn print_fn(f: &FnDecl) -> String {
    let mut out = format!("fn {}({}) {{\n", f.name, f.params.join(", "));
    for s in &f.body {
        print_stmt(s, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match s {
        Stmt::Let(name, e, _) => {
            out.push_str(&format!("let {name} = {};\n", print_expr(e)));
        }
        Stmt::Assign(name, e, _) => {
            out.push_str(&format!("{name} = {};\n", print_expr(e)));
        }
        Stmt::Return(e, _) => {
            out.push_str(&format!("return {};\n", print_expr(e)));
        }
        Stmt::Expr(e, _) => {
            out.push_str(&format!("{};\n", print_expr(e)));
        }
        Stmt::If(c, then, els, _) => {
            out.push_str(&format!("if {} {{\n", print_expr(c)));
            for t in then {
                print_stmt(t, depth + 1, out);
            }
            indent(depth, out);
            out.push('}');
            if !els.is_empty() {
                out.push_str(" else {\n");
                for e in els {
                    print_stmt(e, depth + 1, out);
                }
                indent(depth, out);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::For(v, iter, body, _) => {
            out.push_str(&format!("for {v} in {} {{\n", print_expr(iter)));
            for b in body {
                print_stmt(b, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::While(c, body, _) => {
            out.push_str(&format!("while {} {{\n", print_expr(c)));
            for b in body {
                print_stmt(b, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
    }
}

/// Renders an expression, fully parenthesized where nesting occurs so
/// the output re-parses to the identical AST regardless of precedence.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Num(n, _) => {
            if n.fract() == 0.0 && n.abs() < 1e15 && *n >= 0.0 {
                format!("{}", *n as i64)
            } else {
                format!("{n:?}")
            }
        }
        Expr::Str(s, _) => format!("{s:?}"),
        Expr::Bool(b, _) => format!("{b}"),
        Expr::Var(v, _) => v.clone(),
        Expr::List(items, _) => {
            let inner: Vec<String> = items.iter().map(print_expr).collect();
            format!("[{}]", inner.join(", "))
        }
        Expr::Record(fields, _) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{k}: {}", print_expr(v)))
                .collect();
            format!("{{ {} }}", inner.join(", "))
        }
        Expr::Field(base, f, _) => format!("{}.{f}", print_postfix_base(base)),
        Expr::Index(base, i, _) => {
            format!("{}[{}]", print_postfix_base(base), print_expr(i))
        }
        Expr::Call(name, args, _) => {
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", inner.join(", "))
        }
        Expr::Unary(op, inner, _) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("({sym}{})", print_expr(inner))
        }
        Expr::Binary(op, l, r, _) => {
            format!("({} {} {})", print_expr(l), bin_sym(*op), print_expr(r))
        }
    }
}

/// Postfix bases (field/index) need parentheses unless they are already
/// primary expressions.
fn print_postfix_base(e: &Expr) -> String {
    match e {
        Expr::Var(..)
        | Expr::Field(..)
        | Expr::Index(..)
        | Expr::Call(..)
        | Expr::List(..)
        | Expr::Record(..) => print_expr(e),
        other => format!("({})", print_expr(other)),
    }
}

fn bin_sym(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser};

    fn strip_spans_prog(p: &Program) -> String {
        // Compare via re-printing: two ASTs equal iff their canonical
        // prints are equal (spans are not printed).
        print_program(p)
    }

    fn roundtrip(src: &str) {
        let ast1 = parser::parse(&lexer::lex(src).expect("lexes")).expect("parses");
        let printed = print_program(&ast1);
        let ast2 = parser::parse(&lexer::lex(&printed).expect("re-lexes"))
            .unwrap_or_else(|e| panic!("printed source must re-parse: {e}\n{printed}"));
        assert_eq!(
            strip_spans_prog(&ast1),
            strip_spans_prog(&ast2),
            "print->parse->print must be stable"
        );
    }

    #[test]
    fn roundtrips_shipped_interfaces() {
        // Every .pi artifact in the workspace must round-trip.
        roundtrip(include_str!("../../accel-jpeg/assets/jpeg.pi"));
        roundtrip(include_str!("../../accel-bitcoin/assets/bitcoin.pi"));
        roundtrip(include_str!("../../accel-protoacc/assets/protoacc.pi"));
        roundtrip(include_str!("../../accel-vta/assets/vta.pi"));
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "const A = 2;\nfn f(xs, y) { let s = 0; for x in xs { if x > y { s = s + x; } \
             else if x == y { s = s + 1; } else { s = s - 1; } } while s > 100 { s = s / 2; } \
             return s; }",
        );
    }

    #[test]
    fn precedence_preserved() {
        let src = "fn f() { return 1 + 2 * 3 - 4 / 5; }";
        let ast = parser::parse(&lexer::lex(src).unwrap()).unwrap();
        let printed = print_program(&ast);
        let ast2 = parser::parse(&lexer::lex(&printed).unwrap()).unwrap();
        // Evaluate both to check semantic equality.
        let p1 = crate::Program::parse(src).unwrap();
        let p2 = crate::Program::parse(&printed).unwrap();
        assert_eq!(p1.call("f", &[]).unwrap(), p2.call("f", &[]).unwrap());
        assert_eq!(print_program(&ast), print_program(&ast2));
    }

    #[test]
    fn literals_printed_canonically() {
        roundtrip("fn f() { return [1, 2.5, true, \"a\\nb\"]; }");
        roundtrip("fn f() { return { a: 1, b: [2], c: { d: 3 } }; }");
        roundtrip("fn f(t) { return (-t.x)[0]; }");
    }
}
