//! Lexer for the interface language.

use crate::error::{LangError, Span};

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Numeric literal (all numbers are `f64`).
    Num(f64),
    /// String literal.
    Str(String),
    /// Identifier.
    Ident(String),
    /// `fn` keyword.
    Fn,
    /// `let` keyword.
    Let,
    /// `const` keyword.
    Const,
    /// `return` keyword.
    Return,
    /// `if` keyword.
    If,
    /// `else` keyword.
    Else,
    /// `for` keyword.
    For,
    /// `in` keyword.
    In,
    /// `while` keyword.
    While,
    /// `true` literal.
    True,
    /// `false` literal.
    False,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `.`.
    Dot,
    /// `:`.
    Colon,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Position of the token's first character.
    pub span: Span,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }
}

/// Lexes PIL source into tokens (ending with [`Tok::Eof`]).
///
/// Comments run from `#` to end of line. Whitespace is insignificant.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match cur.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    cur.bump();
                }
                Some(b'#') => {
                    while let Some(c) = cur.peek() {
                        if c == b'\n' {
                            break;
                        }
                        cur.bump();
                    }
                }
                _ => break,
            }
        }
        let span = cur.span();
        let Some(c) = cur.peek() else {
            out.push(Token {
                tok: Tok::Eof,
                span,
            });
            return Ok(out);
        };
        let tok = match c {
            b'0'..=b'9' => lex_number(&mut cur)?,
            b'"' => lex_string(&mut cur)?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => lex_ident(&mut cur),
            _ => lex_symbol(&mut cur)?,
        };
        out.push(Token { tok, span });
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> Result<Tok, LangError> {
    let span = cur.span();
    let start = cur.pos;
    while matches!(cur.peek(), Some(b'0'..=b'9')) {
        cur.bump();
    }
    if cur.peek() == Some(b'.') && matches!(cur.peek2(), Some(b'0'..=b'9')) {
        cur.bump();
        while matches!(cur.peek(), Some(b'0'..=b'9')) {
            cur.bump();
        }
    }
    if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
        // Exponent: `e`, optional sign, at least one digit.
        let save = (cur.pos, cur.line, cur.col);
        cur.bump();
        if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
            cur.bump();
        }
        if matches!(cur.peek(), Some(b'0'..=b'9')) {
            while matches!(cur.peek(), Some(b'0'..=b'9')) {
                cur.bump();
            }
        } else {
            (cur.pos, cur.line, cur.col) = save;
        }
    }
    let text = core::str::from_utf8(&cur.src[start..cur.pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Tok::Num)
        .map_err(|e| LangError::Lex {
            span,
            msg: format!("bad number `{text}`: {e}"),
        })
}

fn lex_string(cur: &mut Cursor<'_>) -> Result<Tok, LangError> {
    let span = cur.span();
    cur.bump(); // Opening quote.
    let mut s = String::new();
    loop {
        match cur.bump() {
            Some(b'"') => return Ok(Tok::Str(s)),
            Some(b'\\') => match cur.bump() {
                Some(b'n') => s.push('\n'),
                Some(b't') => s.push('\t'),
                Some(b'"') => s.push('"'),
                Some(b'\\') => s.push('\\'),
                other => {
                    return Err(LangError::Lex {
                        span,
                        msg: format!("bad escape `\\{}`", other.map(|c| c as char).unwrap_or(' ')),
                    })
                }
            },
            Some(c) => s.push(c as char),
            None => {
                return Err(LangError::Lex {
                    span,
                    msg: "unterminated string literal".into(),
                })
            }
        }
    }
}

fn lex_ident(cur: &mut Cursor<'_>) -> Tok {
    let start = cur.pos;
    while matches!(
        cur.peek(),
        Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
    ) {
        cur.bump();
    }
    let text = core::str::from_utf8(&cur.src[start..cur.pos]).expect("ascii ident");
    match text {
        "fn" => Tok::Fn,
        "let" => Tok::Let,
        "const" => Tok::Const,
        "return" => Tok::Return,
        "if" => Tok::If,
        "else" => Tok::Else,
        "for" => Tok::For,
        "in" => Tok::In,
        "while" => Tok::While,
        "true" => Tok::True,
        "false" => Tok::False,
        _ => Tok::Ident(text.to_string()),
    }
}

fn lex_symbol(cur: &mut Cursor<'_>) -> Result<Tok, LangError> {
    let span = cur.span();
    let c = cur.bump().expect("peeked");
    let two = |cur: &mut Cursor<'_>, next: u8, yes: Tok, no: Tok| {
        if cur.peek() == Some(next) {
            cur.bump();
            yes
        } else {
            no
        }
    };
    let tok = match c {
        b'(' => Tok::LParen,
        b')' => Tok::RParen,
        b'{' => Tok::LBrace,
        b'}' => Tok::RBrace,
        b'[' => Tok::LBracket,
        b']' => Tok::RBracket,
        b',' => Tok::Comma,
        b';' => Tok::Semi,
        b'.' => Tok::Dot,
        b':' => Tok::Colon,
        b'+' => Tok::Plus,
        b'-' => Tok::Minus,
        b'*' => Tok::Star,
        b'/' => Tok::Slash,
        b'%' => Tok::Percent,
        b'=' => two(cur, b'=', Tok::Eq, Tok::Assign),
        b'!' => two(cur, b'=', Tok::Ne, Tok::Bang),
        b'<' => two(cur, b'=', Tok::Le, Tok::Lt),
        b'>' => two(cur, b'=', Tok::Ge, Tok::Gt),
        b'&' => {
            if cur.peek() == Some(b'&') {
                cur.bump();
                Tok::AndAnd
            } else {
                return Err(LangError::Lex {
                    span,
                    msg: "expected `&&`".into(),
                });
            }
        }
        b'|' => {
            if cur.peek() == Some(b'|') {
                cur.bump();
                Tok::OrOr
            } else {
                return Err(LangError::Lex {
                    span,
                    msg: "expected `||`".into(),
                });
            }
        }
        other => {
            return Err(LangError::Lex {
                span,
                msg: format!("unexpected character `{}`", other as char),
            })
        }
    };
    Ok(tok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("1 2.5 136.5 1e3 2.5e-2"),
            vec![
                Tok::Num(1.0),
                Tok::Num(2.5),
                Tok::Num(136.5),
                Tok::Num(1000.0),
                Tok::Num(0.025),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn number_then_dot_field() {
        // `1.foo` must lex as Num(1), Dot, Ident — not a malformed float.
        assert_eq!(
            kinds("1.foo"),
            vec![Tok::Num(1.0), Tok::Dot, Tok::Ident("foo".into()), Tok::Eof]
        );
    }

    #[test]
    fn lex_keywords_and_idents() {
        assert_eq!(
            kinds("fn foo let in4"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::Let,
                Tok::Ident("in4".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("== != <= >= < > && || ! = + - * / %"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Assign,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_and_positions_tracked() {
        let toks = lex("# line one\n  x").unwrap();
        assert_eq!(toks[0].tok, Tok::Ident("x".into()));
        assert_eq!(toks[0].span, Span::at(2, 3));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#), vec![Tok::Str("a\nb".into()), Tok::Eof]);
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn bad_characters_rejected() {
        assert!(lex("@").is_err());
        assert!(lex("&").is_err());
        assert!(lex("|x").is_err());
    }
}
