//! Checks that `pil --help` and the short usage line stay in sync
//! with the actual subcommand surface — PR 3 added `lint` flags that
//! the usage text missed, and this test makes that class of drift a
//! build failure.

use std::process::Command;

const SUBCOMMANDS: [&str; 5] = ["check", "lint", "verify", "fmt", "run"];

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pil"))
        .args(args)
        .output()
        .expect("spawn pil")
}

#[test]
fn help_mentions_every_subcommand() {
    let out = run(&["--help"]);
    assert!(out.status.success(), "--help should exit 0");
    let text = String::from_utf8(out.stdout).expect("utf8 help");
    for sub in SUBCOMMANDS {
        assert!(
            text.contains(&format!("pil {sub} ")),
            "help omits subcommand `{sub}`:\n{text}"
        );
    }
    assert!(
        text.contains("--json"),
        "help omits lint flag `--json`:\n{text}"
    );
}

#[test]
fn short_usage_mentions_every_subcommand_and_lint_flags() {
    let out = run(&["no-such-subcommand"]);
    assert_eq!(out.status.code(), Some(2), "bad args should exit 2");
    let text = String::from_utf8(out.stderr).expect("utf8 usage");
    for sub in SUBCOMMANDS {
        assert!(
            text.contains(&format!("pil {sub} ")),
            "usage omits subcommand `{sub}`:\n{text}"
        );
    }
    assert!(
        text.contains("--json"),
        "usage omits lint flag `--json`:\n{text}"
    );
}

#[test]
fn help_aliases_agree() {
    let long = run(&["--help"]);
    for alias in ["-h", "help"] {
        let out = run(&[alias]);
        assert!(out.status.success(), "`{alias}` should exit 0");
        assert_eq!(out.stdout, long.stdout, "`{alias}` differs from --help");
    }
}
