//! Property tests for the interface language: random arithmetic
//! expressions must evaluate exactly like their direct Rust
//! counterparts, and the front end must never panic on junk input.

use perf_iface_lang::{Program, Value};
use proptest::prelude::*;

/// A random arithmetic expression, as source text and expected value.
#[derive(Clone, Debug)]
enum Ast {
    Num(f64),
    Add(Box<Ast>, Box<Ast>),
    Sub(Box<Ast>, Box<Ast>),
    Mul(Box<Ast>, Box<Ast>),
    Min(Box<Ast>, Box<Ast>),
    Max(Box<Ast>, Box<Ast>),
    Neg(Box<Ast>),
}

impl Ast {
    fn source(&self) -> String {
        match self {
            Ast::Num(n) => format!("{n:?}"),
            Ast::Add(a, b) => format!("({} + {})", a.source(), b.source()),
            Ast::Sub(a, b) => format!("({} - {})", a.source(), b.source()),
            Ast::Mul(a, b) => format!("({} * {})", a.source(), b.source()),
            Ast::Min(a, b) => format!("min({}, {})", a.source(), b.source()),
            Ast::Max(a, b) => format!("max({}, {})", a.source(), b.source()),
            Ast::Neg(a) => format!("(-{})", a.source()),
        }
    }

    fn value(&self) -> f64 {
        match self {
            Ast::Num(n) => *n,
            Ast::Add(a, b) => a.value() + b.value(),
            Ast::Sub(a, b) => a.value() - b.value(),
            Ast::Mul(a, b) => a.value() * b.value(),
            Ast::Min(a, b) => a.value().min(b.value()),
            Ast::Max(a, b) => a.value().max(b.value()),
            Ast::Neg(a) => -a.value(),
        }
    }
}

fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = (0.0f64..1000.0).prop_map(Ast::Num);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Max(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Ast::Neg(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interpreting an expression equals computing it directly.
    #[test]
    fn interpreter_matches_direct_evaluation(ast in ast_strategy()) {
        let src = format!("fn f() {{ return {}; }}", ast.source());
        let prog = Program::parse(&src).expect("generated source parses");
        let got = prog.call("f", &[]).expect("evaluates").as_num().expect("number");
        let want = ast.value();
        prop_assert!(
            (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
            "got {got}, want {want} for {}",
            ast.source()
        );
    }

    /// Evaluation through a function parameter behaves identically.
    #[test]
    fn parameter_passing_is_transparent(ast in ast_strategy(), x in -100.0f64..100.0) {
        let src = format!("fn f(x) {{ return x + {}; }}", ast.source());
        let prog = Program::parse(&src).expect("parses");
        let got = prog
            .call("f", &[Value::num(x)])
            .expect("evaluates")
            .as_num()
            .expect("number");
        prop_assert!((got - (x + ast.value())).abs() <= 1e-9 * (1.0 + got.abs()));
    }

    /// The lexer+parser never panic, whatever bytes arrive.
    #[test]
    fn frontend_never_panics(src in "\\PC*") {
        let _ = Program::parse(&src);
    }

    /// Structured junk that looks like PIL also never panics.
    #[test]
    fn almost_pil_never_panics(
        head in "(fn|let|const|return|if) ?",
        body in "[a-z(){};=+*/ 0-9\\.\"]{0,60}",
    ) {
        let _ = Program::parse(&format!("{head}{body}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printing and re-parsing preserves both the canonical form and
    /// the evaluated value.
    #[test]
    fn printer_roundtrip(ast in ast_strategy()) {
        use perf_iface_lang::printer::print_program;
        let src = format!("fn f() {{ return {}; }}", ast.source());
        let p1 = Program::parse(&src).expect("parses");
        let printed = print_program(p1.ast());
        let p2 = Program::parse(&printed).expect("printed source parses");
        prop_assert_eq!(print_program(p1.ast()), print_program(p2.ast()));
        let v1 = p1.call("f", &[]).expect("evals").as_num().expect("num");
        let v2 = p2.call("f", &[]).expect("evals").as_num().expect("num");
        prop_assert!((v1 - v2).abs() <= 1e-12 * (1.0 + v1.abs()));
    }
}
