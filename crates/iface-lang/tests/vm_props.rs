//! Differential suite for the bytecode VM: compiling a `.pi` program
//! and running it through [`perf_iface_lang::vm::CompiledProgram`]
//! must match the tree-walking interpreter exactly — same values on
//! success, the same error message on failure — over randomized
//! expressions, randomized structured programs, and randomized
//! arguments.

use perf_iface_lang::vm::CompiledProgram;
use perf_iface_lang::{Program, Value};
use proptest::prelude::*;

/// Runs `name(args)` through both evaluators and asserts they agree
/// (value equality, or error-display equality).
fn assert_same(src: &str, name: &str, args: &[Value]) {
    let prog = Program::parse(src).expect("generated source parses");
    let vm = CompiledProgram::compile(&prog).expect("generated source compiles");
    let a = prog.call(name, args);
    let b = vm.call(name, args);
    match (&a, &b) {
        (Ok(x), Ok(y)) => assert_eq!(x, y, "values diverge for {name}{args:?}\n{src}"),
        (Err(x), Err(y)) => assert_eq!(
            x.to_string(),
            y.to_string(),
            "errors diverge for {name}{args:?}\n{src}"
        ),
        _ => panic!("one evaluator errored, the other did not for {name}{args:?}:\n  interp: {a:?}\n  vm: {b:?}\n{src}"),
    }
}

/// A random arithmetic/comparison expression over `x`, `y` and a
/// constant `K`; divisions and a `%` keep non-finite results and the
/// finiteness gate in play.
#[derive(Clone, Debug)]
enum E {
    Num(f64),
    X,
    Y,
    K,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    fn source(&self) -> String {
        match self {
            E::Num(n) => format!("{n:?}"),
            E::X => "x".into(),
            E::Y => "y".into(),
            E::K => "K".into(),
            E::Add(a, b) => format!("({} + {})", a.source(), b.source()),
            E::Sub(a, b) => format!("({} - {})", a.source(), b.source()),
            E::Mul(a, b) => format!("({} * {})", a.source(), b.source()),
            E::Div(a, b) => format!("({} / {})", a.source(), b.source()),
            E::Rem(a, b) => format!("({} % {})", a.source(), b.source()),
            E::Min(a, b) => format!("min({}, {})", a.source(), b.source()),
            E::Max(a, b) => format!("max({}, {})", a.source(), b.source()),
            E::Neg(a) => format!("(-{})", a.source()),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0.0f64..100.0).prop_map(E::Num),
        Just(E::X),
        Just(E::Y),
        Just(E::K),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Max(Box::new(a), Box::new(b))),
            inner.prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pure expressions: VM == interpreter on values and errors
    /// (including the non-finite-result rejection).
    #[test]
    fn vm_matches_interp_on_expressions(
        e in expr_strategy(),
        x in -50.0f64..50.0,
        y in -50.0f64..50.0,
    ) {
        let src = format!(
            "const K = 7;\nfn f(x, y) {{ return {}; }}",
            e.source()
        );
        assert_same(&src, "f", &[Value::num(x), Value::num(y)]);
    }

    /// Structured programs: loops, branches, list/record traffic,
    /// accumulators — the shapes real `.pi` interfaces use.
    #[test]
    fn vm_matches_interp_on_structured_programs(
        n in 0usize..12,
        cut in 0.0f64..10.0,
        scale in 1.0f64..4.0,
    ) {
        let src = "
            const BASE = 3;
            fn per_item(it, cut, scale) {
                if it.w < cut {
                    return BASE + it.w;
                } else {
                    return BASE + it.w * scale;
                }
            }
            fn total(items, cut, scale) {
                let acc = 0;
                for it in items {
                    acc = acc + per_item(it, cut, scale);
                }
                return acc;
            }
        ";
        let items: Vec<Value> = (0..n)
            .map(|i| Value::record([("w", Value::num((i % 7) as f64))]))
            .collect();
        assert_same(
            src,
            "total",
            &[Value::list(items), Value::num(cut), Value::num(scale)],
        );
    }

    /// Error paths: wrong arity, bad field access, list misuse — the
    /// VM must reproduce the interpreter's message byte-for-byte.
    #[test]
    fn vm_matches_interp_on_runtime_errors(pick in 0usize..5, v in -5.0f64..5.0) {
        let src = "
            fn field(r) { return r.missing; }
            fn index(xs, i) { return xs[i]; }
            fn looped(x) { for i in x { return i; } return 0; }
            fn cond(x) { if x { return 1; } return 0; }
            fn arity(a, b) { return a + b; }
        ";
        let val = Value::num(v);
        match pick {
            0 => assert_same(src, "field", &[val]),
            1 => assert_same(src, "index", &[Value::list(vec![Value::num(1.0)]), val]),
            2 => assert_same(src, "looped", &[val]),
            3 => assert_same(src, "cond", &[val]),
            _ => assert_same(src, "arity", &[val]),
        }
    }
}
