//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};
use std::marker::PhantomData;
use std::rc::Rc;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree: strategies generate
/// final values directly, and failing cases are not shrunk.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `recurse` receives a handle that
    /// yields either a leaf (this strategy) or a shallower recursive
    /// value; nesting is capped at `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }
}

/// A clonable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Map<S, F> {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

impl<T: SampleUniform + 'static> Strategy for core::ops::Range<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + 'static> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Regex-like string strategy (see [`crate::pattern`] for the
/// supported subset).
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally beyond, always a valid scalar.
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0xa0u32..0xd800)).unwrap_or('\u{fffd}')
        }
    }
}

/// Strategy over a type's full domain: `any::<u32>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ( $( self.$idx.gen_value(rng), )+ )
            }
        }
    };
}

impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9, S10.10);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9, S10.10, S11.11);
