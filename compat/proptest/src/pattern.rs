//! Regex-like string generation for `&str` strategies.
//!
//! Supported subset (what the workspace tests use):
//!
//! * literal characters,
//! * escapes: `\\` `\.` `\"` `\n` `\t` `\-` `\[` `\]` `\(` `\)`,
//! * `\PC` — any printable (non-control) character,
//! * character classes `[...]` with `a-z` ranges and escapes,
//! * groups with alternation: `(ab|cd)`,
//! * quantifiers `*` (0..=32), `+` (1..=32), `?`, `{m}`, `{m,n}`.

use crate::test_runner::TestRng;
use rand::Rng;

/// Unbounded repetition is capped at this many copies.
const STAR_MAX: usize = 32;

#[derive(Clone, Debug)]
enum Node {
    /// A fixed character.
    Lit(char),
    /// Any printable char (`\PC`): ASCII graphic or space, mostly.
    Printable,
    /// One char drawn uniformly from the listed options.
    Class(Vec<char>),
    /// One alternative, each a sequence.
    Alt(Vec<Vec<Node>>),
    /// Inclusive repetition range of the inner node.
    Repeat(Box<Node>, usize, usize),
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_seq(&chars, &mut pos, pattern);
    assert!(
        pos == chars.len(),
        "unsupported regex pattern {pattern:?}: trailing input at {pos}"
    );
    let mut out = String::new();
    for node in &seq {
        emit(node, rng, &mut out);
    }
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Printable => {
            // Bias toward ASCII so generated sources stay readable.
            let c = if rng.gen_bool(0.95) {
                rng.gen_range(0x20u32..0x7f) as u8 as char
            } else {
                char::from_u32(rng.gen_range(0xa0u32..0x2000)).unwrap_or(' ')
            };
            out.push(c);
        }
        Node::Class(opts) => out.push(opts[rng.gen_range(0..opts.len())]),
        Node::Alt(arms) => {
            let arm = &arms[rng.gen_range(0..arms.len())];
            for n in arm {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

/// Parses a sequence until end of input, `)` or `|`.
fn parse_seq(chars: &[char], pos: &mut usize, pat: &str) -> Vec<Node> {
    let mut seq = Vec::new();
    while *pos < chars.len() && chars[*pos] != ')' && chars[*pos] != '|' {
        let atom = parse_atom(chars, pos, pat);
        seq.push(parse_quantifier(atom, chars, pos, pat));
    }
    seq
}

fn parse_atom(chars: &[char], pos: &mut usize, pat: &str) -> Node {
    match chars[*pos] {
        '\\' => {
            *pos += 1;
            parse_escape(chars, pos, pat)
        }
        '[' => {
            *pos += 1;
            parse_class(chars, pos, pat)
        }
        '(' => {
            *pos += 1;
            let mut arms = vec![parse_seq(chars, pos, pat)];
            while *pos < chars.len() && chars[*pos] == '|' {
                *pos += 1;
                arms.push(parse_seq(chars, pos, pat));
            }
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "unsupported regex pattern {pat:?}: unclosed group"
            );
            *pos += 1;
            Node::Alt(arms)
        }
        c => {
            assert!(
                !matches!(c, '*' | '+' | '?' | '{' | '}' | ']'),
                "unsupported regex pattern {pat:?}: dangling {c:?}"
            );
            *pos += 1;
            if c == '.' {
                Node::Printable
            } else {
                Node::Lit(c)
            }
        }
    }
}

fn parse_escape(chars: &[char], pos: &mut usize, pat: &str) -> Node {
    assert!(
        *pos < chars.len(),
        "unsupported regex pattern {pat:?}: trailing backslash"
    );
    let c = chars[*pos];
    *pos += 1;
    match c {
        'P' | 'p' => {
            // `\PC` / `\pC`-style unicode property; modeled as
            // "printable char" which is what the tests rely on.
            assert!(
                *pos < chars.len(),
                "unsupported regex pattern {pat:?}: bare \\P"
            );
            *pos += 1;
            Node::Printable
        }
        'n' => Node::Lit('\n'),
        't' => Node::Lit('\t'),
        'r' => Node::Lit('\r'),
        _ => Node::Lit(c),
    }
}

fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Node {
    let mut opts = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let mut c = chars[*pos];
        *pos += 1;
        if c == '\\' {
            assert!(
                *pos < chars.len(),
                "unsupported regex pattern {pat:?}: trailing backslash in class"
            );
            c = match chars[*pos] {
                'n' => '\n',
                't' => '\t',
                other => other,
            };
            *pos += 1;
        }
        // `a-z` range (a trailing `-` is a literal).
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            let hi = chars[*pos + 1];
            *pos += 2;
            assert!(
                c <= hi,
                "unsupported regex pattern {pat:?}: bad class range"
            );
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    opts.push(ch);
                }
            }
        } else {
            opts.push(c);
        }
    }
    assert!(
        *pos < chars.len(),
        "unsupported regex pattern {pat:?}: unclosed class"
    );
    *pos += 1;
    assert!(
        !opts.is_empty(),
        "unsupported regex pattern {pat:?}: empty class"
    );
    Node::Class(opts)
}

fn parse_quantifier(atom: Node, chars: &[char], pos: &mut usize, pat: &str) -> Node {
    if *pos >= chars.len() {
        return atom;
    }
    match chars[*pos] {
        '*' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, STAR_MAX)
        }
        '+' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, STAR_MAX)
        }
        '?' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        '{' => {
            *pos += 1;
            let mut lo = String::new();
            while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                lo.push(chars[*pos]);
                *pos += 1;
            }
            let lo: usize = lo
                .parse()
                .unwrap_or_else(|_| panic!("unsupported regex pattern {pat:?}: bad {{m}} bound"));
            let hi = if *pos < chars.len() && chars[*pos] == ',' {
                *pos += 1;
                let mut hi = String::new();
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    hi.push(chars[*pos]);
                    *pos += 1;
                }
                hi.parse().unwrap_or_else(|_| {
                    panic!("unsupported regex pattern {pat:?}: bad {{m,n}} bound")
                })
            } else {
                lo
            };
            assert!(
                *pos < chars.len() && chars[*pos] == '}',
                "unsupported regex pattern {pat:?}: unclosed quantifier"
            );
            *pos += 1;
            assert!(
                lo <= hi,
                "unsupported regex pattern {pat:?}: {{m,n}} with m > n"
            );
            Node::Repeat(Box::new(atom), lo, hi)
        }
        _ => atom,
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::new_rng;

    #[test]
    fn class_with_range_and_count() {
        let mut rng = new_rng(7);
        for _ in 0..200 {
            let s = generate("[a-z]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn class_with_specials() {
        let mut rng = new_rng(8);
        for _ in 0..200 {
            let s = generate("[a-z(){};=+*/ 0-9\\.\"]{0,60}", &mut rng);
            assert!(s.chars().count() <= 60);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || "(){};=+*/ .\"".contains(c)));
        }
    }

    #[test]
    fn printable_star() {
        let mut rng = new_rng(9);
        for _ in 0..200 {
            let s = generate("\\PC*", &mut rng);
            assert!(s.chars().count() <= 32);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn group_alternation_optional_space() {
        let mut rng = new_rng(10);
        let mut saw_space = false;
        for _ in 0..200 {
            let s = generate("(fn|let|const|return|if) ?", &mut rng);
            let kw = s.trim_end_matches(' ');
            assert!(
                ["fn", "let", "const", "return", "if"].contains(&kw),
                "{s:?}"
            );
            saw_space |= s.ends_with(' ');
        }
        assert!(saw_space);
    }

    #[test]
    fn exact_repeat_and_plus() {
        let mut rng = new_rng(11);
        let s = generate("a{3}", &mut rng);
        assert_eq!(s, "aaa");
        for _ in 0..50 {
            let s = generate("b+", &mut rng);
            assert!(!s.is_empty() && s.len() <= 32);
            assert!(s.chars().all(|c| c == 'b'));
        }
    }
}
