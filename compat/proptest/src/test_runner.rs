//! Test harness plumbing: configuration, RNG seeding and case errors.

use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Creates the per-test RNG.
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Resolves the case count, honoring the `PROPTEST_CASES` override.
pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(cfg.cases),
        Err(_) => cfg.cases,
    }
}

/// Deterministic per-test seed (FNV-1a of the test path), overridable
/// with `PROPTEST_SEED` for replaying a different universe.
pub fn default_seed(test_path: &str) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = v.parse() {
            return seed;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property failed; the message is reported to the user.
    Fail(String),
    /// The case violated a `prop_assume!`; it is regenerated.
    Reject,
}

/// Convenience alias mirroring proptest.
pub type TestCaseResult = Result<(), TestCaseError>;
