//! Offline drop-in subset of the `proptest` property-testing framework.
//!
//! The build environment has no crates.io access, so this local crate
//! implements the slice of proptest the workspace tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, argument
//!   binding (`x in strategy`) and `prop_assert*`/`prop_assume!`,
//! * strategies: numeric ranges, tuples, [`strategy::Just`],
//!   [`strategy::any`], `prop_oneof!`, `prop_map`, `prop_recursive`,
//!   [`collection::vec`], and regex-like `&str` string strategies,
//! * deterministic seeding (override with `PROPTEST_SEED`, case count
//!   with `PROPTEST_CASES`).
//!
//! Unlike the real crate there is **no shrinking**: a failing case
//! reports its seed and case number instead of a minimized input.

pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #![proptest_config(cfg)]
/// #[test] fn prop(x in strat, ...) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let __cases = $crate::test_runner::effective_cases(&__cfg);
                let __seed =
                    $crate::test_runner::default_seed(concat!(module_path!(), "::", stringify!($name)));
                let mut __rng = $crate::test_runner::new_rng(__seed);
                let __strategy = ( $( $strat, )+ );
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __cases {
                    __attempts += 1;
                    if __attempts > __cases.saturating_mul(10) + 100 {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} attempts)",
                            stringify!($name),
                            __attempts
                        );
                    }
                    let ( $($arg,)+ ) =
                        $crate::strategy::Strategy::gen_value(&__strategy, &mut __rng);
                    let mut __case = move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    match __case() {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            continue
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                            __msg,
                        )) => {
                            panic!(
                                "proptest `{}` failed (seed {}, case #{}): {}",
                                stringify!($name),
                                __seed,
                                __accepted,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                )
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => $crate::prop_assert!(*__l == *__r, $($fmt)+)
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    __l
                )
            }
        }
    };
}

/// Rejects the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn assume_rejects(mut n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            n += 2;
            prop_assert!(n % 2 == 0, "n = {n}");
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2), 5u8..8]) {
            prop_assert!(v == 1 || v == 2 || (5..8).contains(&v));
        }

        #[test]
        fn string_pattern_class(s in "[a-z]{0,10}") {
            prop_assert!(s.len() <= 10);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn string_pattern_alternation(s in "(ab|cd) ?") {
            prop_assert!(s.starts_with("ab") || s.starts_with("cd"));
            prop_assert!(s.len() <= 3);
        }

        #[test]
        fn tuples_and_map(p in (0u16..50, 0u16..50).prop_map(|(a, b)| (a, b, a as u32 + b as u32))) {
            prop_assert_eq!(p.2, p.0 as u32 + p.1 as u32);
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(#[allow(dead_code)] u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategy_bounded(t in (0u8..10).prop_map(Tree::Leaf).prop_recursive(
            4, 32, 2,
            |inner| (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
        )) {
            prop_assert!(depth(&t) <= 4);
        }
    }
}
