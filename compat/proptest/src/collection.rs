//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty collection size range");
        SizeRange { min, max }
    }
}

/// Strategy for `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`](fn@vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
