//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local
//! crate provides the (small) slice of the `rand 0.8` API the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic for a given seed, which is
//! all the repo's workload generators and tuners require. It does NOT
//! match the byte streams of the real `rand` crate, and it is not
//! cryptographically secure.

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from their full value range (or
/// the unit interval for floats), mirroring `rand`'s `Standard`
/// distribution.
pub trait StandardSample: Sized {
    /// Draws a value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types supporting uniform sampling from a sub-range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty inclusive range");
        T::sample_closed(rng, lo, hi)
    }
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((lo as i128) + draw as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128-wide span cannot occur for <=64-bit ints
                    // except u64/i64 full range: fall back to raw bits.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((lo as i128) + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let v = lo + (hi - lo) * unit_f64(rng) as $t;
                // Guard against rounding up to the open bound.
                if v >= hi { lo } else { v }
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// User-facing extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

/// Types fillable with random data via [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with data from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: seeds the main generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator
    /// (xoshiro256**; not the real `rand::rngs::StdRng` stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the stub uses one generator for both profiles.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = r.gen_range(-64..64);
            assert!((-64..64).contains(&w));
            let x: u8 = r.gen_range(b'a'..=b'z');
            assert!(x.is_ascii_lowercase());
            let f: f64 = r.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn full_range_u64_does_not_panic() {
        let mut r = StdRng::seed_from_u64(1);
        let _: u64 = r.gen_range(0..=u64::MAX);
        let _: u64 = r.gen_range(0..u64::MAX);
    }
}
