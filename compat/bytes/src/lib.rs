//! Offline drop-in subset of the `bytes` crate.
//!
//! Implements just the API surface the workspace uses: a growable
//! [`BytesMut`] write buffer, an immutable cursor-style [`Bytes`] read
//! buffer, and the [`Buf`]/[`BufMut`] traits carrying their methods.
//! Unlike the real crate there is no reference-counted zero-copy
//! sharing — buffers own plain `Vec<u8>` storage, which is all the
//! protobuf wire codec here needs.

/// Read-side buffer operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Advances the read cursor by `cnt`.
    fn advance(&mut self, cnt: usize);

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Copies bytes into `dst`, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side buffer operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Total length including already-consumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the unread portion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl core::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// A growable write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl core::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(42);
        w.put_slice(b"xyz");
        assert_eq!(w.len(), 1 + 4 + 8 + 3);

        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn deref_exposes_written_bytes() {
        let mut w = BytesMut::new();
        w.put_slice(&[0xac, 0x02]);
        assert_eq!(&w[..], &[0xac, 0x02]);
    }
}
