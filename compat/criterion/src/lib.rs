//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, the
//! [`Criterion`] entry point, [`Bencher::iter`] and throughput-aware
//! benchmark groups — enough for `cargo bench` to compile and produce
//! useful numbers without the real crate's statistics machinery.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! over `sample_size` samples where each sample runs enough iterations
//! to cover a minimum window (so nanosecond-scale bodies are still
//! measured meaningfully). The median sample is reported, along with
//! derived throughput when the group declares one.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, used to derive rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing callback target.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: how many iterations fit ~5 ms?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            ((Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000)) as u32;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples.push(t.elapsed() / per_sample);
        }
        samples.sort();
        self.last_median = samples[samples.len() / 2];
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn report(id: &str, median: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{id:<50} time: [{}]", fmt_duration(median));
    if let Some(tp) = throughput {
        let secs = median.as_secs_f64().max(1e-12);
        let rate = match tp {
            Throughput::Elements(n) => fmt_rate(n as f64 / secs, "elem"),
            Throughput::Bytes(n) => fmt_rate(n as f64 / secs, "B"),
        };
        line.push_str(&format!("  thrpt: [{rate}]"));
    }
    println!("{line}");
}

/// Benchmark harness entry point (subset of `criterion::Criterion`).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        report(id, b.last_median, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done per iteration.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            last_median: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{id}", self.name),
            b.last_median,
            self.throughput,
        );
        self
    }

    /// Finishes the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`);
            // the stub runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_function("vec_sum", |b| b.iter(|| (0u64..10).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn harness_runs_and_measures() {
        let mut c = Criterion::default().sample_size(3);
        trivial_bench(&mut c);
    }

    #[test]
    fn group_macro_compiles() {
        criterion_group!(name = tiny; config = Criterion::default().sample_size(2); targets = trivial_bench);
        tiny();
    }
}
