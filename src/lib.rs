//! Performance interfaces for hardware accelerators.
//!
//! A Rust implementation of the vision in *"The Case for Performance
//! Interfaces for Hardware Accelerators"* (HotOS '23): accelerators
//! should ship with artifacts that summarize their performance behavior
//! the way semantic interfaces summarize functionality. Three
//! representations trade readability for precision:
//!
//! 1. **Natural language** with machine-checkable claims
//!    ([`core::nl`]),
//! 2. **Executable interface programs** in the PIL language
//!    ([`lang`]),
//! 3. **Timed Petri nets** — the performance IR ([`petri`]).
//!
//! Four accelerator models act as the "hardware": a JPEG decoder
//! ([`jpeg`]), a Bitcoin miner ([`bitcoin`]), the Protoacc serializer
//! ([`protoacc`]) and the VTA deep-learning accelerator ([`vta`]), each
//! built on the cycle-accurate substrate in [`sim`]. An autotuner
//! ([`autotune`]) demonstrates tools consuming the IR, [`workloads`]
//! packages the paper's developer-story studies, and [`service`] serves
//! performance queries from a long-running, deadline-aware worker pool
//! (`repro --serve`).
//!
//! # Quick start
//!
//! ```
//! use perf_interfaces::core::iface::Metric;
//! use perf_interfaces::core::GroundTruth;
//!
//! // The vendor ships an interface bundle with the accelerator.
//! let bundle = perf_interfaces::jpeg::interface::bundle();
//!
//! // A developer asks: what latency for my image?
//! let mut gen = perf_interfaces::jpeg::ImageGen::new(1);
//! let img = gen.gen_sized(64, 64, 75);
//! let predicted = bundle
//!     .most_precise()
//!     .expect("bundle has executable interfaces")
//!     .predict(&img, Metric::Latency)
//!     .expect("prediction succeeds");
//!
//! // ... and the cycle-accurate model agrees closely.
//! let mut hw = perf_interfaces::jpeg::JpegCycleSim::default();
//! let measured = hw.measure(&img).expect("runs").latency.as_f64();
//! let err = (predicted.midpoint() - measured).abs() / measured;
//! assert!(err < 0.02, "Petri-net error {err:.4}");
//! ```

pub use accel_bitcoin as bitcoin;
pub use accel_jpeg as jpeg;
pub use accel_protoacc as protoacc;
pub use accel_vta as vta;
pub use perf_autotune as autotune;
pub use perf_compose as compose;
pub use perf_core as core;
pub use perf_iface_lang as lang;
pub use perf_petri as petri;
pub use perf_service as service;
pub use perf_sim as sim;
pub use perf_workloads as workloads;

/// Runs the Rust code blocks embedded in `README.md` as doc-tests, so
/// the prose examples cannot drift from the API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// Runs the Rust code blocks embedded in `DESIGN.md` as doc-tests.
#[cfg(doctest)]
#[doc = include_str!("../DESIGN.md")]
pub struct DesignDoctests;
